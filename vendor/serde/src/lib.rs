//! Offline vendor shim for the subset of `serde` this workspace uses.
//!
//! The build container has no access to a crates.io registry, so the
//! workspace patches `serde` to this crate (see `[patch.crates-io]` in the
//! root `Cargo.toml`). It implements a *value-model* serde: every
//! serializable type lowers to a [`Value`] tree and is rebuilt from one.
//! `serde_json` (also vendored) prints and parses that tree as JSON.
//!
//! Only what the workspace needs is provided:
//!
//! * `Serialize` / `Deserialize` traits (value-model signatures, not the
//!   visitor API of real serde — no workspace code calls the trait methods
//!   directly, everything goes through `serde_json` or the derives);
//! * `#[derive(Serialize, Deserialize)]` for non-generic structs, tuple
//!   structs and enums (re-exported from the vendored `serde_derive`);
//! * impls for the primitive / std types that appear as field types.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The serialization error type (also re-exported as `serde_json::Error`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error carrying `msg`.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A dynamically-typed serialization tree — the intermediate form between
/// typed Rust values and JSON text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats, as serde_json does).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (anything that fits in `i64`).
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

// A `Value` serializes to itself, so generic JSON (schema-unknown bench
// records, for instance) can round-trip through `serde_json` untyped.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Looks up a required field in a map value (used by derived impls).
///
/// # Errors
///
/// Returns an error naming the missing key.
pub fn map_get<'a>(m: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// A type that can lower itself to a [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Marker for owned deserialization (every `Deserialize` qualifies here).
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

/// Deserialization-side re-exports, mirroring `serde::de`.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Serialization-side re-exports, mirroring `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} out of range for {}", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected integer for {}, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! big_uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if let Ok(i) = i64::try_from(*self) {
                    Value::Int(i)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(format!("{u} out of range for {}", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected integer for {}, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

big_uint_impl!(u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // An f32 roundtrips exactly through f64, and serde_json encodes
        // non-finite values as null.
        match v {
            Value::Float(x) => Ok(*x as f32),
            Value::Int(i) => Ok(*i as f32),
            Value::UInt(u) => Ok(*u as f32),
            Value::Null => Ok(f32::NAN),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!("expected char, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) if a.len() == N => {
                let items: Vec<T> = a.iter().map(T::from_value).collect::<Result<_, _>>()?;
                items
                    .try_into()
                    .map_err(|_| Error::custom("array length changed"))
            }
            other => Err(Error::custom(format!(
                "expected {N}-element array, got {other:?}"
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected map, got {other:?}"))),
        }
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                match v {
                    Value::Array(a) if a.len() == LEN => Ok(($($t::from_value(&a[$n])?,)+)),
                    other => Err(Error::custom(format!(
                        "expected {LEN}-element array, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&(u64::MAX).to_value()).unwrap(), u64::MAX);
        assert_eq!(i32::from_value(&(-5i32).to_value()).unwrap(), -5);
        assert_eq!(f32::from_value(&0.3f32.to_value()).unwrap(), 0.3f32);
        assert_eq!(
            Option::<String>::from_value(&Some("x".to_string()).to_value()).unwrap(),
            Some("x".to_string())
        );
        assert_eq!(
            Vec::<u16>::from_value(&vec![1u16, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn string_keyed_maps_roundtrip_as_objects() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let v = m.to_value();
        assert!(matches!(&v, Value::Map(entries) if entries.len() == 2));
        let back = std::collections::BTreeMap::<String, u64>::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn map_get_reports_missing_key() {
        let m = vec![("a".to_string(), Value::Null)];
        assert!(map_get(&m, "a").is_ok());
        assert!(map_get(&m, "b").unwrap_err().to_string().contains("b"));
    }
}
