//! Offline vendor shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`] and [`Error`], built on
//! the value-model [`serde`] shim (types lower to a `serde::Value` tree which
//! is printed or parsed here).

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the value model, but keeps the real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed (2-space indented) JSON string.
///
/// # Errors
///
/// Never fails for the value model, but keeps the real serde_json signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: shortest representation that roundtrips,
                // with integral floats printed as `1.0`.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, elem, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, elem)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, elem, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut a = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(a));
                }
                loop {
                    self.skip_ws();
                    a.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(a));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut m = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(m));
                }
                loop {
                    self.skip_ws();
                    let k = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.parse_value()?;
                    m.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(m));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs don't appear in our own output;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "bad escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid utf-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf-8 in number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v: Vec<f32> = from_str("[1.5, -2, 3e2]").unwrap();
        assert_eq!(v, vec![1.5, -2.0, 300.0]);
        let s = to_string(&v).unwrap();
        let back: Vec<f32> = from_str(&s).unwrap();
        assert_eq!(back, v);

        let n: u64 = from_str(&to_string(&u64::MAX).unwrap()).unwrap();
        assert_eq!(n, u64::MAX);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\tπ".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let pairs = vec![(1u32, 2u32), (3, 4)];
        let json = to_string_pretty(&pairs).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<(u32, u32)> = from_str(&json).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true false").is_err());
    }
}
