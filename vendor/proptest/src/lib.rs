//! Offline vendor shim for the subset of `proptest` this workspace uses.
//!
//! Generate-only property testing: strategies produce deterministic
//! pseudo-random values (seeded per test case, stable across runs) and
//! `prop_assert*` maps onto the std `assert*` macros. There is no
//! shrinking — a failing case panics with the generated values visible in
//! the assertion message. The surface covered:
//!
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(N))] ... }`
//!   with `pat in strategy` arguments;
//! * range strategies (`-1.0f32..1.0`, `1usize..6`), `any::<T>()`, `Just`,
//!   tuple strategies up to arity 6, `proptest::collection::vec`;
//! * `prop_map` / `prop_flat_map` combinators;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f`.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! float_strategy {
        ($($t:ty, $bits:expr);*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let frac = (rng.next_u64() >> (64 - $bits)) as $t
                        / (1u64 << $bits) as $t;
                    let x = self.start + frac * (self.end - self.start);
                    if x < self.end { x } else { self.start }
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let frac = (rng.next_u64() >> (64 - $bits)) as $t
                        / ((1u64 << $bits) - 1) as $t;
                    lo + frac * (hi - lo)
                }
            }
        )*};
    }

    float_strategy!(f32, 24; f64, 53);

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: ::std::marker::PhantomData<T>,
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;

    /// `any::<T>()` — the full-range strategy for primitive `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy<Value = T>,
    {
        Any {
            _marker: ::std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An (inclusive-lo, exclusive-hi) element-count range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-run configuration (only the case count is honoured).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate runs 256; 64 keeps offline test time modest
            // while still exploring the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// The deterministic splitmix64 source strategies draw from.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for test case number `case` (stable across runs).
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xFB_C0DE,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                let ($($pat,)+) = ($(
                    $crate::strategy::Strategy::generate(&($strat), &mut rng),
                )+);
                $body
            }
        }
    )*};
}

/// `prop_assert!` — panics (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!` — panics (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!` — panics (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    //! The glob-import surface: traits, `any`, `Just`, config and macros.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, f32)> {
        (1usize..10, -1.0f32..1.0)
            .prop_flat_map(|(n, x)| (Just(n), Just(x), 0usize..10))
            .prop_map(|(n, x, k)| (n + k, x))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_combinators_stay_in_bounds(
            (n, x) in arb_pair(),
            v in crate::collection::vec(-2.0f32..2.0, 1..8),
            b in any::<bool>(),
            mut acc in 0usize..3,
        ) {
            prop_assert!((1..20).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|y| (-2.0..2.0).contains(y)));
            acc += usize::from(b);
            prop_assert!(acc <= 3);
        }
    }

    #[test]
    fn generation_is_deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case(5);
        let mut b = crate::test_runner::TestRng::for_case(5);
        let s = crate::collection::vec(0u32..1000, 4usize);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
