//! Offline vendor shim for the subset of `criterion` 0.5 this workspace
//! uses: `Criterion`, `benchmark_group`/`bench_function`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is a deliberately small wall-clock harness: a short warm-up
//! estimates the per-iteration cost, then `sample_size` samples are timed
//! and the minimum / median / mean per-iteration times are printed. No
//! statistical analysis, plots or baselines — enough to compare kernels by
//! eye and to keep `cargo bench` working offline.

use std::time::{Duration, Instant};

/// Target wall-clock time for one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);
/// Wall-clock budget for the warm-up/calibration loop.
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// How batched inputs are grouped (accepted for API compatibility; the
/// shim always sets up one input per timed iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Many small inputs per batch.
    SmallInput,
    /// Few large inputs per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` target functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // The real crate samples 100 times; 20 keeps offline runs quick.
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs `f` as the benchmark named `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some(r) => r.print(id),
            None => println!("{id:<50} (no measurement recorded)"),
        }
        self
    }

    /// Starts a named group; benchmark ids are `group/function`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group
    /// (the group borrows the driver, so this configures it directly).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Runs `f` as `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (a no-op in this shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Per-iteration timing summary.
struct Report {
    min: Duration,
    median: Duration,
    mean: Duration,
}

impl Report {
    fn print(&self, id: &str) {
        println!(
            "{id:<50} time: [{} {} {}]  (min median mean)",
            fmt_duration(self.min),
            fmt_duration(self.median),
            fmt_duration(self.mean),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Times one routine; handed to the closure of `bench_function`.
pub struct Bencher {
    sample_size: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Benchmarks `routine` (timed in auto-sized batches).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_TARGET {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() / u128::from(warm_iters.max(1));
        let iters_per_sample =
            (SAMPLE_TARGET.as_nanos() / per_iter.max(1)).clamp(1, u128::from(u32::MAX)) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed() / iters_per_sample as u32);
        }
        self.record(samples);
    }

    /// Benchmarks `routine` on fresh inputs from `setup`; only `routine`
    /// is timed. `BatchSize` is accepted for compatibility and ignored
    /// (every iteration gets its own input).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Calibrate: one warm-up pass.
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        let per_iter = start.elapsed();
        let iters_per_sample =
            (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000) as usize;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let mut elapsed = Duration::ZERO;
            for input in inputs {
                let start = Instant::now();
                let out = routine(input);
                elapsed += start.elapsed();
                drop(std::hint::black_box(out));
            }
            samples.push(elapsed / iters_per_sample as u32);
        }
        self.record(samples);
    }

    fn record(&mut self, mut samples: Vec<Duration>) {
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        self.report = Some(Report { min, median, mean });
    }
}

/// Declares a benchmark group function, as in criterion 0.5 (both the
/// plain and the `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; nothing to parse
            // in this shim.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_prints() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("spin", |b| {
            b.iter(|| std::hint::black_box((0..100u32).sum::<u32>()))
        });
        let mut g = c.benchmark_group("grp");
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32; 64],
                |v| v.iter().sum::<u32>(),
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }

    #[test]
    fn formats_scale_with_magnitude() {
        assert!(fmt_duration(Duration::from_nanos(12)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
