//! Offline vendor shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the value-model serde shim in `vendor/serde`, by hand-parsing the item's
//! token stream (no `syn`/`quote` — the build container has no registry).
//!
//! Supported shapes, which cover every derive site in the workspace:
//!
//! * non-generic structs with named fields;
//! * non-generic tuple structs;
//! * non-generic enums with unit, tuple and struct variants.
//!
//! `#[serde(...)]` attributes are not supported (none are used).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What one parsed item looks like to the generators.
enum Item {
    /// `struct Name { fields }`
    Struct { name: String, fields: Vec<String> },
    /// `struct Name(T0, T1, ...);` with the arity recorded.
    TupleStruct { name: String, arity: usize },
    /// `enum Name { variants }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with the given arity.
    Tuple(usize),
    /// Struct variant with named fields.
    Struct(Vec<String>),
}

/// Derives the value-model `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        ::serde::Value::Map(vec![{}])
                    }}
                }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Serialize for {name} {{
                        fn to_value(&self) -> ::serde::Value {{
                            ::serde::Serialize::to_value(&self.0)
                        }}
                    }}"
                )
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{
                        fn to_value(&self) -> ::serde::Value {{
                            ::serde::Value::Array(vec![{}])
                        }}
                    }}",
                    elems.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string())"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Map(vec![(\
                                \"{vname}\".to_string(), ::serde::Serialize::to_value(f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(vec![(\
                                    \"{vname}\".to_string(), \
                                    ::serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![(\
                                    \"{vname}\".to_string(), \
                                    ::serde::Value::Map(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        match self {{ {} }}
                    }}
                }}",
                arms.join(", ")
            )
        }
    };
    body.parse().expect("serde_derive generated invalid Rust")
}

/// Derives the value-model `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::map_get(m, \"{f}\")?)?")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{
                        let m = v.as_map().ok_or_else(|| \
                            ::serde::Error::custom(\"expected map for {name}\"))?;
                        Ok({name} {{ {} }})
                    }}
                }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{
                        fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{
                            Ok({name}(::serde::Deserialize::from_value(v)?))
                        }}
                    }}"
                )
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{
                        fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{
                            let a = v.as_array().ok_or_else(|| \
                                ::serde::Error::custom(\"expected array for {name}\"))?;
                            if a.len() != {arity} {{
                                return Err(::serde::Error::custom(\"wrong arity for {name}\"));
                            }}
                            Ok({name}({}))
                        }}
                    }}",
                    elems.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0})", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                                ::serde::Deserialize::from_value(inner)?))"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{
                                    let a = inner.as_array().ok_or_else(|| \
                                        ::serde::Error::custom(\"expected array variant\"))?;
                                    if a.len() != {n} {{
                                        return Err(::serde::Error::custom(\"wrong variant arity\"));
                                    }}
                                    Ok({name}::{vname}({}))
                                }}",
                                elems.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                            ::serde::map_get(fm, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{
                                    let fm = inner.as_map().ok_or_else(|| \
                                        ::serde::Error::custom(\"expected map variant\"))?;
                                    Ok({name}::{vname} {{ {} }})
                                }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{
                        match v {{
                            ::serde::Value::Str(s) => match s.as_str() {{
                                {unit}
                                other => Err(::serde::Error::custom(format!(
                                    \"unknown variant {{other}} of {name}\"))),
                            }},
                            ::serde::Value::Map(m) if m.len() == 1 => {{
                                let (tag, inner) = &m[0];
                                let _ = inner;
                                match tag.as_str() {{
                                    {data}
                                    other => Err(::serde::Error::custom(format!(
                                        \"unknown variant {{other}} of {name}\"))),
                                }}
                            }}
                            other => Err(::serde::Error::custom(format!(
                                \"expected variant encoding for {name}, got {{other:?}}\"))),
                        }}
                    }}
                }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(", "))
                },
                data = if data_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", data_arms.join(", "))
                },
            )
        }
    };
    body.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic types ({name})");
    }
    match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_top_level_items(g.stream()),
                }
            }
            other => panic!("serde_derive: unsupported struct body {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Advances past `#[...]` attributes (incl. doc comments) and visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field body, in declaration order.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let Some(TokenTree::Ident(id)) = toks.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Skip `: Type` up to the next top-level comma. Generic angle
        // brackets are punctuation, not groups, so track their depth.
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of comma-separated items at the top level of a token stream.
fn count_top_level_items(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut saw_token_since_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_token_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let Some(TokenTree::Ident(id)) = toks.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip optional discriminant `= expr` and the separating comma.
        while i < toks.len() {
            if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}
