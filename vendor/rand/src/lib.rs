//! Offline vendor shim for the subset of `rand` 0.8 this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! float/integer ranges, and [`Rng::gen_bool`].
//!
//! The bit stream differs from the real `StdRng` (which is ChaCha-based);
//! the workspace only relies on determinism per seed, never on specific
//! values, so a splitmix64 generator is sufficient and much smaller.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        // 53 uniform mantissa bits in [0, 1); strictly below 1.0 so p = 1.0
        // is always true and p = 0.0 always false.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range a uniform value can be drawn from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;

    /// Draws one uniform value.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! float_range_impl {
    ($($t:ty, $bits:expr);*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let frac =
                    (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                let x = self.start + frac * (self.end - self.start);
                // Guard the half-open bound against rounding up to `end`.
                if x < self.end { x } else { self.start }
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let frac =
                    (rng.next_u64() >> (64 - $bits)) as $t / ((1u64 << $bits) - 1) as $t;
                lo + frac * (hi - lo)
            }
        }
    )*};
}

// 24 / 53 = mantissa precision of f32 / f64.
float_range_impl!(f32, 24; f64, 53);

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impl!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator (splitmix64 in this shim — the real
    /// crate's ChaCha stream is not reproduced; see the crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<f32> = (0..16).map(|_| a.gen_range(-1.0f32..1.0)).collect();
        let vb: Vec<f32> = (0..16).map(|_| b.gen_range(-1.0f32..1.0)).collect();
        let vc: Vec<f32> = (0..16).map(|_| c.gen_range(-1.0f32..1.0)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&i));
            let u = rng.gen_range(2usize..=3);
            assert!(u == 2 || u == 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..4000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((800..1600).contains(&hits), "rate wildly off: {hits}/4000");
    }
}
