//! Offline vendor shim for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` with `Scope::spawn`, layered over
//! `std::thread::scope` (stable since 1.63).

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    /// Result of a scope: `Err` carries the payload of a panicked thread.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle; spawned threads may borrow from the enclosing stack
    /// frame and are all joined before [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope; every spawned thread is joined before this
    /// returns. Returns `Err` if `f` or any spawned thread panicked —
    /// unlike `std::thread::scope`, which resumes the panic.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn workers_borrow_and_write_disjoint_chunks() {
        let mut data = vec![0u32; 8];
        crate::thread::scope(|scope| {
            for (i, chunk) in data.chunks_mut(2).enumerate() {
                scope.spawn(move |_| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (i * 2 + j) as u32;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(data, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn panicked_worker_yields_err() {
        let r = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn join_returns_value() {
        let r = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| 41 + 1);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
