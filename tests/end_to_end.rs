//! Cross-crate integration tests: the full Fast-BCNN pipeline from model
//! construction through skipping inference to the accelerator models.

use fast_bcnn::{
    synth_input, BaselineSim, CnvlutinSim, Engine, EngineConfig, FastBcnnSim, HwConfig, IdealSim,
    McDropout, PredictiveInference, SkipMode, ThresholdOptimizer, ThresholdSet, Workload,
};
use fbcnn_bayes::BayesianNetwork;
use fbcnn_nn::models::{ModelKind, ModelScale};

fn quick_engine(kind: ModelKind) -> Engine {
    Engine::new(EngineConfig {
        model: kind,
        scale: ModelScale::TINY,
        drop_rate: 0.3,
        samples: 4,
        confidence: 0.68,
        calibration_samples: 3,
        seed: 99,
        threads: 1,
        ..EngineConfig::for_model(kind)
    })
}

#[test]
fn pipeline_runs_for_all_three_models() {
    for kind in ModelKind::ALL {
        let engine = quick_engine(kind);
        let input = synth_input(engine.network().input_shape(), 5);
        let (pred, stats) = engine.predict_fast(&input);
        assert_eq!(pred.mean.len(), engine.network().output_shape().len());
        assert!(
            stats.skip_rate() > 0.2,
            "{kind:?} skip rate {} too low",
            stats.skip_rate()
        );
        let w = engine.workload(&input);
        let base = engine.simulate_baseline(&w);
        let fast = engine.simulate_fast(&w, 64);
        assert!(
            fast.total_cycles < base.total_cycles,
            "{kind:?}: FB-64 not faster than baseline"
        );
    }
}

#[test]
fn simulator_orderings_hold_across_models_and_configs() {
    for kind in [ModelKind::LeNet5, ModelKind::Vgg16] {
        let engine = quick_engine(kind);
        let input = synth_input(engine.network().input_shape(), 1);
        let w = engine.workload(&input);
        let base = BaselineSim::new(HwConfig::baseline()).run(&w);
        let cnv = CnvlutinSim::new().run(&w);
        for tm in [8, 16, 32, 64] {
            let hw = HwConfig::fast_bcnn(tm);
            let fb = FastBcnnSim::new(hw, SkipMode::Both).run(&w);
            let ideal = IdealSim::new(hw).run(&w);
            assert!(
                ideal.total_cycles <= fb.total_cycles,
                "{kind:?} FB-{tm}: ideal must lower-bound"
            );
            assert!(fb.total_cycles < base.total_cycles);
            assert!(ideal.energy.total() <= fb.energy.total());
        }
        assert!(cnv.normalized_cycles() <= base.normalized_cycles() + 1e-9);
    }
}

#[test]
fn skipping_matches_exact_when_prediction_disabled() {
    // End-to-end functional exactness: dropped-only skipping changes
    // nothing about the MC-dropout outcome.
    let engine = quick_engine(ModelKind::Vgg16);
    let bnet = engine.bayesian_network();
    let input = synth_input(engine.network().input_shape(), 2);
    let none = ThresholdSet::never_predict(engine.network().len());
    let pe = PredictiveInference::new(bnet, &input, none);
    for t in 0..3 {
        let masks = bnet.generate_masks(77, t);
        let exact = bnet.forward_sample(&input, &masks);
        let skipped = pe.run_sample(&masks);
        assert_eq!(exact.logits(), skipped.logits(), "sample {t} diverged");
    }
}

#[test]
fn workload_skip_counts_agree_with_functional_runs() {
    // The simulator consumes exactly the skip decisions the functional
    // skipping inference acts on.
    let engine = quick_engine(ModelKind::LeNet5);
    let bnet = engine.bayesian_network();
    let input = synth_input(engine.network().input_shape(), 3);
    let w = Workload::build(bnet, &input, engine.thresholds(), 3, engine.config().seed);
    let pe = PredictiveInference::new(bnet, &input, engine.thresholds().clone());
    for (t, sample) in w.samples.iter().enumerate() {
        let masks = bnet.generate_masks(engine.config().seed, t);
        let run = pe.run_sample(&masks);
        let functional = run.stats();
        let mut from_workload = fast_bcnn::SkipStats::default();
        for ls in &sample.per_layer {
            from_workload.absorb(ls.stats);
        }
        assert_eq!(functional, from_workload, "sample {t} skip stats differ");
    }
}

#[test]
fn mc_prediction_is_a_distribution_with_bounded_uncertainty() {
    let engine = quick_engine(ModelKind::GoogLeNet);
    let input = synth_input(engine.network().input_shape(), 9);
    let pred = engine.predict_exact(&input);
    assert!((pred.mean.iter().sum::<f32>() - 1.0).abs() < 1e-3);
    assert!(pred.predictive_entropy >= 0.0);
    assert!(pred.mutual_information <= pred.predictive_entropy + 1e-5);
    assert!(pred.class < pred.mean.len());
}

#[test]
fn threshold_confidence_controls_the_speed_accuracy_knob() {
    let bnet = BayesianNetwork::new(ModelKind::Vgg16.build_scaled(4, ModelScale::TINY), 0.3);
    let input = synth_input(bnet.network().input_shape(), 4);
    let loose = ThresholdOptimizer::with_confidence(0.55).optimize(&bnet, &input, 8);
    let strict = ThresholdOptimizer::with_confidence(0.95).optimize(&bnet, &input, 8);
    let w_loose = Workload::build(&bnet, &input, &loose, 3, 8);
    let w_strict = Workload::build(&bnet, &input, &strict, 3, 8);
    let sim = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both);
    assert!(
        sim.run(&w_loose).total_cycles <= sim.run(&w_strict).total_cycles,
        "looser confidence must not be slower"
    );
}

#[test]
fn higher_drop_rate_skips_more() {
    let input_shape_seed = 6;
    let mut rates = Vec::new();
    for p in [0.1, 0.3, 0.5] {
        let net = ModelKind::LeNet5.build(11);
        let bnet = BayesianNetwork::new(net, p);
        let input = synth_input(bnet.network().input_shape(), input_shape_seed);
        let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 1);
        let w = Workload::build(&bnet, &input, &thresholds, 3, 1);
        rates.push(w.total_skip_stats().skip_rate());
    }
    assert!(
        rates[0] < rates[2],
        "skip rate should grow with drop rate: {rates:?}"
    );
}

#[test]
fn deterministic_reproducibility_across_engine_instances() {
    let a = quick_engine(ModelKind::LeNet5);
    let b = quick_engine(ModelKind::LeNet5);
    let input = synth_input(a.network().input_shape(), 12);
    assert_eq!(a.predict_exact(&input), b.predict_exact(&input));
    let (pa, sa) = a.predict_fast(&input);
    let (pb, sb) = b.predict_fast(&input);
    assert_eq!(pa, pb);
    assert_eq!(sa, sb);
}

#[test]
fn summarize_rejects_inconsistent_rows() {
    let r = std::panic::catch_unwind(|| {
        McDropout::summarize(vec![vec![0.5, 0.5], vec![1.0]]);
    });
    assert!(r.is_err());
}
