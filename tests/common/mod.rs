//! Helpers shared by the soak/acceptance test suites (chaos, slo,
//! serve). Each integration-test binary compiles this module
//! separately, so any one binary uses only a subset of it.
#![allow(dead_code)]

use fast_bcnn::chaos::ChaosReport;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// The committed golden-fixture directory (`tests/golden/`).
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// The typed loss vocabulary — every failed request's reason must be one
/// of these (`fast_bcnn::error_reason_name` can emit nothing else, and
/// no soak may see an unexpected class).
pub const TYPED_REASONS: [&str; 8] = [
    "input",
    "thresholds",
    "numeric",
    "bayes",
    "all_samples_failed",
    "expired",
    "overloaded",
    "worker_hung",
];

/// The wire-level reason vocabulary the serve tier adds on top of
/// [`TYPED_REASONS`]: one tag per [`fast_bcnn::serve::WireError`]
/// variant, plus the admission-time `unknown_class` rejection.
pub const WIRE_REASONS: [&str; 10] = [
    "wire_truncated",
    "wire_oversized",
    "wire_envelope",
    "wire_stale_version",
    "wire_foreign_kind",
    "wire_payload",
    "wire_deadline",
    "wire_write_deadline",
    "wire_io",
    "unknown_class",
];

/// Returns whether `reason` belongs to the typed engine-loss vocabulary.
pub fn is_typed_reason(reason: &str) -> bool {
    TYPED_REASONS.contains(&reason)
}

/// Returns whether `reason` belongs to the serve tier's wire vocabulary.
pub fn is_wire_reason(reason: &str) -> bool {
    WIRE_REASONS.contains(&reason)
}

/// Acceptance floors shared by the soak suites: a minimum offered-load
/// volume, a minimum distinct-class coverage, and a wall-clock bound CI
/// enforces with an outer timeout. One definition, referenced by every
/// suite, so the floors cannot silently diverge between soaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakFloors {
    /// Minimum requests the campaign must offer.
    pub min_requests: u64,
    /// Minimum distinct classes (fault classes for chaos, SLO/latency
    /// classes for serve) the campaign must exercise.
    pub min_classes: usize,
    /// Wall-clock bound in seconds the whole soak must fit under.
    pub max_wall_secs: u64,
}

/// The chaos-soak floors from `tests/resilience_chaos.rs`: ≥ 200
/// requests over ≥ 5 fault classes, bounded under a minute.
pub const CHAOS_FLOORS: SoakFloors = SoakFloors {
    min_requests: 200,
    min_classes: 5,
    max_wall_secs: 60,
};

/// The serve-soak floors: the same request volume as the chaos soak,
/// over ≥ 4 latency classes (the three healthy SLO tiers plus the
/// injected `malformed` stream), bounded under a minute.
pub const SERVE_FLOORS: SoakFloors = SoakFloors {
    min_requests: 200,
    min_classes: 4,
    max_wall_secs: 60,
};

impl SoakFloors {
    /// Asserts the volume/coverage/wall-clock floors, labelled `tag`.
    pub fn assert_met(&self, tag: &str, requests: u64, classes: usize, elapsed_ns: u64) {
        assert!(
            requests >= self.min_requests,
            "{tag}: offered only {requests} requests (floor {})",
            self.min_requests
        );
        assert!(
            classes >= self.min_classes,
            "{tag}: exercised only {classes} classes (floor {})",
            self.min_classes
        );
        let wall = std::time::Duration::from_nanos(elapsed_ns);
        assert!(
            wall <= std::time::Duration::from_secs(self.max_wall_secs),
            "{tag}: soak ran {wall:?}, past the {}s bound",
            self.max_wall_secs
        );
    }
}

/// Asserts an exact ledger: each row is `(what, left, right)` and any
/// drift is a dropped or double-counted request.
pub fn assert_ledger_exact(tag: &str, rows: &[(&str, u64, u64)]) {
    for (what, left, right) in rows {
        assert_eq!(left, right, "{tag}: {what} drifted");
    }
}

/// The chaos-soak robustness contract: per-round and total accounting
/// reconcile exactly, every request is answered or failed (never hung),
/// every loss reason is typed, and nothing is abandoned.
pub fn assert_chaos_contract(report: &ChaosReport, tag: &str) {
    assert!(
        report.round_reconcile_errors.is_empty(),
        "{tag}: per-round accounting drifted: {:?}",
        report.round_reconcile_errors
    );
    report
        .reconcile()
        .unwrap_or_else(|e| panic!("{tag}: counters did not reconcile: {e}"));
    assert_eq!(
        report.ok_total + report.failed_total,
        report.requests_total,
        "{tag}: a request was neither answered nor failed — that is a hang"
    );
    let known: BTreeSet<&str> = TYPED_REASONS.iter().copied().collect();
    for reason in report.loss_reasons.keys() {
        assert!(
            known.contains(reason.as_str()),
            "{tag}: untyped loss reason `{reason}`"
        );
    }
    assert_eq!(
        report.totals.abandoned, 0,
        "{tag}: a work unit was abandoned"
    );
}
