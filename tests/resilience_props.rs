//! Property tests for the resilience layer's statistical and timing
//! contracts:
//!
//! * **partial-T validity** — an `Expired` outcome's mean over the `k`
//!   samples it completed is bit-identical to a run configured with
//!   `T = k` from the start (sample `t` always draws
//!   `generate_masks(seed, t)`, so a prefix of samples IS a shorter run);
//! * **latency invariance** — injected per-sample delays perturb time
//!   only, never numerics;
//! * **backoff determinism** — the seeded exponential backoff is a pure
//!   function of `(policy, request seed, attempt)` and respects its cap.

use fast_bcnn::models::ModelKind;
use fast_bcnn::{
    synth_input, BatchConfig, BatchEngine, BatchRequest, CancelToken, DegradedMode, Engine,
    EngineConfig, FaultInjector, McDropout, ResilienceConfig, ResilientBatchEngine, RetryPolicy,
    RobustConfig, RunControl, SeededJitter,
};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const T: usize = 4;

fn base_engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Engine::new(EngineConfig {
            samples: T,
            calibration_samples: 2,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        })
    })
}

fn bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn expired_partial_means_equal_a_t_equals_k_run(
        k in 1usize..T,
        seed in proptest::arbitrary::any::<u64>(),
        input_seed in 0u64..1000,
    ) {
        // The exact MC loop: a budget of k completes exactly k samples,
        // flags the run expired, and its mean must be the T = k mean bit
        // for bit — the same derived mask-seed prefix drives both.
        let bnet = base_engine().bayesian_network();
        let input = synth_input(base_engine().network().input_shape(), input_seed);
        let token = CancelToken::with_limits(None, Some(k as u64));
        let partial = McDropout::new(T, seed)
            .run_cancellable(bnet, &input, &token)
            .expect("budget of k >= 1 always yields a partial result");
        prop_assert!(partial.expired, "budget {k} < T = {T} must expire");
        prop_assert_eq!(partial.completed, k);
        let full = McDropout::new(k, seed).run(bnet, &input);
        prop_assert_eq!(bits(&partial.prediction.mean), bits(&full.mean));
        prop_assert_eq!(partial.prediction.class, full.class);
    }

    #[test]
    fn engine_expired_partials_equal_the_capped_run(
        k in 1usize..T,
        input_seed in 0u64..1000,
    ) {
        // The robust pipeline under a sample budget of k must land on the
        // same bits as the same pipeline explicitly capped at k samples:
        // a deadline interruption after k samples IS a k-sample run.
        let engine = base_engine();
        let input = synth_input(engine.network().input_shape(), input_seed);
        let seed = engine.config().seed;
        let rc = RobustConfig::default();

        let expired_ctl = RunControl {
            cancel: CancelToken::with_limits(None, Some(k as u64)),
            ..RunControl::none()
        };
        let (expired_pred, expired_report) = engine
            .predict_robust_controlled(&input, seed, &rc, &expired_ctl)
            .expect("budget of k >= 1 yields a partial prediction");
        prop_assert!(expired_report.expired);
        prop_assert_eq!(expired_report.used_samples, k);
        prop_assert_eq!(expired_report.mode, DegradedMode::PartialSamples);

        let capped_ctl = RunControl {
            max_samples: Some(k),
            ..RunControl::none()
        };
        let (capped_pred, capped_report) = engine
            .predict_robust_controlled(&input, seed, &rc, &capped_ctl)
            .expect("capped run succeeds on a healthy engine");
        prop_assert!(!capped_report.expired);
        prop_assert_eq!(capped_report.mode, DegradedMode::PartialSamples);
        prop_assert_eq!(bits(&expired_pred.mean), bits(&capped_pred.mean));
    }

    #[test]
    fn latency_faults_never_change_numerics(
        fault_seed in proptest::arbitrary::any::<u64>(),
        input_seed in 0u64..1000,
    ) {
        // Satellite regression: a seeded latency schedule through the
        // sample hook slows requests down but every bit of every result
        // must match the undelayed run.
        let requests: Vec<BatchRequest> = (0..3)
            .map(|i| {
                BatchRequest::new(
                    i,
                    synth_input(
                        base_engine().network().input_shape(),
                        input_seed ^ (i * 131),
                    ),
                )
            })
            .collect();
        let build = || {
            ResilientBatchEngine::new(
                BatchEngine::new(base_engine().clone(), BatchConfig::default()),
                ResilienceConfig::default(),
            )
        };

        let calm = build().run_batch(&requests);
        let schedule = FaultInjector::new(fault_seed)
            .latency_schedule(0.4, Duration::from_micros(120));
        let delayed_engine = build().with_request_sample_hook(Arc::new(move |_id, _a, s| {
            let d = schedule.delay_for(s);
            if !d.is_zero() {
                std::thread::sleep(d);
            }
        }));
        let delayed = delayed_engine.run_batch(&requests);

        prop_assert_eq!(calm.outcomes.len(), delayed.outcomes.len());
        for (a, b) in calm.outcomes.iter().zip(&delayed.outcomes) {
            let (pa, ra) = a.outcome.result.as_ref().expect("calm run is healthy");
            let (pb, rb) = b.outcome.result.as_ref().expect("delayed run is healthy");
            prop_assert_eq!(bits(&pa.mean), bits(&pb.mean), "delay changed the mean");
            prop_assert_eq!(pa.class, pb.class);
            prop_assert_eq!(ra.used_samples, rb.used_samples);
            prop_assert_eq!(ra.mode, rb.mode);
        }
    }

    #[test]
    fn backoff_is_a_pure_seeded_function_and_respects_its_cap(
        policy_seed in proptest::arbitrary::any::<u64>(),
        request_seed in proptest::arbitrary::any::<u64>(),
        attempt in 0u32..8,
    ) {
        let policy = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(5),
            seed: policy_seed,
        };
        let jitter = SeededJitter;
        let a = policy.backoff(request_seed, attempt, &jitter);
        let b = policy.backoff(request_seed, attempt, &jitter);
        prop_assert_eq!(a, b, "same inputs, different backoff");
        prop_assert!(a <= policy.max_backoff, "{a:?} exceeds the cap");
        prop_assert!(a >= policy.base_backoff / 2, "jitter floor is 0.5x");
    }
}
