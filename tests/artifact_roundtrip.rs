//! Artifact round-trip and fault-rejection suite.
//!
//! Three contracts, end to end through the public API:
//!
//! 1. **Round trip** — exporting an engine to a versioned artifact file
//!    and loading it back is bit-lossless: weights, thresholds and
//!    indicator maps compare equal, and the reloaded engine's
//!    `predict_robust_seeded` output is bit-identical to the original's.
//! 2. **Fault rejection** — every artifact fault class (payload bit
//!    flips, truncation, format-version skew, resealed shape-mismatched
//!    thresholds, grafted foreign weights) is refused with a typed
//!    [`ArtifactError`]; none may panic or yield a loadable-but-wrong
//!    model.
//! 3. **Format stability** — a fixture artifact committed under
//!    `tests/golden/` keeps loading, keeps its pinned digest, and its
//!    engine keeps producing the pinned probability bits. Regenerate
//!    after an intentional format or numerics change with
//!
//!    ```text
//!    cargo test --test artifact_roundtrip -- --ignored regenerate
//!    ```

use fast_bcnn::models::{ModelKind, ModelScale};
use fast_bcnn::{
    synth_input, ArtifactError, ArtifactFault, BatchRequest, Engine, EngineConfig, FaultInjector,
    ModelArtifact, ModelRegistry, RegistryConfig,
};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// A scratch path that cleans up after itself even on panic.
struct TempArtifact(PathBuf);

impl TempArtifact {
    fn new(tag: &str) -> Self {
        Self(std::env::temp_dir().join(format!("fbcnn_artifact_{tag}_{}.json", std::process::id())))
    }
}

impl Drop for TempArtifact {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn small_engine(seed: u64, samples: usize) -> Engine {
    Engine::new(EngineConfig {
        samples,
        calibration_samples: 2,
        seed,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    })
}

fn bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|v| v.to_bits()).collect()
}

// ------------------------------------------------------------ round trip

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn export_load_round_trip_is_bit_lossless(
        seed in 0u64..1_000_000,
        samples in 2usize..5,
        input_seed in 0u64..1000,
    ) {
        let engine = small_engine(seed, samples);
        let artifact = ModelArtifact::from_engine(&engine, 3, format!("prop-{seed}"));
        let tmp = TempArtifact::new(&format!("prop_{seed}_{samples}"));
        artifact.save(&tmp.0).expect("save artifact");
        let loaded = ModelArtifact::load(&tmp.0).expect("reload artifact");

        // Field-for-field bit identity: Network/ThresholdSet/indicator
        // PartialEq compare every weight, threshold and bitmap word.
        prop_assert_eq!(&loaded.network, engine.network(), "weights drifted");
        prop_assert_eq!(&loaded.thresholds, engine.thresholds(), "thresholds drifted");
        prop_assert_eq!(&loaded, &artifact, "artifact drifted through the file");

        // Behavioral bit identity on the robust path.
        let input = synth_input(engine.network().input_shape(), input_seed);
        let (expect, expect_report) = engine
            .predict_robust_seeded(&input, seed ^ 0xF00D)
            .expect("original robust inference");
        let reloaded = loaded.into_engine().expect("loaded artifact builds an engine");
        let (got, got_report) = reloaded
            .predict_robust_seeded(&input, seed ^ 0xF00D)
            .expect("reloaded robust inference");
        prop_assert_eq!(bits(&expect.mean), bits(&got.mean), "mean bits diverged");
        prop_assert_eq!(expect.class, got.class);
        prop_assert_eq!(expect_report.used_samples, got_report.used_samples);
    }
}

#[test]
fn registry_boots_from_a_reloaded_artifact_and_serves_identically() {
    let engine = small_engine(0xA11CE, 3);
    let tmp = TempArtifact::new("registry_boot");
    ModelArtifact::from_engine(&engine, 1, "registry-boot")
        .save(&tmp.0)
        .expect("save artifact");
    let artifact = ModelArtifact::load(&tmp.0).expect("reload artifact");
    let shape = artifact.network.input_shape();
    let registry = ModelRegistry::new(
        artifact,
        RegistryConfig {
            shards: 2,
            ..RegistryConfig::default()
        },
    )
    .expect("boot registry");

    let requests: Vec<BatchRequest> = (0..10)
        .map(|i| BatchRequest::new(i, synth_input(shape, 100 + i)))
        .collect();
    let report = registry.run_batch(&requests);
    report.reconcile().expect("accounting reconciles");
    for o in &report.outcomes {
        let (pred, _) = o.outcome.outcome.result.as_ref().expect("request served");
        let input = synth_input(shape, 100 + o.outcome.outcome.id);
        let (expect, _) = engine
            .predict_robust_seeded(&input, o.outcome.outcome.seed)
            .expect("reference inference");
        assert_eq!(
            bits(&expect.mean),
            bits(&pred.mean),
            "request {}: registry served different bits than the exporter",
            o.outcome.outcome.id
        );
    }
}

// -------------------------------------------------------- fault campaign

#[test]
fn every_byte_level_fault_class_is_rejected_typed_across_seeds() {
    let engine = small_engine(0xBAD5EED, 2);
    let artifact = ModelArtifact::from_engine(&engine, 1, "fault-campaign");
    for seed in 0..16u64 {
        for fault in [
            ArtifactFault::PayloadBitFlip,
            ArtifactFault::Truncate,
            ArtifactFault::VersionSkew,
        ] {
            let tmp = TempArtifact::new(&format!("fault_{seed}_{fault:?}"));
            artifact.save(&tmp.0).expect("save pristine artifact");
            FaultInjector::new(seed)
                .corrupt_artifact_file(&tmp.0, fault)
                .expect("damage the file");
            // The whole point: a damaged file is a typed refusal, never a
            // panic and never a silently-wrong model.
            match ModelArtifact::load(&tmp.0) {
                Err(ArtifactError::Io(_))
                | Err(ArtifactError::Digest { .. })
                | Err(ArtifactError::Config(_))
                | Err(ArtifactError::Thresholds(_))
                | Err(ArtifactError::IndicatorMismatch { .. })
                | Err(ArtifactError::Numeric(_)) => {}
                Err(ArtifactError::StaleVersion { .. }) => {
                    panic!("seed {seed} {fault:?}: stale-version is a deploy-time error")
                }
                Ok(_) => panic!("seed {seed} {fault:?}: damaged artifact loaded cleanly"),
            }
        }
    }
}

#[test]
fn resealed_shape_mismatched_thresholds_are_refused() {
    // An honest digest over dishonest thresholds: only the structural
    // screen can catch this one.
    let engine = small_engine(0x7001, 2);
    for seed in 0..8u64 {
        let mut artifact = ModelArtifact::from_engine(&engine, 1, "resealed");
        FaultInjector::new(seed).mismatch_artifact_thresholds(&mut artifact);
        match artifact.validate() {
            Err(ArtifactError::Thresholds(_)) => {}
            other => panic!("seed {seed}: want a typed threshold refusal, got {other:?}"),
        }
        // And the file path refuses it too.
        let tmp = TempArtifact::new(&format!("resealed_{seed}"));
        artifact.save(&tmp.0).expect("save mismatched artifact");
        assert!(
            matches!(
                ModelArtifact::load(&tmp.0),
                Err(ArtifactError::Thresholds(_))
            ),
            "seed {seed}: mismatched thresholds loaded from disk"
        );
    }
}

#[test]
fn grafted_foreign_weights_are_refused() {
    // Weights from a different topology with the original thresholds: the
    // thresholds no longer address the kernels they claim to gate.
    let engine = small_engine(0x9AF7, 2);
    let donor = ModelKind::AlexNet.build_scaled(0x9AF7, ModelScale::BENCH);
    let mut artifact = ModelArtifact::from_engine(&engine, 1, "grafted");
    FaultInjector::new(1).graft_artifact_network(&mut artifact, &donor);
    match artifact.validate() {
        Err(
            ArtifactError::Thresholds(_)
            | ArtifactError::IndicatorMismatch { .. }
            | ArtifactError::Config(_),
        ) => {}
        other => panic!("want a typed mixed-model refusal, got {other:?}"),
    }
}

#[test]
fn stale_versions_are_refused_at_deploy_time() {
    let engine = small_engine(0x57A1E, 2);
    let registry = ModelRegistry::new(
        ModelArtifact::from_engine(&engine, 5, "active-v5"),
        RegistryConfig::default(),
    )
    .expect("boot registry");
    let stale = ModelArtifact::from_engine(&engine, 5, "stale-v5");
    match registry.deploy(stale) {
        Err(ArtifactError::StaleVersion { offered, active }) => {
            assert_eq!((offered, active), (5, 5));
        }
        other => panic!("want StaleVersion, got {other:?}"),
    }
}

// ------------------------------------------------------ format stability

/// Pinned expectations for the committed fixture artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenArtifactExpect {
    model_version: u64,
    label: String,
    /// Content digest, hex (readable in fixture diffs).
    digest_hex: String,
    input_seed: u64,
    robust_seed: u64,
    class: usize,
    /// `predict_robust_seeded` mean probabilities, f32 bit patterns.
    robust_mean_bits: Vec<u32>,
    used_samples: usize,
}

const GOLDEN_ARTIFACT: &str = "artifact_lenet_t4.json";
const GOLDEN_EXPECT: &str = "artifact_lenet_t4_expect.json";

fn golden_engine() -> Engine {
    Engine::new(EngineConfig {
        samples: 4,
        calibration_samples: 3,
        seed: 0xFB_A7,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    })
}

#[test]
fn golden_artifact_still_loads_and_reproduces_pinned_bits() {
    let expect_path = golden_dir().join(GOLDEN_EXPECT);
    let expect: GoldenArtifactExpect =
        serde_json::from_str(&std::fs::read_to_string(&expect_path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} — run the ignored `regenerate` test: {e}",
                expect_path.display()
            )
        }))
        .expect("malformed expectation fixture");

    let artifact = ModelArtifact::load(golden_dir().join(GOLDEN_ARTIFACT)).unwrap_or_else(|e| {
        panic!("committed artifact no longer loads — format compatibility broke: {e}")
    });
    assert_eq!(artifact.model_version, expect.model_version);
    assert_eq!(artifact.label, expect.label);
    assert_eq!(
        format!("{:016x}", artifact.digest),
        expect.digest_hex,
        "artifact content digest drifted"
    );

    let engine = artifact.into_engine().expect("fixture builds an engine");
    let input = synth_input(engine.network().input_shape(), expect.input_seed);
    let (pred, report) = engine
        .predict_robust_seeded(&input, expect.robust_seed)
        .expect("fixture engine serves");
    assert_eq!(pred.class, expect.class, "pinned class drifted");
    assert_eq!(
        bits(&pred.mean),
        expect.robust_mean_bits,
        "pinned probability bits drifted"
    );
    assert_eq!(report.used_samples, expect.used_samples);
}

/// Rewrites the fixture artifact and its expectations from current
/// behavior. Ignored: run only after an intentional format or numerics
/// change, then review and commit the diff.
#[test]
#[ignore = "regenerates the golden artifact fixture; run explicitly after intentional changes"]
fn regenerate() {
    let engine = golden_engine();
    let artifact = ModelArtifact::from_engine(&engine, 7, "golden-lenet-t4");
    let input_seed = 42u64;
    let robust_seed = 0xFB_C0DE ^ 7;
    let input = synth_input(engine.network().input_shape(), input_seed);
    let (pred, report) = engine
        .predict_robust_seeded(&input, robust_seed)
        .expect("golden engine serves");
    let expect = GoldenArtifactExpect {
        model_version: artifact.model_version,
        label: artifact.label.clone(),
        digest_hex: format!("{:016x}", artifact.digest),
        input_seed,
        robust_seed,
        class: pred.class,
        robust_mean_bits: bits(&pred.mean),
        used_samples: report.used_samples,
    };
    std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
    artifact
        .save(golden_dir().join(GOLDEN_ARTIFACT))
        .expect("write fixture artifact");
    std::fs::write(
        golden_dir().join(GOLDEN_EXPECT),
        serde_json::to_string_pretty(&expect).expect("serialize") + "\n",
    )
    .expect("write expectation fixture");
    eprintln!("wrote {GOLDEN_ARTIFACT} and {GOLDEN_EXPECT}");
}
