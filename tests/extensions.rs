//! Integration tests for the extension features: quantization,
//! persistence, timelines, the AlexNet model and the parallel MC runner.

use fast_bcnn::{
    io, synth_input, Engine, EngineConfig, FastBcnnSim, HwConfig, McDropout, SkipMode,
};
use fbcnn_bayes::BayesianNetwork;
use fbcnn_nn::models::{ModelKind, ModelScale};
use fbcnn_nn::quant;

#[test]
fn quantized_alexnet_pipeline_end_to_end() {
    // Build the extension model, quantize it, and run the full skipping
    // pipeline on the int8 weights.
    let original = ModelKind::AlexNet.build_scaled(3, ModelScale::TINY);
    let quantized = quant::quantize_network(&original);
    assert!(quant::polarity_stability(&original, &quantized) > 0.99);

    let engine = Engine::with_network(
        quantized,
        EngineConfig {
            model: ModelKind::AlexNet,
            scale: ModelScale::TINY,
            drop_rate: 0.3,
            samples: 3,
            confidence: 0.68,
            calibration_samples: 2,
            seed: 3,
            threads: 1,
            ..EngineConfig::for_model(ModelKind::AlexNet)
        },
    );
    let input = synth_input(engine.network().input_shape(), 5);
    let (pred, stats) = engine.predict_fast(&input);
    assert_eq!(pred.mean.len(), 100);
    assert!(stats.skip_rate() > 0.2);
    let w = engine.workload(&input);
    assert!(engine.simulate_fast(&w, 64).total_cycles < engine.simulate_baseline(&w).total_cycles);
}

#[test]
fn persisted_artifacts_reproduce_the_run() {
    let engine = Engine::new(EngineConfig {
        samples: 3,
        calibration_samples: 2,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    });
    let dir = std::env::temp_dir().join(format!("fbcnn_ext_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let net_path = dir.join("net.json");
    let thr_path = dir.join("thresholds.json");
    io::save_network(&net_path, engine.network()).unwrap();
    io::save_thresholds(&thr_path, engine.thresholds()).unwrap();

    // A second session reloads both and reproduces predictions exactly.
    let net = io::load_network(&net_path).unwrap();
    let _thresholds = io::load_thresholds(&thr_path).unwrap();
    let bnet = BayesianNetwork::new(net, engine.bayesian_network().drop_rate());
    let input = synth_input(engine.network().input_shape(), 8);
    let original = McDropout::new(3, engine.config().seed).run(engine.bayesian_network(), &input);
    let reloaded = McDropout::new(3, engine.config().seed).run(&bnet, &input);
    assert_eq!(original, reloaded);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn timeline_respects_prediction_dependencies_across_models() {
    for kind in [ModelKind::LeNet5, ModelKind::Vgg16] {
        let engine = Engine::new(EngineConfig {
            model: kind,
            scale: ModelScale::TINY,
            samples: 2,
            calibration_samples: 2,
            ..EngineConfig::for_model(kind)
        });
        let input = synth_input(engine.network().input_shape(), 1);
        let w = engine.workload(&input);
        let sim = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both);
        let tl = sim.timeline(&w);
        assert_eq!(tl.total_cycles, sim.run(&w).total_cycles, "{kind:?}");
        for p in &tl.prediction {
            let consumer = tl
                .conv
                .iter()
                .find(|c| c.sample == p.sample && c.layer == p.layer)
                .expect("consumer exists");
            assert!(consumer.start >= p.end, "{kind:?}: dependency violated");
        }
    }
}

#[test]
fn parallel_mc_matches_sequential_on_alexnet() {
    let bnet = BayesianNetwork::new(ModelKind::AlexNet.build_scaled(9, ModelScale::TINY), 0.3);
    let input = synth_input(bnet.network().input_shape(), 2);
    let runner = McDropout::new(5, 77);
    assert_eq!(
        runner.run(&bnet, &input),
        runner.run_parallel(&bnet, &input, 4)
    );
}
