//! Serve-tier soak acceptance suite (non-ignored, bounded under a
//! minute): a closed-loop load generator drives the TCP server over real
//! sockets with a seeded mix of healthy requests, deliberate admission
//! sheds, expiring deadlines and malformed frames, and every ledger —
//! load generator, server wire accounting, registry version counters —
//! must reconcile exactly, with zero worker abandonment and zero
//! transport loss. The same run must pass the `BENCH_serve.json`
//! acceptance rules via [`fbcnn_bench::ServeBenchReport`], so the test
//! and the benchmark harness cannot drift apart.

mod common;

use common::{assert_ledger_exact, is_typed_reason, is_wire_reason, SERVE_FLOORS};
use fast_bcnn::serve::{run_serve_soak, ServeSoakConfig};
use fbcnn_bench::ServeBenchReport;

#[test]
fn full_serve_soak_reconciles_exactly_and_meets_the_floors() {
    let cfg = ServeSoakConfig::full(7);
    let report = run_serve_soak(&cfg).expect("soak registry and server boot");
    let lg = &report.loadgen.totals;
    let sv = &report.server;

    // Totality: every offered frame came back as exactly one of the five
    // result labels — anything else is a hang or a double count.
    assert_eq!(
        lg.ok + lg.failed + lg.shed + lg.wire_error_responses + lg.unknown_class,
        lg.offered,
        "a frame was neither answered nor rejected — that is a hang"
    );

    // The three-way ledger: client observations, server wire accounting
    // and registry version counters agree row for row.
    report
        .reconcile()
        .unwrap_or_else(|e| panic!("ledgers did not reconcile: {e}"));
    assert_ledger_exact(
        "serve soak",
        &[
            ("offered vs server frames", lg.offered, sv.frames_total()),
            (
                "registry requests vs served frames",
                report.registry_requests,
                sv.frames_ok + sv.frames_failed,
            ),
            ("registry ok vs server ok", report.registry_ok, sv.frames_ok),
            (
                "registry failed vs server failed",
                report.registry_failed,
                sv.frames_failed,
            ),
        ],
    );

    // Nothing was abandoned on either side of the wire.
    assert_eq!(
        report.loadgen.aborted_workers, 0,
        "a load-generator worker died mid-plan"
    );
    assert_eq!(lg.transport_errors, 0, "responses were lost in transit");
    assert_eq!(sv.connections_rejected, 0, "the accept loop shed a worker");

    // Volume, class coverage and wall-clock floors (shared with the
    // chaos soak via `tests/common`).
    SERVE_FLOORS.assert_met(
        "serve soak",
        lg.offered,
        report.loadgen.latencies_ns.len(),
        report.elapsed_ns,
    );

    // Every deliberate-pressure tier of the mix actually engaged.
    assert!(lg.shed > 0, "the always-shed class never shed");
    assert!(lg.expired > 0, "deadline pressure never expired a request");
    assert!(
        lg.wire_error_responses > 0,
        "the malformed-frame stream never drew a typed wire error"
    );
    assert!(lg.bit_checked > 0, "no pristine response was bit-checked");
    assert_eq!(
        lg.bit_mismatched, 0,
        "a served response drifted from the reference engine bit pattern"
    );

    // Latency observations cover the full class mix, including the
    // malformed stream, and every class actually recorded samples.
    for class in ["interactive", "batch", "degraded", "malformed"] {
        let samples = report
            .loadgen
            .latencies_ns
            .get(class)
            .map(Vec::len)
            .unwrap_or(0);
        assert!(samples > 0, "class `{class}` recorded no latencies");
    }

    // The vocabulary sanity the reasons rely on: engine reasons and wire
    // reasons are disjoint, so a response can never be double-counted.
    assert!(is_typed_reason("expired") && !is_wire_reason("expired"));
    assert!(is_wire_reason("wire_stale_version") && !is_typed_reason("wire_stale_version"));

    // The same run must satisfy the benchmark harness's acceptance rules
    // exactly as `loadgen --json` + `bench_check` would apply them.
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let bench = ServeBenchReport::from_soak(&report, false, cpus);
    bench
        .validate()
        .unwrap_or_else(|e| panic!("BENCH_serve acceptance failed: {e}"));
}

/// The quick (CI smoke) configuration must hold the identical contract —
/// a smaller campaign is not allowed to be a weaker one.
#[test]
fn quick_serve_soak_holds_the_same_contract() {
    let report = run_serve_soak(&ServeSoakConfig::quick(11)).expect("soak boots");
    report
        .reconcile()
        .unwrap_or_else(|e| panic!("quick ledgers did not reconcile: {e}"));
    let lg = &report.loadgen.totals;
    assert_eq!(
        lg.ok + lg.failed + lg.shed + lg.wire_error_responses + lg.unknown_class,
        lg.offered
    );
    assert_eq!(report.loadgen.aborted_workers, 0);
    assert_eq!(lg.bit_mismatched, 0);
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let bench = ServeBenchReport::from_soak(&report, true, cpus);
    bench
        .validate()
        .unwrap_or_else(|e| panic!("quick BENCH_serve acceptance failed: {e}"));
}
