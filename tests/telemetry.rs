//! Acceptance tests for the workspace telemetry layer:
//!
//! * the no-op recorder costs under 5% on the exact MC-dropout hot path;
//! * a recording-enabled skipping run emits per-layer skip counters that
//!   reconcile *exactly* with the `SkipStats` the inference returns, both
//!   live in the registry and through the JSONL trace round-trip;
//! * the Prometheus-style dump parses back, with a nonzero fallback
//!   counter when a fault forces the robust path to degrade.
//!
//! Every test installs (or explicitly clears) the global recorder; the
//! install guard holds a process-wide lock, so the tests in this binary
//! serialize around it and never observe each other's events.

use fast_bcnn::models::ModelKind;
use fast_bcnn::telemetry::{self, Registry};
use fast_bcnn::{
    DegradedMode, Engine, EngineConfig, FaultInjector, McDropout, RobustConfig, SkipStats,
    ThresholdFault,
};
use fbcnn_bayes::BayesianNetwork;
use fbcnn_nn::Workspace;
use fbcnn_tensor::stats::softmax;
use fbcnn_tensor::Tensor;
use std::sync::Arc;
use std::time::Instant;

fn lenet_engine(samples: usize) -> Engine {
    Engine::new(EngineConfig {
        samples,
        calibration_samples: 3,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    })
}

fn probe_input(engine: &Engine, seed: u64) -> Tensor {
    fast_bcnn::synth_input(engine.network().input_shape(), seed)
}

/// Minimum wall-clock over `reps` calls, after one warmup.
fn min_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> u64 {
    std::hint::black_box(f());
    let mut best = u64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

#[test]
fn disabled_telemetry_costs_under_five_percent() {
    // Pin the recorder to "none" for the whole measurement: the guard
    // holds the install lock, so no concurrent test can enable recording
    // and inflate the instrumented timing.
    let _guard = telemetry::install_none();

    let bnet = BayesianNetwork::new(fast_bcnn::models::lenet5(1), 0.3);
    let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
        ((r * 5 + c) % 7) as f32 / 7.0
    });
    let t = 10usize;
    let seed = 0xFB_C0DE;

    // Baseline: the exact body of `McDropout::run`, minus every telemetry
    // call — what the hot path cost before this layer existed.
    let baseline = || {
        let mut ws = Workspace::new();
        let rows: Vec<Vec<f32>> = (0..t)
            .map(|s| {
                let masks = bnet.generate_masks(seed, s);
                let run = bnet.forward_sample_ws(&input, &masks, &mut ws);
                softmax(run.logits())
            })
            .collect();
        McDropout::summarize(rows)
    };
    // Instrumented: the real runner, whose spans and counters all hit the
    // disabled fast path (one relaxed atomic load each).
    let runner = McDropout::new(t, seed);
    let instrumented = || runner.run(&bnet, &input);

    assert_eq!(
        baseline().mean,
        instrumented().mean,
        "instrumentation must not change results"
    );

    let reps = 30;
    let base_ns = min_ns(reps, baseline);
    let inst_ns = min_ns(reps, instrumented);
    let overhead = inst_ns as f64 / base_ns as f64 - 1.0;
    assert!(
        overhead < 0.05,
        "disabled telemetry overhead {:.2}% (baseline {base_ns} ns, instrumented {inst_ns} ns) \
         exceeds the 5% budget",
        overhead * 100.0
    );
}

#[test]
fn skip_counters_reconcile_exactly_with_skip_stats() {
    let engine = lenet_engine(30);
    let input = probe_input(&engine, 11);

    let registry = Arc::new(Registry::new());
    let stats: SkipStats = {
        let _guard = telemetry::install(registry.clone());
        let (_, stats) = engine.predict_fast(&input);
        stats
    };
    assert!(stats.total > 0 && stats.skipped > 0, "stats: {stats:?}");

    // Registry view: the per-layer counters were recorded from the very
    // SkipMaps the run aggregated, so the totals match exactly.
    for (name, expected) in [
        ("skip_neurons_considered", stats.total),
        ("skip_neurons_dropped", stats.dropped),
        ("skip_neurons_predicted", stats.predicted),
        ("skip_neurons_skipped", stats.skipped),
    ] {
        assert_eq!(
            registry.counter_total(name),
            expected as u64,
            "{name} disagrees with SkipStats {stats:?}"
        );
    }

    // The per-sample counter agrees too.
    assert_eq!(
        registry.counter_value("mc_samples", &[("path", "skipping")]),
        Some(30)
    );

    // Trace round-trip: export as JSONL, re-read through the versioned
    // envelope parser, and reconcile again from the decoded events.
    let events = fast_bcnn::io::read_trace_str(&registry.to_jsonl()).expect("trace parses back");
    for (name, expected) in [
        ("skip_neurons_considered", stats.total),
        ("skip_neurons_dropped", stats.dropped),
        ("skip_neurons_predicted", stats.predicted),
        ("skip_neurons_skipped", stats.skipped),
    ] {
        let total: u64 = events
            .iter()
            .filter(|e| e.kind == "counter" && e.name == name)
            .map(|e| e.count)
            .sum();
        assert_eq!(
            total, expected as u64,
            "{name} lost in the JSONL round-trip"
        );
    }

    // The summarizer reads the same counters.
    let report = fast_bcnn::TelemetryReport::from_registry(&registry);
    let considered: u64 = report.layers.iter().map(|r| r.considered).sum();
    let skipped: u64 = report.layers.iter().map(|r| r.skipped).sum();
    assert_eq!(considered, stats.total as u64);
    assert_eq!(skipped, stats.skipped as u64);
    assert!((report.overall_skip_rate() - stats.skip_rate()).abs() < 1e-12);
}

#[test]
fn prometheus_dump_parses_back_with_nonzero_fallback_counter() {
    // Saturated thresholds are structurally valid but push the skip rate
    // above any sane ceiling; a tiny `max_skip_rate` then forces every
    // sample onto the exact fallback path.
    let mut engine = lenet_engine(6);
    let net = engine.network().clone();
    FaultInjector::new(7).poison_thresholds(
        engine.thresholds_mut(),
        &net,
        ThresholdFault::Saturate,
    );
    let input = probe_input(&engine, 12);
    let rc = RobustConfig {
        max_skip_rate: 0.05,
        canary_tolerance: 10.0, // canary stays quiet: degrade per sample
        ..RobustConfig::default()
    };

    let registry = Arc::new(Registry::new());
    let report = {
        let _guard = telemetry::install(registry.clone());
        let (_, report) = engine
            .predict_robust_with(&input, &rc)
            .expect("fallback path recovers");
        report
    };
    assert_eq!(report.mode, DegradedMode::PartialFallback);
    assert!(report.fallback_samples > 0);

    let text = registry.to_prometheus();
    let samples = telemetry::parse_exposition(&text).expect("exposition parses back");
    let fallback: f64 = samples
        .iter()
        .filter(|s| s.name == "engine_fallback_samples")
        .map(|s| s.value)
        .sum();
    assert_eq!(
        fallback, report.fallback_samples as f64,
        "exposition fallback counter disagrees with the robust report"
    );
    let degraded = samples
        .iter()
        .find(|s| {
            s.name == "engine_degraded_runs"
                && s.labels
                    .iter()
                    .any(|(k, v)| k == "mode" && v == "partial_fallback")
        })
        .expect("degraded-run counter exported");
    assert!(degraded.value >= 1.0);

    // The trace export of the same registry stays envelope-clean too.
    assert!(!fast_bcnn::io::read_trace_str(&registry.to_jsonl())
        .expect("trace parses")
        .is_empty());
}
