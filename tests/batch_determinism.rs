//! Determinism properties of the batched serving path:
//!
//! * `BatchEngine::run_batch` is bit-identical to sequential
//!   `predict_robust_seeded` calls for the same per-request seeds — the
//!   headline serving invariant, checked here over randomized inputs;
//! * results are invariant under worker thread count (1, 2, 4) for both
//!   the robust batch path and the exact `McDropout::run_batch` /
//!   `run_parallel` paths;
//! * a request's result is invariant under batch *composition*: which
//!   other requests share the batch, and in what order, never changes
//!   its bits.

use fast_bcnn::models::ModelKind;
use fast_bcnn::{
    synth_input, BatchConfig, BatchEngine, BatchRequest, Engine, EngineConfig, McDropout,
};
use fbcnn_bayes::McRequest;
use proptest::prelude::*;
use std::sync::OnceLock;

fn base_engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Engine::new(EngineConfig {
            samples: 3,
            calibration_samples: 2,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        })
    })
}

fn batch_engine(threads: usize) -> BatchEngine {
    BatchEngine::new(
        base_engine().clone(),
        BatchConfig {
            threads,
            ..BatchConfig::default()
        },
    )
}

fn requests_from_seeds(input_seeds: &[u64]) -> Vec<BatchRequest> {
    let engine = base_engine();
    input_seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| BatchRequest::new(i as u64, synth_input(engine.network().input_shape(), s)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn batch_is_bit_identical_to_sequential_robust_calls(
        input_seeds in proptest::collection::vec(0u64..10_000, 1..5),
    ) {
        let engine = base_engine();
        let requests = requests_from_seeds(&input_seeds);
        for threads in [1usize, 2, 4] {
            let report = batch_engine(threads).run_batch(&requests);
            prop_assert_eq!(report.depth, requests.len());
            for (req, outcome) in requests.iter().zip(&report.outcomes) {
                let (seq_pred, seq_report) = engine
                    .predict_robust_seeded(&req.input, outcome.seed)
                    .expect("sequential robust path failed");
                let (pred, rep) = outcome
                    .result
                    .as_ref()
                    .expect("batched request failed on a healthy engine");
                prop_assert_eq!(
                    pred, &seq_pred,
                    "request {} diverged from sequential at {} threads", req.id, threads
                );
                prop_assert_eq!(rep, &seq_report);
            }
        }
    }

    #[test]
    fn request_results_are_invariant_under_batch_composition(
        input_seeds in proptest::collection::vec(0u64..10_000, 2..5),
        by in 1usize..4,
    ) {
        // One request observed in three different batches: the full
        // queue, the queue rotated, and a sub-batch holding it alone.
        // Its (id, input, seed) triple is fixed, so its bits must be too.
        let requests = requests_from_seeds(&input_seeds);
        let engine = batch_engine(2);
        let full = engine.run_batch(&requests);

        let mut rotated = requests.clone();
        let pivot = by % rotated.len();
        rotated.rotate_left(pivot);
        let rotated_report = engine.run_batch(&rotated);
        for (req, outcome) in rotated.iter().zip(&rotated_report.outcomes) {
            let original = full
                .outcomes
                .iter()
                .find(|o| o.id == req.id)
                .expect("id present in full batch");
            prop_assert_eq!(
                outcome.result.as_ref().expect("rotated request failed").0.mean.clone(),
                original.result.as_ref().expect("original request failed").0.mean.clone(),
                "request {} changed bits when the batch was reordered", req.id
            );
        }

        let solo = engine.run_batch(std::slice::from_ref(&requests[0]));
        prop_assert_eq!(
            solo.outcomes[0].result.as_ref().expect("solo failed").0.mean.clone(),
            full.outcomes[0].result.as_ref().expect("full failed").0.mean.clone(),
            "request 0 changed bits between a solo batch and a full batch"
        );
    }

    #[test]
    fn exact_paths_are_invariant_under_thread_count(
        input_seed in 0u64..10_000,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let engine = base_engine();
        let bnet = engine.bayesian_network();
        let input = synth_input(engine.network().input_shape(), input_seed);
        let runner = McDropout::new(3, seed);

        // run_parallel at any thread count equals the sequential runner.
        let reference = runner.run(bnet, &input);
        for threads in [1usize, 2, 4] {
            prop_assert_eq!(
                &runner.run_parallel(bnet, &input, threads),
                &reference,
                "run_parallel diverged at {} threads", threads
            );
        }

        // run_batch at any thread count equals itself at one thread.
        let mc_requests = [
            McRequest { input: &input, seed },
            McRequest { input: &input, seed: seed ^ 1 },
        ];
        let one = runner
            .run_batch(bnet, &mc_requests, 1)
            .expect("single-threaded batch failed");
        for threads in [2usize, 4] {
            let many = runner
                .run_batch(bnet, &mc_requests, threads)
                .expect("multi-threaded batch failed");
            prop_assert_eq!(many.len(), one.len());
            for (a, b) in many.iter().zip(&one) {
                prop_assert_eq!(
                    &a.prediction, &b.prediction,
                    "exact batch diverged at {} threads", threads
                );
            }
        }
    }
}
