//! Smoke tests for every experiment driver at quick scale — each paper
//! artifact must regenerate and keep its qualitative shape.

use fast_bcnn::experiments::{
    accuracy, characterization, comparison, design_space, motivation, sensitivity, tables,
    ExpConfig,
};
use fbcnn_nn::models::ModelKind;

#[test]
fn fig04_characterization_shape() {
    let cfg = ExpConfig::quick();
    let results = characterization::run(&cfg);
    assert_eq!(results.len(), 3);
    for model in &results {
        assert!(!model.layers.is_empty());
        // The paper's two headline statistics: substantial unaffected
        // ratios and a dominant unaffected share of zero neurons.
        assert!(
            model.mean_unaffected_ratio > 0.25,
            "{}: unaffected ratio {}",
            model.model,
            model.mean_unaffected_ratio
        );
        // At full scale the share exceeds 0.85 (EXPERIMENTS.md); the
        // TINY test scale is noisier.
        assert!(
            model.mean_unaffected_share_of_zeros > 0.6,
            "{}: share {}",
            model.model,
            model.mean_unaffected_share_of_zeros
        );
    }
}

#[test]
fn fig10_design_space_shape() {
    let cfg = ExpConfig::quick();
    let r = design_space::run_model(ModelKind::LeNet5, &cfg);
    assert_eq!(r.points.len(), 4);
    for p in &r.points {
        assert!(p.speedup > 1.0, "{} speedup {}", p.design, p.speedup);
        assert!(p.energy_reduction > 0.0);
        // Prediction machinery stays a minor consumer.
        assert!(p.prediction_energy_share + p.central_energy_share < 0.5);
    }
}

#[test]
fn fig11_comparison_shape() {
    let cfg = ExpConfig::quick();
    let r = comparison::run_model(ModelKind::LeNet5, &cfg);
    let nc: Vec<(&str, f64)> = r
        .points
        .iter()
        .map(|p| (p.design.as_str(), p.normalized_cycles))
        .collect();
    let get = |n: &str| nc.iter().find(|(d, _)| *d == n).unwrap().1;
    // Fig. 11 ordering: ideal <= FB-64 < cnvlutin <= baseline.
    assert!(get("ideal") <= get("FB-64") + 1e-9);
    assert!(get("FB-64") < get("cnvlutin"));
    assert!(get("cnvlutin") <= 1.0 + 1e-9);
    assert!(r.fb_vs_cnvlutin_speedup > 1.0);
}

#[test]
fn fig12a_confidence_monotonicity() {
    let cfg = ExpConfig::quick();
    let pts = sensitivity::confidence_sweep(ModelKind::LeNet5, &[0.6, 0.9], &cfg);
    assert!(pts[0].skip_rate >= pts[1].skip_rate - 1e-9);
}

#[test]
fn fig12b_drop_rate_trend() {
    let cfg = ExpConfig::quick();
    let pts = sensitivity::drop_rate_sweep(&[0.2, 0.5], &cfg);
    assert_eq!(pts.len(), 6); // 3 models x 2 rates
    for chunk in pts.chunks(2) {
        assert!(
            chunk[1].speedup >= chunk[0].speedup - 0.1,
            "{}: speedup should not fall with drop rate ({:.2} -> {:.2})",
            chunk[0].model,
            chunk[0].speedup,
            chunk[1].speedup
        );
    }
}

#[test]
fn tables_regenerate() {
    assert_eq!(tables::table1().len(), 5);
    let t2 = tables::table2();
    assert!(t2.report.fits(&fbcnn_accel::resources::VIRTEX7_VC709));
    let t3 = tables::table3(1);
    assert_eq!(t3.len(), 3);
    for row in t3 {
        assert!((row.lfsr_4000 - row.nominal).abs() < 0.03);
    }
}

#[test]
fn motivation_slowdown_is_t() {
    let mut cfg = ExpConfig::quick();
    cfg.t = 7;
    let r = motivation::run_model(ModelKind::LeNet5, &cfg);
    assert!((r.slowdown - 7.0).abs() < 1e-9);
}

#[test]
fn trained_accuracy_pipeline_runs() {
    let cfg = accuracy::TrainedAccuracyConfig {
        train_size: 100,
        test_size: 20,
        epochs: 2,
        samples: 4,
        ..Default::default()
    };
    let results = accuracy::run(&[0.68], &cfg);
    assert_eq!(results.len(), 1);
    assert!(results[0].deterministic_accuracy > 0.2);
}
