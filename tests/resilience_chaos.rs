//! Chaos soak acceptance suite: the robustness contract of the resilient
//! serving layer, asserted (not just logged) over seeded fault campaigns,
//! plus the golden fixture that regression-locks the breaker transition
//! sequence and shed counts the way the numeric paths are locked.
//!
//! Regenerate `tests/golden/chaos_seed5.json` after an *intentional*
//! resilience-policy change with
//!
//! ```text
//! cargo test --test resilience_chaos -- --ignored regenerate
//! ```
//!
//! and commit the diff.

mod common;

use common::{assert_chaos_contract, golden_dir, CHAOS_FLOORS};
use fast_bcnn::chaos::{run_chaos, ChaosConfig};
use serde::{Deserialize, Serialize};

/// The headline acceptance soak: the [`CHAOS_FLOORS`] volume/coverage
/// floors with deadline pressure, every loss typed, zero aborts, and the
/// breaker/shed/retry/deadline counters reconciling exactly. CI runs
/// this under an outer timeout so a hang fails instead of stalling.
#[test]
fn full_soak_meets_the_acceptance_floors() {
    let started = std::time::Instant::now();
    let cfg = ChaosConfig::full(5);
    let report = run_chaos(&cfg);
    assert_chaos_contract(&report, "full soak");
    CHAOS_FLOORS.assert_met(
        "full soak",
        report.requests_total as u64,
        report.classes.len(),
        started.elapsed().as_nanos() as u64,
    );
    assert!(
        report.totals.expired > 0,
        "no deadline pressure was applied"
    );
    assert!(report.totals.shed > 0, "overload never shed");
    assert!(report.totals.degraded > 0, "degrade policy never engaged");
    assert!(
        report.totals.retry_successes > 0,
        "no transient fault was healed by retry"
    );
    assert!(
        report.totals.forced_exact > 0,
        "the breaker never forced the exact path"
    );
    assert!(
        report
            .transitions
            .iter()
            .any(|(f, t)| f == "half_open" && t == "closed"),
        "the breaker never recovered: {:?}",
        report.transitions
    );
}

// ---------------------------------------------------------------- golden

/// The pinned campaign configuration, kept in the fixture so a config
/// drift shows up as a mismatch instead of silent regeneration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct GoldenChaosConfig {
    seed: u64,
    rounds: usize,
    requests_per_round: usize,
    samples: usize,
}

impl GoldenChaosConfig {
    fn pinned() -> Self {
        let cfg = ChaosConfig::deterministic(5);
        Self {
            seed: cfg.seed,
            rounds: cfg.rounds,
            requests_per_round: cfg.requests_per_round,
            samples: cfg.samples,
        }
    }

    fn campaign(&self) -> ChaosConfig {
        ChaosConfig {
            seed: self.seed,
            rounds: self.rounds,
            requests_per_round: self.requests_per_round,
            include_latency: false,
            samples: self.samples,
        }
    }
}

/// One round's pinned resilience behavior.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct GoldenChaosRound {
    class: String,
    offered: usize,
    ok: usize,
    failed: usize,
    expired: usize,
    shed: usize,
    retries: u64,
}

/// The `tests/golden/chaos_seed5.json` fixture: the breaker transition
/// sequence and shed/loss accounting of one seeded deterministic
/// campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenChaosFixture {
    config: GoldenChaosConfig,
    transitions: Vec<(String, String)>,
    final_breaker_state: String,
    shed_total: usize,
    degraded_total: usize,
    expired_total: usize,
    loss_reasons: Vec<(String, u64)>,
    rounds: Vec<GoldenChaosRound>,
}

fn compute_fixture(cfg: &GoldenChaosConfig) -> GoldenChaosFixture {
    let report = run_chaos(&cfg.campaign());
    assert_chaos_contract(&report, "deterministic campaign");
    GoldenChaosFixture {
        config: cfg.clone(),
        transitions: report.transitions.clone(),
        final_breaker_state: report.final_breaker_state.clone(),
        shed_total: report.totals.shed,
        degraded_total: report.totals.degraded,
        expired_total: report.totals.expired,
        loss_reasons: report
            .loss_reasons
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        rounds: report
            .rounds
            .iter()
            .map(|r| GoldenChaosRound {
                class: r.class.clone(),
                offered: r.offered,
                ok: r.ok,
                failed: r.failed,
                expired: r.expired,
                shed: r.shed,
                retries: r.retries,
            })
            .collect(),
    }
}

#[test]
fn golden_chaos_seed5_breaker_walk_and_shed_counts_are_pinned() {
    let path = golden_dir().join("chaos_seed5.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} — run the ignored `regenerate` test to create it: {e}",
            path.display()
        )
    });
    let fixture: GoldenChaosFixture = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("malformed golden fixture {}: {e}", path.display()));
    assert_eq!(
        fixture.config,
        GoldenChaosConfig::pinned(),
        "fixture was generated under a different pinned campaign — regenerate"
    );
    let actual = compute_fixture(&fixture.config);
    assert_eq!(
        fixture.transitions, actual.transitions,
        "breaker transition sequence drifted"
    );
    assert_eq!(
        fixture.final_breaker_state, actual.final_breaker_state,
        "final breaker state drifted"
    );
    assert_eq!(fixture.shed_total, actual.shed_total, "shed counts drifted");
    assert_eq!(
        fixture.degraded_total, actual.degraded_total,
        "degrade counts drifted"
    );
    assert_eq!(
        fixture.expired_total, actual.expired_total,
        "deadline-expiry counts drifted"
    );
    assert_eq!(
        fixture.loss_reasons, actual.loss_reasons,
        "typed-loss buckets drifted"
    );
    assert_eq!(
        fixture.rounds, actual.rounds,
        "per-round accounting drifted"
    );
}

/// Rewrites the chaos fixture from current behavior. Ignored: run it
/// only after an intentional resilience-policy change, then review and
/// commit the diff.
#[test]
#[ignore = "regenerates the chaos golden fixture; run explicitly after intentional policy changes"]
fn regenerate() {
    let fixture = compute_fixture(&GoldenChaosConfig::pinned());
    std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
    let path = golden_dir().join("chaos_seed5.json");
    let json = serde_json::to_string_pretty(&fixture).expect("serialize");
    std::fs::write(&path, json + "\n").expect("write fixture");
    eprintln!("wrote {}", path.display());
}
