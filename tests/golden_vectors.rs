//! Golden-vector regression suite: pinned bit patterns for the exact
//! path, the skipping path, the robust pipeline and the batch engine.
//!
//! The fixtures under `tests/golden/` hold f32 probability rows as u32
//! bit patterns plus per-layer skip counts; any bit of drift in the
//! numerics — a reordered reduction, a changed mask stream, a cache that
//! leaks state between requests — fails these tests. Regenerate the
//! fixtures after an *intentional* numerics change with
//!
//! ```text
//! cargo test --test golden_vectors -- --ignored regenerate
//! ```
//!
//! and commit the diff (see README "Serving / batching").

use fast_bcnn::{
    synth_input, BatchConfig, BatchEngine, BatchRequest, Engine, EngineConfig, Prediction,
};
use fbcnn_bayes::derive_request_seed;
use fbcnn_nn::models::ModelKind;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// The pinned engine configuration. Kept in the fixture so a config
/// drift shows up as a fixture mismatch, not silent regeneration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenConfig {
    samples: usize,
    calibration_samples: usize,
    seed: u64,
}

impl GoldenConfig {
    fn pinned() -> Self {
        Self {
            samples: 6,
            calibration_samples: 4,
            seed: 0xFB_C0DE,
        }
    }

    fn engine(&self) -> Engine {
        Engine::new(EngineConfig {
            samples: self.samples,
            calibration_samples: self.calibration_samples,
            seed: self.seed,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        })
    }
}

/// Per-layer skip accounting for one `predict_fast` run, from the
/// `skip_neurons_*` telemetry counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenLayerSkips {
    layer: String,
    considered: u64,
    dropped: u64,
    predicted: u64,
    skipped: u64,
}

/// One input's pinned expectations across the three inference paths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenCase {
    input_seed: u64,
    exact_class: usize,
    /// `predict_exact` mean probabilities, f32 bit patterns.
    exact_mean_bits: Vec<u32>,
    fast_class: usize,
    /// `predict_fast` mean probabilities, f32 bit patterns.
    fast_mean_bits: Vec<u32>,
    /// Per-layer skip counts of the fast run, label order.
    layer_skips: Vec<GoldenLayerSkips>,
    /// `predict_robust_seeded` mean probabilities, f32 bit patterns.
    robust_mean_bits: Vec<u32>,
    robust_used_samples: usize,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenFixture {
    config: GoldenConfig,
    cases: Vec<GoldenCase>,
}

/// One batched request's pinned expectations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenBatchRequest {
    id: u64,
    input_seed: u64,
    /// The seed `derive_request_seed(config.seed, id)` must resolve to.
    derived_seed: u64,
    /// Batched robust mean probabilities, f32 bit patterns.
    mean_bits: Vec<u32>,
    class: usize,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GoldenBatchFixture {
    config: GoldenConfig,
    requests: Vec<GoldenBatchRequest>,
}

fn bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|v| v.to_bits()).collect()
}

/// Runs `predict_fast` with a private registry installed and returns the
/// prediction plus the per-layer skip rows it recorded. The install
/// guard also serializes golden tests against each other, so no test's
/// counters bleed into another's registry.
fn fast_with_layer_skips(
    engine: &Engine,
    input: &fbcnn_tensor::Tensor,
) -> (Prediction, Vec<GoldenLayerSkips>) {
    let registry = Arc::new(fast_bcnn::telemetry::Registry::new());
    let guard = fast_bcnn::telemetry::install(registry.clone());
    let (pred, _stats) = engine.predict_fast(input);
    drop(guard);
    let layers = fast_bcnn::TelemetryReport::from_registry(&registry)
        .layers
        .into_iter()
        .map(|r| GoldenLayerSkips {
            layer: r.layer,
            considered: r.considered,
            dropped: r.dropped,
            predicted: r.predicted,
            skipped: r.skipped,
        })
        .collect();
    (pred, layers)
}

const CASE_INPUT_SEEDS: [u64; 3] = [7, 21, 1013];
const BATCH_INPUT_SEEDS: [u64; 4] = [21, 22, 21, 23];

fn compute_case(engine: &Engine, cfg: &GoldenConfig, input_seed: u64) -> GoldenCase {
    let input = synth_input(engine.network().input_shape(), input_seed);
    let exact = engine.predict_exact(&input);
    let (fast, layer_skips) = fast_with_layer_skips(engine, &input);
    let (robust, report) = engine
        .predict_robust_seeded(&input, cfg.seed)
        .expect("robust path failed on a healthy engine");
    GoldenCase {
        input_seed,
        exact_class: exact.class,
        exact_mean_bits: bits(&exact.mean),
        fast_class: fast.class,
        fast_mean_bits: bits(&fast.mean),
        layer_skips,
        robust_mean_bits: bits(&robust.mean),
        robust_used_samples: report.used_samples,
    }
}

fn batch_requests(engine: &Engine) -> Vec<BatchRequest> {
    BATCH_INPUT_SEEDS
        .iter()
        .enumerate()
        .map(|(i, &s)| BatchRequest::new(i as u64, synth_input(engine.network().input_shape(), s)))
        .collect()
}

fn compute_batch_fixture(cfg: &GoldenConfig) -> GoldenBatchFixture {
    let engine = cfg.engine();
    let requests = batch_requests(&engine);
    let batch = BatchEngine::new(engine, BatchConfig::default());
    let report = batch.run_batch(&requests);
    let out = report
        .outcomes
        .iter()
        .zip(BATCH_INPUT_SEEDS)
        .map(|(o, input_seed)| {
            let (pred, _) = o.result.as_ref().expect("batched request failed");
            GoldenBatchRequest {
                id: o.id,
                input_seed,
                derived_seed: o.seed,
                mean_bits: bits(&pred.mean),
                class: pred.class,
            }
        })
        .collect();
    GoldenBatchFixture {
        config: cfg.clone(),
        requests: out,
    }
}

fn load<T: serde::de::DeserializeOwned>(name: &str) -> T {
    let path = golden_dir().join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} — run the ignored `regenerate` test to create it: {e}",
            path.display()
        )
    });
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("malformed golden fixture {}: {e}", path.display()))
}

#[test]
fn golden_single_request_paths_are_bit_stable() {
    let fixture: GoldenFixture = load("lenet_t6.json");
    assert_eq!(
        fixture.config,
        GoldenConfig::pinned(),
        "fixture was generated under a different pinned config — regenerate"
    );
    let engine = fixture.config.engine();
    assert_eq!(fixture.cases.len(), CASE_INPUT_SEEDS.len());
    for expected in &fixture.cases {
        let actual = compute_case(&engine, &fixture.config, expected.input_seed);
        let tag = format!("input {}", expected.input_seed);
        assert_eq!(
            expected.exact_class, actual.exact_class,
            "{tag}: exact class"
        );
        assert_eq!(
            expected.exact_mean_bits, actual.exact_mean_bits,
            "{tag}: exact mean bit drift"
        );
        assert_eq!(expected.fast_class, actual.fast_class, "{tag}: fast class");
        assert_eq!(
            expected.fast_mean_bits, actual.fast_mean_bits,
            "{tag}: fast mean bit drift"
        );
        assert_eq!(
            expected.layer_skips, actual.layer_skips,
            "{tag}: per-layer skip counts drifted"
        );
        assert_eq!(
            expected.robust_mean_bits, actual.robust_mean_bits,
            "{tag}: robust mean bit drift"
        );
        assert_eq!(
            expected.robust_used_samples, actual.robust_used_samples,
            "{tag}: robust sample accounting drifted"
        );
    }
}

#[test]
fn golden_batch_results_are_bit_stable_and_match_sequential() {
    let fixture: GoldenBatchFixture = load("batch_lenet_t6.json");
    assert_eq!(fixture.config, GoldenConfig::pinned(), "regenerate");
    let actual = compute_batch_fixture(&fixture.config);
    assert_eq!(fixture.requests.len(), actual.requests.len());
    let engine = fixture.config.engine();
    for (expected, got) in fixture.requests.iter().zip(&actual.requests) {
        let tag = format!("request {}", expected.id);
        assert_eq!(
            expected.derived_seed,
            derive_request_seed(fixture.config.seed, expected.id),
            "{tag}: seed derivation drifted"
        );
        assert_eq!(expected.derived_seed, got.derived_seed, "{tag}: seed");
        assert_eq!(expected.class, got.class, "{tag}: class");
        assert_eq!(
            expected.mean_bits, got.mean_bits,
            "{tag}: batch mean bit drift"
        );
        // The headline invariant, pinned from the fixture side too: the
        // batched bits equal a fresh sequential robust call's bits.
        let input = synth_input(engine.network().input_shape(), expected.input_seed);
        let (seq, _) = engine
            .predict_robust_seeded(&input, expected.derived_seed)
            .expect("sequential robust failed");
        assert_eq!(
            expected.mean_bits,
            bits(&seq.mean),
            "{tag}: batch fixture diverged from sequential predict_robust_seeded"
        );
    }
}

/// Rewrites both fixtures from current behavior. Ignored: run it only
/// after an intentional numerics change, then review and commit the
/// diff.
#[test]
#[ignore = "regenerates the golden fixtures; run explicitly after intentional numerics changes"]
fn regenerate() {
    let cfg = GoldenConfig::pinned();
    let engine = cfg.engine();
    let fixture = GoldenFixture {
        config: cfg.clone(),
        cases: CASE_INPUT_SEEDS
            .iter()
            .map(|&s| compute_case(&engine, &cfg, s))
            .collect(),
    };
    let batch = compute_batch_fixture(&cfg);
    std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
    for (name, json) in [
        (
            "lenet_t6.json",
            serde_json::to_string_pretty(&fixture).expect("serialize"),
        ),
        (
            "batch_lenet_t6.json",
            serde_json::to_string_pretty(&batch).expect("serialize"),
        ),
    ] {
        let path = golden_dir().join(name);
        std::fs::write(&path, json + "\n").expect("write fixture");
        eprintln!("wrote {}", path.display());
    }
}
