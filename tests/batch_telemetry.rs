//! Telemetry acceptance for the batched serving path:
//!
//! * the `batch_requests` / `batch_cache_*` counters reconcile exactly
//!   with the [`fast_bcnn::BatchReport`];
//! * the `skip_neurons_*` counters a batch records reconcile with the
//!   per-request `SkipStats` in each outcome's `RobustReport` (plus each
//!   request's canary sample, which the robust pipeline always runs);
//! * a batch run's registry exports cleanly: the JSONL trace round-trips
//!   through the versioned envelope reader and the Prometheus-style dump
//!   parses back — the same checks `trace_check` applies in CI to a
//!   `fastbcnn serve-batch --trace-out/--metrics-out` run;
//! * a fault-degraded batch keeps its fallback accounting consistent
//!   between counters and per-request reports.
//!
//! Every test installs a private registry; the install guard holds a
//! process-wide lock, so the tests serialize and never observe each
//! other's events.

use fast_bcnn::models::ModelKind;
use fast_bcnn::telemetry::{self, parse_exposition, Registry};
use fast_bcnn::{
    synth_input, BatchConfig, BatchEngine, BatchReport, BatchRequest, DegradedMode, Engine,
    EngineConfig, FaultInjector, PredictiveInference, RobustConfig, SkipStats, ThresholdFault,
};
use std::sync::Arc;

fn lenet_engine(samples: usize) -> Engine {
    Engine::new(EngineConfig {
        samples,
        calibration_samples: 3,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    })
}

/// Four requests over three distinct inputs: one repeat to exercise the
/// pre-inference cache.
fn queue(engine: &Engine) -> Vec<BatchRequest> {
    [31u64, 32, 31, 33]
        .iter()
        .enumerate()
        .map(|(i, &s)| BatchRequest::new(i as u64, synth_input(engine.network().input_shape(), s)))
        .collect()
}

fn run_recorded(batch: &BatchEngine, requests: &[BatchRequest]) -> (Arc<Registry>, BatchReport) {
    let registry = Arc::new(Registry::new());
    let report = {
        let _guard = telemetry::install(registry.clone());
        batch.run_batch(requests)
    };
    (registry, report)
}

#[test]
fn batch_counters_reconcile_with_report_and_per_request_skip_stats() {
    let engine = lenet_engine(4);
    let requests = queue(&engine);
    let batch = BatchEngine::new(engine.clone(), BatchConfig::default());
    let (registry, report) = run_recorded(&batch, &requests);
    assert!(report.all_ok());

    // Batch bookkeeping counters mirror the report exactly.
    assert_eq!(
        registry.counter_total("batch_requests"),
        requests.len() as u64
    );
    assert_eq!(
        registry.counter_total("batch_cache_hits"),
        report.cache_hits as u64
    );
    assert_eq!(
        registry.counter_total("batch_cache_misses"),
        report.cache_misses as u64
    );
    assert_eq!(report.cache_hits, 1, "one repeated input");
    assert_eq!(report.cache_misses, 3);

    // Per-layer skip counters reconcile with the per-request SkipStats.
    // The robust pipeline runs one extra fast sample per request (the
    // canary, sample 0), whose stats are recorded but deliberately not
    // absorbed into RobustReport::skip — account for it explicitly from
    // the public predictor API.
    let mut expected = SkipStats::default();
    for (req, outcome) in requests.iter().zip(&report.outcomes) {
        let (_, rep) = outcome.result.as_ref().expect("healthy batch");
        expected.absorb(rep.skip);
        let fast = PredictiveInference::new(
            engine.bayesian_network(),
            &req.input,
            engine.thresholds().clone(),
        );
        let canary = fast.run_sample(&engine.bayesian_network().generate_masks(outcome.seed, 0));
        expected.absorb(canary.stats());
    }
    for (name, want) in [
        ("skip_neurons_considered", expected.total),
        ("skip_neurons_dropped", expected.dropped),
        ("skip_neurons_predicted", expected.predicted),
        ("skip_neurons_skipped", expected.skipped),
    ] {
        assert_eq!(
            registry.counter_total(name),
            want as u64,
            "{name} disagrees with per-request SkipStats + canaries"
        );
    }

    // The TelemetryReport digest reads the same registry consistently.
    let digest = fast_bcnn::TelemetryReport::from_registry(&registry);
    assert_eq!(digest.batch_requests, requests.len() as u64);
    assert_eq!(digest.batch_cache_hits, report.cache_hits as u64);
    assert_eq!(digest.batch_cache_misses, report.cache_misses as u64);
    let considered: u64 = digest.layers.iter().map(|r| r.considered).sum();
    assert_eq!(considered, expected.total as u64);
    assert!(digest.render().contains("batch requests 4"));
}

#[test]
fn batch_run_exports_parse_like_trace_check() {
    let engine = lenet_engine(3);
    let requests = queue(&engine);
    let batch = BatchEngine::new(
        engine,
        BatchConfig {
            threads: 2,
            ..BatchConfig::default()
        },
    );
    let (registry, report) = run_recorded(&batch, &requests);
    assert!(report.all_ok());

    // JSONL round-trip through the same versioned envelope reader that
    // backs `trace_check`, including the batch span and histograms.
    let events = fast_bcnn::io::read_trace_str(&registry.to_jsonl()).expect("trace parses back");
    assert!(events
        .iter()
        .any(|e| e.kind == "span" && e.name == "batch_run"));
    assert!(events
        .iter()
        .any(|e| e.kind == "histogram" && e.name == "batch_depth"));
    assert!(events
        .iter()
        .any(|e| e.kind == "histogram" && e.name == "batch_queue_wait_ns"));
    let batched: u64 = events
        .iter()
        .filter(|e| e.kind == "counter" && e.name == "batch_requests")
        .map(|e| e.count)
        .sum();
    assert_eq!(batched, requests.len() as u64);

    // Prometheus exposition parses back with the batch counters present.
    let samples = parse_exposition(&registry.to_prometheus()).expect("exposition parses back");
    let total: f64 = samples
        .iter()
        .filter(|s| s.name == "batch_requests")
        .map(|s| s.value)
        .sum();
    assert_eq!(total, requests.len() as f64);
}

#[test]
fn degraded_batch_keeps_fallback_accounting_consistent() {
    // Saturated thresholds + a tiny skip-rate ceiling force every sample
    // of every request onto the exact fallback path; the batch must keep
    // the per-request isolation and the counter accounting intact.
    let mut engine = lenet_engine(3);
    let net = engine.network().clone();
    FaultInjector::new(7).poison_thresholds(
        engine.thresholds_mut(),
        &net,
        ThresholdFault::Saturate,
    );
    let requests = queue(&engine);
    let batch = BatchEngine::new(
        engine,
        BatchConfig {
            robust: RobustConfig {
                max_skip_rate: 0.05,
                canary_tolerance: 10.0, // keep the canary quiet: degrade per sample
                ..RobustConfig::default()
            },
            ..BatchConfig::default()
        },
    );
    let (registry, report) = run_recorded(&batch, &requests);
    assert!(report.all_ok(), "fallback path must recover every request");

    let mut fallback_total = 0u64;
    for outcome in &report.outcomes {
        let (pred, rep) = outcome.result.as_ref().expect("recovered");
        assert_eq!(rep.mode, DegradedMode::PartialFallback);
        assert!(rep.fallback_samples > 0);
        assert!(pred.mean.iter().all(|p| (0.0..=1.0).contains(p)));
        fallback_total += rep.fallback_samples as u64;
    }
    assert_eq!(
        registry.counter_total("engine_fallback_samples"),
        fallback_total,
        "fallback counter disagrees with the per-request reports"
    );
    assert_eq!(
        registry.counter_total("batch_requests"),
        requests.len() as u64
    );
}
