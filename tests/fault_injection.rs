//! Fault-injection suite: every fault class from `fast_bcnn::faults` is
//! either *detected* (a typed error names the problem) or *recovered*
//! (graceful degradation produces a prediction within tolerance of the
//! exact path). In no case may a fault abort the process — the suite
//! finishing at all is half the point.
//!
//! Fault classes exercised: conv-weight bit flips / NaN poisoning,
//! dropout-mask corruption (bit flips and shape breaks), threshold
//! poisoning (saturation, truncation, misaddressing) and MC worker kills.

use fast_bcnn::models::ModelKind;
use fast_bcnn::{
    ActivationGuard, BayesError, Engine, EngineConfig, FaultInjector, GuardPolicy, InferenceError,
    McDropout, RobustConfig, ThresholdError, ThresholdFault,
};
use fbcnn_tensor::Tensor;
use std::sync::OnceLock;

fn base_engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Engine::new(EngineConfig {
            samples: 6,
            calibration_samples: 3,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        })
    })
}

fn probe_input(engine: &Engine, seed: u64) -> Tensor {
    fast_bcnn::synth_input(engine.network().input_shape(), seed)
}

fn l1(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

// ---------------------------------------------------------------- weights

#[test]
fn nan_weight_poisoning_is_detected_as_a_typed_error() {
    let mut engine = base_engine().clone();
    let flip = FaultInjector::new(0xDEAD)
        .poison_conv_weight_nan(engine.bayesian_network_mut().network_mut())
        .expect("lenet has conv weights");
    assert!(flip.after.is_nan());
    let input = probe_input(&engine, 1);
    // Corrupt weights have no healthy fallback: detection, not recovery.
    match engine.predict_robust(&input) {
        Err(InferenceError::Numeric(_)) => {}
        other => panic!("NaN weights must be a numeric fault, got {other:?}"),
    }
}

#[test]
fn random_weight_bit_flips_are_detected_or_recovered() {
    let input = probe_input(base_engine(), 2);
    let mut detected = 0usize;
    let mut recovered = 0usize;
    for seed in 0..12u64 {
        let mut engine = base_engine().clone();
        let flip = FaultInjector::new(seed)
            .flip_conv_weight_bit(engine.bayesian_network_mut().network_mut())
            .expect("lenet has conv weights");
        match engine.predict_robust(&input) {
            // Detected: the guard (or the sanity checks) refused the run.
            Err(InferenceError::Numeric(_) | InferenceError::AllSamplesFailed { .. }) => {
                detected += 1
            }
            Err(other) => panic!("unexpected error class for bit flip {flip:?}: {other}"),
            // Recovered: the prediction must track the engine's own exact
            // path on the (identically flipped) weights.
            Ok((pred, report)) => {
                let exact = engine.predict_exact(&input);
                assert!(
                    l1(&pred.mean, &exact.mean) < 0.15,
                    "flip {flip:?} drifted {} from exact (report {report:?})",
                    l1(&pred.mean, &exact.mean)
                );
                assert!(pred.mean.iter().all(|p| p.is_finite()));
                recovered += 1;
            }
        }
    }
    assert_eq!(detected + recovered, 12);
    assert!(recovered > 0, "mantissa-region flips should survive");
}

// ------------------------------------------------------------------ masks

#[test]
fn mask_bit_corruption_is_absorbed_statistically() {
    let engine = base_engine();
    let bnet = engine.bayesian_network();
    let input = probe_input(engine, 3);
    let guard = ActivationGuard::default();
    let mut ws = fbcnn_nn::Workspace::new();
    let mut inj = FaultInjector::new(0xC0FFEE);
    for t in 0..4 {
        let clean = bnet.generate_masks(7, t);
        let mut dirty = clean.clone();
        inj.corrupt_masks(&mut dirty, 5);
        let (clean_run, _) = bnet
            .forward_sample_checked(&input, &clean, &mut ws, &guard)
            .expect("clean masks pass");
        let (dirty_run, _) = bnet
            .forward_sample_checked(&input, &dirty, &mut ws, &guard)
            .expect("bit-corrupted masks are valid masks");
        let a = fbcnn_tensor::stats::softmax(clean_run.logits());
        let b = fbcnn_tensor::stats::softmax(dirty_run.logits());
        assert!(ActivationGuard::probs_are_sane(&b));
        // A handful of flipped dropout bits sits inside MC-dropout's own
        // sampling noise; the row may move but must stay comparable.
        assert!(l1(&a, &b) < 0.6, "sample {t} moved {}", l1(&a, &b));
    }
}

#[test]
fn wrong_shape_masks_are_a_typed_error_not_a_panic() {
    let engine = base_engine();
    let bnet = engine.bayesian_network();
    let input = probe_input(engine, 4);
    let killer = FaultInjector::sample_killing_masks(bnet);
    let mut ws = fbcnn_nn::Workspace::new();
    match bnet.forward_sample_checked(&input, &killer, &mut ws, &ActivationGuard::default()) {
        Err(BayesError::MaskShape { .. } | BayesError::MissingMask { .. }) => {}
        other => panic!("expected a mask validation error, got {other:?}"),
    }
}

// ------------------------------------------------------------- thresholds

#[test]
fn truncated_thresholds_are_detected_structurally() {
    let mut engine = base_engine().clone();
    let net = engine.network().clone();
    FaultInjector::new(5).poison_thresholds(
        engine.thresholds_mut(),
        &net,
        ThresholdFault::Truncate,
    );
    let input = probe_input(&engine, 5);
    match engine.predict_robust(&input) {
        Err(InferenceError::Thresholds(ThresholdError::KernelCountMismatch { .. })) => {}
        other => panic!("expected a kernel-count mismatch, got {other:?}"),
    }
}

#[test]
fn misaddressed_thresholds_are_detected_structurally() {
    let mut engine = base_engine().clone();
    let net = engine.network().clone();
    FaultInjector::new(6).poison_thresholds(
        engine.thresholds_mut(),
        &net,
        ThresholdFault::Misaddress,
    );
    let input = probe_input(&engine, 6);
    match engine.predict_robust(&input) {
        Err(InferenceError::Thresholds(
            ThresholdError::NotAConvNode { .. } | ThresholdError::UnknownNode { .. },
        )) => {}
        other => panic!("expected a structural threshold error, got {other:?}"),
    }
}

#[test]
fn saturated_thresholds_are_recovered_within_tolerance() {
    // u16::MAX thresholds are structurally valid — every zero neuron is
    // "predicted" and skipped. The skipping design bounds the harm: only
    // pre-inference-zero neurons are skip candidates, so even maximal
    // value poisoning can at worst force all of them to zero — an
    // operating point the canary and skip-rate anomaly checks watch, and
    // that stays within tolerance of the exact path on these models
    // (calibration at p_cf = 0.68 already predicts nearly all of them).
    let mut engine = base_engine().clone();
    let net = engine.network().clone();
    FaultInjector::new(7).poison_thresholds(
        engine.thresholds_mut(),
        &net,
        ThresholdFault::Saturate,
    );
    let input = probe_input(&engine, 7);
    let (pred, report) = engine
        .predict_robust(&input)
        .expect("saturation must be recovered, not fatal");
    assert!(ActivationGuard::probs_are_sane(&pred.mean));
    assert_eq!(report.used_samples, engine.config().samples);
    assert_eq!(report.lost_samples, 0);
    // Recovery contract: the prediction tracks the untainted engine's
    // exact path (thresholds never affect the exact path).
    let exact = base_engine().predict_exact(&input);
    assert!(
        l1(&pred.mean, &exact.mean) < 0.25,
        "poisoned-threshold mean drifted {} from exact (report {report:?})",
        l1(&pred.mean, &exact.mean)
    );
}

// ---------------------------------------------------------------- workers

#[test]
fn killed_workers_lose_only_their_own_samples() {
    let engine = base_engine();
    let bnet = engine.bayesian_network();
    let input = probe_input(engine, 8);
    let runner = McDropout::new(6, engine.config().seed);
    let run = runner
        .run_isolated_with_masks(bnet, &input, 2, |t| {
            if t == 2 {
                FaultInjector::sample_killing_masks(bnet)
            } else {
                bnet.generate_masks(engine.config().seed, t)
            }
        })
        .expect("five of six samples survive");
    assert_eq!(run.failed, vec![2]);
    assert!(ActivationGuard::probs_are_sane(&run.prediction.mean));
    // The survivors are bit-identical to a clean sequential run of the
    // same masks, so killing one worker only widens the MC estimate.
    let clean = runner.run(bnet, &input);
    assert_eq!(clean.mean.len(), run.prediction.mean.len());
    assert!(l1(&clean.mean, &run.prediction.mean) < 0.3);
}

#[test]
fn all_workers_killed_is_a_typed_error() {
    let engine = base_engine();
    let bnet = engine.bayesian_network();
    let input = probe_input(engine, 9);
    let result = McDropout::new(4, 1).run_isolated_with_masks(bnet, &input, 2, |_| {
        FaultInjector::sample_killing_masks(bnet)
    });
    assert_eq!(result, Err(BayesError::AllSamplesFailed { requested: 4 }));
}

// -------------------------------------------------------------- telemetry
//
// The degradation paths must be observable: falling back (partially or
// wholesale) increments the engine's fallback/degraded-run counters.
// Assertions use >= rather than == because sibling tests in this binary
// run concurrently and may record into whichever registry is installed.

#[test]
fn partial_fallback_under_fault_increments_the_fallback_counter() {
    let mut engine = base_engine().clone();
    let net = engine.network().clone();
    FaultInjector::new(7).poison_thresholds(
        engine.thresholds_mut(),
        &net,
        ThresholdFault::Saturate,
    );
    let input = probe_input(&engine, 11);
    let rc = RobustConfig {
        max_skip_rate: 0.05,    // every fast sample looks anomalous
        canary_tolerance: 10.0, // but the canary stays quiet
        ..RobustConfig::default()
    };
    let registry = std::sync::Arc::new(fast_bcnn::telemetry::Registry::new());
    let _guard = fast_bcnn::telemetry::install(registry.clone());
    let (_, report) = engine
        .predict_robust_with(&input, &rc)
        .expect("per-sample fallback recovers");
    assert_eq!(report.mode, fast_bcnn::DegradedMode::PartialFallback);
    assert!(report.fallback_samples > 0);
    assert!(
        registry.counter_total("engine_fallback_samples") >= report.fallback_samples as u64,
        "fallback counter lags the robust report"
    );
    assert!(
        registry
            .counter_value("engine_degraded_runs", &[("mode", "partial_fallback")])
            .unwrap_or(0)
            >= 1
    );
}

#[test]
fn full_fallback_under_fault_is_counted_as_a_degraded_run() {
    let mut engine = base_engine().clone();
    let net = engine.network().clone();
    FaultInjector::new(7).poison_thresholds(
        engine.thresholds_mut(),
        &net,
        ThresholdFault::Saturate,
    );
    let input = probe_input(&engine, 12);
    let rc = RobustConfig {
        canary_tolerance: 0.0, // any fast/exact divergence trips the canary
        ..RobustConfig::default()
    };
    let registry = std::sync::Arc::new(fast_bcnn::telemetry::Registry::new());
    let _guard = fast_bcnn::telemetry::install(registry.clone());
    let (_, report) = engine
        .predict_robust_with(&input, &rc)
        .expect("wholesale fallback recovers");
    assert_eq!(report.mode, fast_bcnn::DegradedMode::FullFallback);
    assert_eq!(report.fallback_samples, engine.config().samples);
    assert!(registry.counter_total("engine_fallback_samples") >= report.fallback_samples as u64);
    assert!(registry.counter_total("engine_canary_trips") >= 1);
    assert!(
        registry
            .counter_value("engine_degraded_runs", &[("mode", "full_fallback")])
            .unwrap_or(0)
            >= 1
    );
}

// ------------------------------------------------------------ guard modes

#[test]
fn strict_guard_policy_turns_recovery_into_detection() {
    // Under GuardPolicy::Fail the engine must not silently degrade: an
    // anomalous fast path whose exact fallback also faults becomes a
    // typed error. NaN weights trip the pre-inference screen first.
    let mut engine = base_engine().clone();
    FaultInjector::new(0xBAD)
        .poison_conv_weight_nan(engine.bayesian_network_mut().network_mut())
        .expect("lenet has conv weights");
    let input = probe_input(&engine, 10);
    let rc = RobustConfig {
        guard: ActivationGuard::strict(),
        ..RobustConfig::default()
    };
    match engine.predict_robust_with(&input, &rc) {
        Err(InferenceError::Numeric(_)) => {}
        other => panic!("strict guard must fail typed, got {other:?}"),
    }
    assert_eq!(rc.guard.policy, GuardPolicy::Fail);
}
