//! Property tests for the robustness layer: no randomly injected fault —
//! corrupted dropout masks, arbitrary threshold values, flipped weight
//! bits — may ever make `predict_fast` / `predict_robust` emit a `NaN`
//! or an out-of-`[0, 1]` probability. Faults either surface as typed
//! errors or degrade into predictions that still pass the probability
//! sanity check.

use fast_bcnn::models::ModelKind;
use fast_bcnn::{
    ActivationGuard, Engine, EngineConfig, FaultInjector, InferenceError, ThresholdSet,
};
use fbcnn_nn::Workspace;
use proptest::prelude::*;
use std::sync::OnceLock;

fn base_engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Engine::new(EngineConfig {
            samples: 3,
            calibration_samples: 2,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        })
    })
}

fn assert_probs_in_unit_interval(probs: &[f32], context: &str) {
    assert!(
        ActivationGuard::probs_are_sane(probs),
        "{context}: insane probability row {probs:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn arbitrary_threshold_values_never_break_probabilities(
        fill in proptest::arbitrary::any::<u16>(),
        jitter_seed in proptest::arbitrary::any::<u64>(),
        input_seed in 0u64..1000,
    ) {
        // Structurally valid thresholds with arbitrary values — every
        // value is a legal operating point and must yield sane rows.
        let mut engine = base_engine().clone();
        let nodes: Vec<_> = engine.thresholds().nodes().collect();
        let mut state = jitter_seed;
        let mut next_u16 = move || -> u16 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z >> 48) as u16
        };
        let mut poisoned = ThresholdSet::never_predict(engine.network().len());
        for node in nodes {
            let len = engine
                .thresholds()
                .get(node)
                .map(<[u16]>::len)
                .unwrap_or_default();
            // Half the kernels take the proptest fill value, half a
            // per-kernel pseudo-random value.
            let vals: Vec<u16> = (0..len)
                .map(|i| if i % 2 == 0 { fill } else { next_u16() })
                .collect();
            poisoned.insert(node, vals);
        }
        *engine.thresholds_mut() = poisoned;

        let input = fast_bcnn::synth_input(engine.network().input_shape(), input_seed);
        let (fast, _) = engine.predict_fast(&input);
        assert_probs_in_unit_interval(&fast.mean, "predict_fast mean");
        match engine.predict_robust(&input) {
            Ok((pred, report)) => {
                assert_probs_in_unit_interval(&pred.mean, "predict_robust mean");
                prop_assert!(report.used_samples > 0);
            }
            Err(e) => prop_assert!(
                matches!(e, InferenceError::Thresholds(_)),
                "unexpected error class: {e}"
            ),
        }
    }

    #[test]
    fn corrupted_masks_never_break_probabilities(
        fault_seed in proptest::arbitrary::any::<u64>(),
        flips in 1usize..24,
        t in 0usize..4,
    ) {
        let engine = base_engine();
        let bnet = engine.bayesian_network();
        let input = fast_bcnn::synth_input(engine.network().input_shape(), 42);
        let mut masks = bnet.generate_masks(engine.config().seed, t);
        FaultInjector::new(fault_seed).corrupt_masks(&mut masks, flips);
        let mut ws = Workspace::new();
        let guard = ActivationGuard::default();
        let (run, repaired) = bnet
            .forward_sample_checked(&input, &masks, &mut ws, &guard)
            .expect("bit-corrupted masks keep valid shapes");
        prop_assert_eq!(repaired, 0);
        let probs = fbcnn_tensor::stats::softmax(run.logits());
        assert_probs_in_unit_interval(&probs, "corrupted-mask sample row");
    }

    #[test]
    fn flipped_weight_bits_error_or_stay_sane(
        fault_seed in proptest::arbitrary::any::<u64>(),
        input_seed in 0u64..1000,
    ) {
        let mut engine = base_engine().clone();
        FaultInjector::new(fault_seed)
            .flip_conv_weight_bit(engine.bayesian_network_mut().network_mut())
            .expect("lenet has conv weights");
        let input = fast_bcnn::synth_input(engine.network().input_shape(), input_seed);
        match engine.predict_robust(&input) {
            Ok((pred, _)) => assert_probs_in_unit_interval(&pred.mean, "flipped-bit robust mean"),
            Err(
                InferenceError::Numeric(_) | InferenceError::AllSamplesFailed { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }
}
