//! Golden wire fixtures for the serve tier: pinned request/response
//! byte images (including an expired partial-T response, a shed
//! response and a typed wire-error response) plus the pinned server
//! counter totals, regression-locking the protocol the way the numeric
//! paths are locked by `tests/golden_vectors.rs`.
//!
//! Regenerate `tests/golden/serve_*.json` after an *intentional*
//! protocol or policy change with
//!
//! ```text
//! cargo test --test serve_golden -- --ignored regenerate
//! ```
//!
//! and commit the diff.

mod common;

use common::golden_dir;
use fast_bcnn::serve::{
    encode_frame, serve, soak_classes, FrameDecoder, LoadMode, ServeConfig, ServeRequest,
    ServeResponse, ServeSoakConfig, ServeTotals, DEFAULT_MAX_FRAME_BYTES, REQUEST_KIND,
};
use fast_bcnn::synth_input;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const WIRE_FIXTURE: &str = "serve_wire_seed5.json";
const TOTALS_FIXTURE: &str = "serve_totals_seed5.json";

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn from_hex(s: &str) -> Vec<u8> {
    assert!(
        s.len().is_multiple_of(2),
        "odd hex image length {}",
        s.len()
    );
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex image"))
        .collect()
}

/// The pinned campaign configuration, kept in the fixtures so a config
/// drift shows up as a mismatch instead of silent regeneration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct GoldenServeConfig {
    seed: u64,
    samples: usize,
    shards: usize,
}

impl GoldenServeConfig {
    fn pinned() -> Self {
        Self {
            seed: 5,
            samples: 4,
            shards: 1,
        }
    }

    fn soak(&self) -> ServeSoakConfig {
        ServeSoakConfig {
            seed: self.seed,
            samples: self.samples,
            shards: self.shards,
            connections: 1,
            requests_per_connection: 0,
            mode: LoadMode::Closed,
            time_limit: Duration::from_secs(45),
        }
    }
}

/// One pinned request/response wire exchange, as literal byte images.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct GoldenExchange {
    name: String,
    request_hex: String,
    response_hex: String,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct GoldenWireFixture {
    config: GoldenServeConfig,
    exchanges: Vec<GoldenExchange>,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct GoldenTotalsFixture {
    config: GoldenServeConfig,
    totals: ServeTotals,
}

/// The pinned request mix: one exchange per counter the serve tier can
/// produce — healthy interactive and batch predictions, a deterministic
/// expired partial-T prediction, an admission shed, an unknown class and
/// a stale-version wire error.
fn pinned_plan(cfg: &GoldenServeConfig, shape: fbcnn_tensor::Shape) -> Vec<(String, Vec<u8>)> {
    let max = DEFAULT_MAX_FRAME_BYTES;
    let mut plan = Vec::new();
    for (i, class) in ["interactive", "batch", "degraded", "reject"]
        .iter()
        .enumerate()
    {
        let input = synth_input(shape, cfg.seed ^ (100 + i as u64));
        let req = ServeRequest::from_input(i as u64 + 1, *class, &input);
        plan.push((class.to_string(), req.encode(max).expect("encode")));
    }
    let unknown = ServeRequest::from_input(5, "mystery", &synth_input(shape, cfg.seed ^ 105));
    plan.push((
        "unknown_class".to_string(),
        unknown.encode(max).expect("encode"),
    ));
    let stale = encode_frame(
        format!("{{\"artifact\":\"{REQUEST_KIND}\",\"version\":99,\"payload\":{{}}}}").as_bytes(),
        max,
    )
    .expect("frame");
    plan.push(("stale_version".to_string(), stale));
    plan
}

/// Runs the pinned mix over one sequential connection against a fresh
/// seeded server and returns every wire exchange plus the final server
/// totals. Everything here must be a pure function of the pinned config.
fn run_campaign(cfg: &GoldenServeConfig) -> (Vec<GoldenExchange>, ServeTotals) {
    let (registry, reference) =
        fast_bcnn::serve::build_soak_registry(&cfg.soak()).expect("registry boots");
    let server = serve(
        Arc::clone(&registry),
        ServeConfig {
            classes: soak_classes(cfg.samples),
            ..ServeConfig::default()
        },
    )
    .expect("server binds");
    let shape = reference.network().input_shape();
    let plan = pinned_plan(cfg, shape);

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME_BYTES);
    let mut exchanges = Vec::new();
    for (name, frame) in plan {
        stream.write_all(&frame).expect("send");
        let payload = loop {
            if let Some(p) = decoder.next_frame().expect("decode") {
                break p;
            }
            let mut buf = [0u8; 4096];
            let n = stream.read(&mut buf).expect("recv");
            assert!(n > 0, "server closed mid-exchange on `{name}`");
            decoder.push(&buf[..n]);
        };
        let response = encode_frame(&payload, DEFAULT_MAX_FRAME_BYTES).expect("reframe");
        exchanges.push(GoldenExchange {
            name,
            request_hex: to_hex(&frame),
            response_hex: to_hex(&response),
        });
    }
    drop(stream);
    let totals = server.shutdown();
    (exchanges, totals)
}

/// Decodes a pinned response image back to the typed message.
fn decode_response(exchange: &GoldenExchange) -> ServeResponse {
    let bytes = from_hex(&exchange.response_hex);
    let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME_BYTES);
    decoder.push(&bytes);
    let payload = decoder
        .next_frame()
        .expect("pinned image frames")
        .expect("pinned image is complete");
    ServeResponse::decode(&payload)
        .unwrap_or_else(|e| panic!("pinned response `{}` undecodable: {e}", exchange.name))
}

/// The semantic contract of the pinned mix, asserted on whatever
/// exchanges the campaign (or the fixture) holds, so a regeneration can
/// never silently pin wrong behavior.
fn assert_mix_semantics(exchanges: &[GoldenExchange]) {
    let by_name = |name: &str| {
        exchanges
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("mix lost the `{name}` exchange"))
    };
    for name in ["interactive", "batch"] {
        let resp = decode_response(by_name(name));
        assert!(
            resp.is_pristine(),
            "{name} response is not pristine: {resp:?}"
        );
        assert_eq!(
            resp.used_samples, resp.requested_samples,
            "{name} lost samples"
        );
        assert!(!resp.mean_bits.is_empty(), "{name} carries no posterior");
    }
    let degraded = decode_response(by_name("degraded"));
    assert!(degraded.ok, "partial-T response must still predict");
    assert!(
        degraded.expired,
        "sample budget must expire the degraded class"
    );
    assert!(
        degraded.used_samples < degraded.requested_samples,
        "expired response used {} of {} samples — not partial",
        degraded.used_samples,
        degraded.requested_samples
    );
    let shed = decode_response(by_name("reject"));
    assert!(shed.shed, "reject class must shed");
    assert_eq!(shed.reason, "overloaded");
    assert!(
        !shed.ok && shed.mean_bits.is_empty(),
        "shed must not predict"
    );
    let unknown = decode_response(by_name("unknown_class"));
    assert_eq!(unknown.reason, "unknown_class");
    let stale = decode_response(by_name("stale_version"));
    assert_eq!(stale.reason, "wire_stale_version");
    assert_eq!(stale.id, 0, "an undecodable request cannot echo an id");
}

#[test]
fn golden_serve_wire_images_are_pinned() {
    let path = golden_dir().join(WIRE_FIXTURE);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} — run the ignored `regenerate` test to create it: {e}",
            path.display()
        )
    });
    let fixture: GoldenWireFixture = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("malformed golden fixture {}: {e}", path.display()));
    assert_eq!(
        fixture.config,
        GoldenServeConfig::pinned(),
        "fixture was generated under a different pinned campaign — regenerate"
    );
    assert_mix_semantics(&fixture.exchanges);
    let (actual, _) = run_campaign(&fixture.config);
    assert_eq!(
        fixture.exchanges.len(),
        actual.len(),
        "exchange count drifted"
    );
    for (pinned, live) in fixture.exchanges.iter().zip(&actual) {
        assert_eq!(pinned.name, live.name, "exchange order drifted");
        assert_eq!(
            pinned.request_hex, live.request_hex,
            "`{}` request byte image drifted",
            pinned.name
        );
        assert_eq!(
            pinned.response_hex, live.response_hex,
            "`{}` response byte image drifted",
            pinned.name
        );
    }
}

#[test]
fn golden_serve_counter_totals_are_pinned() {
    let path = golden_dir().join(TOTALS_FIXTURE);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} — run the ignored `regenerate` test to create it: {e}",
            path.display()
        )
    });
    let fixture: GoldenTotalsFixture = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("malformed golden fixture {}: {e}", path.display()));
    assert_eq!(
        fixture.config,
        GoldenServeConfig::pinned(),
        "fixture was generated under a different pinned campaign — regenerate"
    );
    let (_, totals) = run_campaign(&fixture.config);
    assert_eq!(fixture.totals, totals, "server counter totals drifted");
}

/// Same seed + same mix ⇒ byte-identical responses and identical counter
/// totals, independent of the fixtures: two fresh server instances must
/// agree exactly.
#[test]
fn server_loop_is_deterministic_for_a_pinned_mix() {
    let cfg = GoldenServeConfig::pinned();
    let (first, first_totals) = run_campaign(&cfg);
    let (second, second_totals) = run_campaign(&cfg);
    assert_eq!(
        first, second,
        "response bytes drifted between identical runs"
    );
    assert_eq!(
        first_totals, second_totals,
        "counter totals drifted between identical runs"
    );
    assert_mix_semantics(&first);
}

/// Rewrites both serve fixtures from current behavior. Ignored: run it
/// only after an intentional protocol or policy change, then review and
/// commit the diff.
#[test]
#[ignore = "regenerates the serve golden fixtures; run explicitly after intentional protocol changes"]
fn regenerate() {
    let cfg = GoldenServeConfig::pinned();
    let (exchanges, totals) = run_campaign(&cfg);
    assert_mix_semantics(&exchanges);
    std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
    let wire = GoldenWireFixture {
        config: cfg.clone(),
        exchanges,
    };
    let wire_path = golden_dir().join(WIRE_FIXTURE);
    let json = serde_json::to_string_pretty(&wire).expect("serialize");
    std::fs::write(&wire_path, json + "\n").expect("write fixture");
    eprintln!("wrote {}", wire_path.display());
    let totals = GoldenTotalsFixture {
        config: cfg,
        totals,
    };
    let totals_path = golden_dir().join(TOTALS_FIXTURE);
    let json = serde_json::to_string_pretty(&totals).expect("serialize");
    std::fs::write(&totals_path, json + "\n").expect("write fixture");
    eprintln!("wrote {}", totals_path.display());
}
