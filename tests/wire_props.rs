//! Property tests for the serve tier's wire protocol (see
//! `docs/SERVING.md`):
//!
//! * **hostility tolerance** — random byte streams, arbitrary read
//!   fragmentation, truncations and length-field corruption never panic
//!   the decoder; every rejection is a typed
//!   [`fast_bcnn::serve::WireError`];
//! * **byte losslessness** — a valid frame stream reassembles to the
//!   exact payload bytes regardless of how the transport splits or
//!   coalesces the reads, and the request/response messages round-trip
//!   bit-for-bit through their JSON envelopes.

mod common;

use common::is_wire_reason;
use fast_bcnn::serve::{
    classify_write_failure, encode_frame, seal_frame, FrameDecoder, ServeRequest, ServeResponse,
    WireError, LEN_PREFIX_BYTES, REQUEST_KIND,
};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::time::Duration;

const MAX_FRAME: usize = 4096;

/// Drains a decoder after `bytes`, collecting every decoded frame and
/// the first error (if any). Must never panic, whatever the input.
fn drain(decoder: &mut FrameDecoder) -> (Vec<Vec<u8>>, Option<WireError>) {
    let mut frames = Vec::new();
    loop {
        match decoder.next_frame() {
            Ok(Some(frame)) => frames.push(frame),
            Ok(None) => return (frames, None),
            Err(e) => return (frames, Some(e)),
        }
    }
}

/// Splits `bytes` into chunks at pseudo-random boundaries drawn from
/// `cuts`, covering the 1-byte-at-a-time and everything-at-once shapes.
fn chunked<'a>(bytes: &'a [u8], cuts: &[u8]) -> Vec<&'a [u8]> {
    if bytes.is_empty() {
        return vec![];
    }
    let mut chunks = Vec::new();
    let mut start = 0;
    let mut i = 0;
    while start < bytes.len() {
        let step = 1 + cuts.get(i % cuts.len().max(1)).copied().unwrap_or(0) as usize;
        let end = (start + step).min(bytes.len());
        chunks.push(&bytes[start..end]);
        start = end;
        i += 1;
    }
    chunks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_byte_streams_never_panic_and_errors_are_typed(
        noise in pvec(any::<u8>(), 0..256),
    ) {
        let mut decoder = FrameDecoder::new(MAX_FRAME);
        decoder.push(&noise);
        let (_, err) = drain(&mut decoder);
        if let Some(e) = err {
            prop_assert!(is_wire_reason(e.reason()), "untyped reason {}", e.reason());
        }
        // A clean drain leaves either nothing or a typed partial frame.
        if let Err(e) = decoder.finish() {
            prop_assert!(is_wire_reason(e.reason()), "untyped reason {}", e.reason());
        }
    }

    #[test]
    fn split_and_coalesced_valid_streams_are_byte_lossless(
        payloads in pvec(pvec(any::<u8>(), 0..64), 1..8),
        cuts in pvec(any::<u8>(), 1..16),
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p, MAX_FRAME).unwrap());
        }
        let mut decoder = FrameDecoder::new(MAX_FRAME);
        let mut decoded = Vec::new();
        for chunk in chunked(&stream, &cuts) {
            decoder.push(chunk);
            let (mut frames, err) = drain(&mut decoder);
            prop_assert!(err.is_none(), "valid stream errored: {err:?}");
            decoded.append(&mut frames);
        }
        prop_assert_eq!(&decoded, &payloads, "reassembly lost or reordered bytes");
        prop_assert!(decoder.is_empty());
        prop_assert!(decoder.finish().is_ok());
    }

    #[test]
    fn truncations_are_typed_never_silent(
        payload in pvec(any::<u8>(), 1..64),
        keep_fraction in 0u8..255,
    ) {
        let frame = encode_frame(&payload, MAX_FRAME).unwrap();
        // Any strict prefix: cutting inside the length prefix or inside
        // the body must surface as a typed truncation on finish().
        let keep = 1 + (keep_fraction as usize % (frame.len() - 1));
        let mut decoder = FrameDecoder::new(MAX_FRAME);
        decoder.push(&frame[..keep]);
        let (frames, err) = drain(&mut decoder);
        prop_assert!(frames.is_empty(), "a truncated frame decoded");
        prop_assert!(err.is_none(), "mid-stream truncation is not an error yet");
        match decoder.finish() {
            Err(WireError::Truncated { have, need }) => {
                prop_assert!(have < need, "truncation arithmetic inverted: {have} >= {need}");
            }
            other => prop_assert!(false, "expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn length_field_corruption_is_typed_never_panics(
        payload in pvec(any::<u8>(), 1..64),
        corrupt in any::<u32>(),
    ) {
        let mut frame = encode_frame(&payload, MAX_FRAME).unwrap();
        frame[..LEN_PREFIX_BYTES].copy_from_slice(&corrupt.to_be_bytes());
        let mut decoder = FrameDecoder::new(MAX_FRAME);
        decoder.push(&frame);
        let claimed = corrupt as usize;
        if claimed > MAX_FRAME {
            // An oversized claim must be rejected before buffering.
            match decoder.next_frame() {
                Err(WireError::Oversized { len, max }) => {
                    prop_assert_eq!(len, claimed);
                    prop_assert_eq!(max, MAX_FRAME);
                }
                other => prop_assert!(false, "expected Oversized, got {other:?}"),
            }
        } else {
            // A plausible-but-wrong claim re-frames the stream. The
            // decoder must keep making typed progress on whatever the
            // bogus prefix left behind — short frames, a truncation, or
            // an oversized re-framed prefix — never panic or spin.
            match decoder.next_frame() {
                Ok(Some(short)) => {
                    prop_assert_eq!(short.len(), claimed, "frame length ignored the prefix");
                    let (_, err) = drain(&mut decoder);
                    if let Some(e) = err {
                        prop_assert!(is_wire_reason(e.reason()), "untyped reason {}", e.reason());
                    } else if let Err(e) = decoder.finish() {
                        prop_assert!(is_wire_reason(e.reason()), "untyped reason {}", e.reason());
                    }
                }
                Ok(None) => prop_assert!(matches!(
                    decoder.finish(),
                    Err(WireError::Truncated { .. })
                )),
                Err(e) => prop_assert!(false, "in-bound length claim errored: {e:?}"),
            }
        }
    }

    #[test]
    fn request_messages_roundtrip_bit_for_bit(
        id in any::<u64>(),
        seed in any::<u64>(),
        deadline in any::<u64>(),
        data in pvec(any::<u32>(), 4..32),
    ) {
        // 1 x 1 x len shape keeps the product exact for any data length.
        let req = ServeRequest {
            id,
            class: "interactive".to_string(),
            deadline_ms: Some(deadline),
            seed: Some(seed),
            channels: 1,
            height: 1,
            width: data.len(),
            data_bits: data,
        };
        let frame = req.encode(1 << 20).unwrap();
        let mut decoder = FrameDecoder::new(1 << 20);
        decoder.push(&frame);
        let wire = decoder.next_frame().unwrap().unwrap();
        let back = ServeRequest::decode(&wire).unwrap();
        prop_assert_eq!(back, req, "request drifted across the wire");
    }

    #[test]
    fn response_messages_roundtrip_bit_for_bit(
        id in any::<u64>(),
        mean in pvec(any::<u32>(), 1..16),
        entropy in any::<u32>(),
        ok in any::<bool>(),
    ) {
        let resp = ServeResponse {
            id,
            class: "batch".to_string(),
            ok,
            reason: if ok { String::new() } else { "expired".to_string() },
            shed: false,
            expired: !ok,
            degraded: "healthy".to_string(),
            used_samples: 4,
            requested_samples: 8,
            predicted: 3,
            mean_bits: mean,
            entropy_bits: entropy,
            version: 1,
            shard: 0,
            attempts: 1,
        };
        let frame = resp.encode(1 << 20).unwrap();
        let mut decoder = FrameDecoder::new(1 << 20);
        decoder.push(&frame);
        let wire = decoder.next_frame().unwrap().unwrap();
        let back = ServeResponse::decode(&wire).unwrap();
        prop_assert_eq!(back, resp, "response drifted across the wire");
    }

    #[test]
    fn write_failures_classify_typed_and_deadline_aware(
        kind_pick in 0usize..8,
        deadline_ms in 1u64..60_000,
    ) {
        use std::io::ErrorKind;
        let kinds = [
            ErrorKind::WouldBlock,
            ErrorKind::TimedOut,
            ErrorKind::BrokenPipe,
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionAborted,
            ErrorKind::UnexpectedEof,
            ErrorKind::NotConnected,
            ErrorKind::Other,
        ];
        let kind = kinds[kind_pick];
        let err = std::io::Error::new(kind, "stalled");
        let wire = classify_write_failure(&err, Duration::from_millis(deadline_ms));
        prop_assert!(is_wire_reason(wire.reason()), "untyped reason {}", wire.reason());
        match kind {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                prop_assert_eq!(wire.reason(), "wire_write_deadline");
                prop_assert_eq!(wire, WireError::WriteDeadline { waited_ms: deadline_ms });
            }
            _ => prop_assert_eq!(wire.reason(), "wire_io"),
        }
    }

    #[test]
    fn foreign_and_stale_envelopes_are_typed(
        variant in any::<u8>(),
    ) {
        let frame = match variant % 3 {
            0 => seal_frame("network", "{}", MAX_FRAME).unwrap(),
            1 => encode_frame(
                format!("{{\"artifact\":\"{REQUEST_KIND}\",\"version\":99,\"payload\":{{}}}}")
                    .as_bytes(),
                MAX_FRAME,
            )
            .unwrap(),
            _ => encode_frame(b"{\"not\":\"an envelope\"}", MAX_FRAME).unwrap(),
        };
        let mut decoder = FrameDecoder::new(MAX_FRAME);
        decoder.push(&frame);
        let wire = decoder.next_frame().unwrap().unwrap();
        let err = ServeRequest::decode(&wire).unwrap_err();
        prop_assert!(is_wire_reason(err.reason()), "untyped reason {}", err.reason());
        let expected = match variant % 3 {
            0 => "wire_foreign_kind",
            1 => "wire_stale_version",
            _ => "wire_envelope",
        };
        prop_assert_eq!(err.reason(), expected);
    }
}

/// A peer that never reads must stall the writer into the OS write
/// deadline, and the resulting error must classify as the typed
/// `wire_write_deadline` — the satellite contract behind
/// [`fast_bcnn::serve::ServeConfig::write_timeout`].
#[test]
fn unread_peer_stalls_into_a_typed_write_deadline() {
    use std::io::Write;

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    // The client connects and then never reads a byte.
    let client = std::net::TcpStream::connect(addr).expect("connect");
    let (mut server_side, _) = listener.accept().expect("accept");
    let deadline = Duration::from_millis(50);
    server_side
        .set_write_timeout(Some(deadline))
        .expect("write timeout");
    // Large enough to overflow any socket buffer pair, so the write
    // must eventually block on the unread peer and hit the deadline.
    let slab = vec![0u8; 8 << 20];
    let mut stalls = 0u32;
    let err = loop {
        match server_side.write_all(&slab) {
            Ok(()) => {
                stalls += 1;
                assert!(
                    stalls < 64,
                    "an unread peer absorbed 512 MiB — no deadline fired"
                );
            }
            Err(e) => break e,
        }
    };
    let wire = classify_write_failure(&err, deadline);
    assert_eq!(
        wire,
        WireError::WriteDeadline { waited_ms: 50 },
        "stalled write classified as {wire:?}"
    );
    assert_eq!(wire.reason(), "wire_write_deadline");
    drop(client);
}
