//! Integration test: the full Bayesian training → calibration →
//! skipping-inference pipeline on a trained model.

use fast_bcnn::{Engine, EngineConfig, McDropout, PredictiveInference};
use fbcnn_nn::data::SynthDigits;
use fbcnn_nn::models::{ModelKind, ModelScale};
use fbcnn_nn::train::{self, TrainConfig};
use fbcnn_tensor::stats;

#[test]
fn trained_bcnn_keeps_its_accuracy_under_skipping() {
    // Train with the Bayesian procedure (dropout on conv outputs).
    let mut net = ModelKind::LeNet5.build(21);
    fbcnn_nn::init::he_uniform(&mut net, 21);
    let train_set = SynthDigits::new(21).batch(0, 250);
    let report = train::train(
        &mut net,
        &train_set,
        &TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        },
    );
    assert!(
        report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap(),
        "training diverged: {:?}",
        report.epoch_losses
    );

    let samples = 8;
    let engine = Engine::with_network(
        net,
        EngineConfig {
            model: ModelKind::LeNet5,
            scale: ModelScale::FULL,
            drop_rate: 0.3,
            samples,
            confidence: 0.68,
            calibration_samples: 4,
            seed: 33,
            threads: 1,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        },
    );

    let test = SynthDigits::new(4242).batch(0, 30);
    let mut exact_ok = 0;
    let mut skip_ok = 0;
    let mut agree = 0;
    for s in &test {
        let exact = McDropout::new(samples, 33).run(engine.bayesian_network(), &s.image);
        let pe = PredictiveInference::new(
            engine.bayesian_network(),
            &s.image,
            engine.thresholds().clone(),
        );
        let probs = (0..samples)
            .map(|t| {
                let masks = engine.bayesian_network().generate_masks(33, t);
                stats::softmax(pe.run_sample(&masks).logits())
            })
            .collect();
        let fast = McDropout::summarize(probs);
        exact_ok += usize::from(exact.class == s.label);
        skip_ok += usize::from(fast.class == s.label);
        agree += usize::from(exact.class == fast.class);
    }
    assert!(
        exact_ok >= 15,
        "exact BCNN accuracy collapsed: {exact_ok}/30"
    );
    // Skipping may differ on a couple of borderline cases at most.
    assert!(
        (exact_ok as i64 - skip_ok as i64).abs() <= 4,
        "skipping shifted accuracy: exact {exact_ok} vs skip {skip_ok}"
    );
    assert!(agree >= 26, "class agreement too low: {agree}/30");
}

#[test]
fn tiny_vgg_optimizes_stably_through_thirteen_conv_layers() {
    // VGG16 is a pure sequential chain, so the trainer handles it; the
    // generalized SynthDigits renders onto its 3x16x16 canvas. Without
    // normalization layers a from-scratch deep VGG only learns the class
    // prior in a few epochs (cross-entropy -> ln 10 ~= 2.30 from ~4.6),
    // so the assertion is about stable optimization, not accuracy — the
    // accuracy experiments use LeNet-5, which trains fully.
    let mut net = ModelKind::Vgg16.build_scaled(2, ModelScale::TINY);
    fbcnn_nn::init::he_uniform(&mut net, 2);
    let gen = fbcnn_nn::data::SynthDigits::with_shape(2, net.input_shape());
    let data = gen.batch(0, 120);
    let report = train::train(
        &mut net,
        &data,
        &TrainConfig {
            epochs: 4,
            dropout: 0.1,
            ..TrainConfig::default()
        },
    );
    let first = *report.epoch_losses.first().unwrap();
    let last = *report.epoch_losses.last().unwrap();
    assert!(last < first, "tiny VGG diverged: {:?}", report.epoch_losses);
    assert!(
        last < 3.3 && last.is_finite(),
        "loss failed to approach the prior level: {:?}",
        report.epoch_losses
    );
}

#[test]
fn bayesian_uncertainty_separates_in_and_out_of_distribution() {
    let mut net = ModelKind::LeNet5.build(5);
    fbcnn_nn::init::he_uniform(&mut net, 5);
    let train_set = SynthDigits::new(5).batch(0, 250);
    train::train(
        &mut net,
        &train_set,
        &TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        },
    );
    let engine = Engine::with_network(
        net,
        EngineConfig {
            model: ModelKind::LeNet5,
            scale: ModelScale::FULL,
            drop_rate: 0.3,
            samples: 8,
            confidence: 0.68,
            calibration_samples: 4,
            seed: 5,
            threads: 1,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        },
    );
    let runner = McDropout::new(8, 5);
    let id_inputs = SynthDigits::new(777).batch(0, 10);
    let mean_id: f32 = id_inputs
        .iter()
        .map(|s| {
            runner
                .run(engine.bayesian_network(), &s.image)
                .predictive_entropy
        })
        .sum::<f32>()
        / 10.0;
    // Uniform noise is decidedly out of distribution.
    let mean_ood: f32 = (0..10)
        .map(|i| {
            let img = fast_bcnn::synth_input(engine.network().input_shape(), 9000 + i);
            runner
                .run(engine.bayesian_network(), &img)
                .predictive_entropy
        })
        .sum::<f32>()
        / 10.0;
    assert!(
        mean_ood > mean_id,
        "OOD entropy {mean_ood} not above ID entropy {mean_id}"
    );
}
