use crate::{BitMask, Shape};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// An owned, dense, row-major `f32` tensor over a [`Shape`].
///
/// This is the workhorse container of the workspace: feature maps,
/// convolution kernels (one `Tensor` per output channel) and
/// fully-connected activations are all `Tensor`s.
///
/// # Examples
///
/// ```
/// use fbcnn_tensor::{Shape, Tensor};
///
/// let mut t = Tensor::zeros(Shape::new(1, 2, 2));
/// t[(0, 0, 1)] = 3.0;
/// assert_eq!(t.iter().sum::<f32>(), 3.0);
/// assert_eq!(t.count_zero(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of the given shape filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        Self {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// A tensor of the given shape filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        Self {
            shape,
            data: vec![value; shape.len()],
        }
    }

    /// Builds a tensor from an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Self { shape, data }
    }

    /// Builds a tensor by evaluating `f` at every coordinate.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize, usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for (c, r, col) in shape.coords() {
            data.push(f(c, r, col));
        }
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements. Always `false` for validated
    /// shapes, provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying buffer in linear layout.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a linear index.
    #[inline]
    pub fn at(&self, i: usize) -> f32 {
        self.data[i]
    }

    /// Sets the element at a linear index.
    #[inline]
    pub fn set(&mut self, i: usize, value: f32) {
        self.data[i] = value;
    }

    /// One channel plane as a slice (`height × width` values).
    pub fn channel(&self, c: usize) -> &[f32] {
        let plane = self.shape.plane();
        &self.data[c * plane..(c + 1) * plane]
    }

    /// One channel plane as a mutable slice.
    pub fn channel_mut(&mut self, c: usize) -> &mut [f32] {
        let plane = self.shape.plane();
        &mut self.data[c * plane..(c + 1) * plane]
    }

    /// Iterates over elements in linear order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Mutable iteration over elements in linear order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new tensor with `f` applied elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place elementwise ReLU (`max(0, x)`).
    pub fn relu_inplace(&mut self) {
        self.map_inplace(|v| if v > 0.0 { v } else { 0.0 });
    }

    /// Adds `other` elementwise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales every element by `s`.
    pub fn scale_inplace(&mut self, s: f32) {
        self.map_inplace(|v| v * s);
    }

    /// Zeroes out every element whose mask bit is set (the paper's
    /// `O ⊙ (1 − M)` dropout application, where a set bit means *dropped*).
    ///
    /// # Panics
    ///
    /// Panics if the mask shape differs from the tensor shape.
    pub fn apply_drop_mask(&mut self, mask: &BitMask) {
        assert_eq!(self.shape, mask.shape(), "mask shape mismatch");
        for i in mask.iter_set() {
            self.data[i] = 0.0;
        }
    }

    /// Number of exactly-zero elements.
    pub fn count_zero(&self) -> usize {
        self.data.iter().filter(|&&v| v == 0.0).count()
    }

    /// A [`BitMask`] with a bit set for every exactly-zero element — the
    /// paper's *zero-neuron index* recorded during the pre-inference.
    pub fn zero_mask(&self) -> BitMask {
        let mut m = BitMask::zeros(self.shape);
        for (i, &v) in self.data.iter().enumerate() {
            if v == 0.0 {
                m.set(i, true);
            }
        }
        m
    }

    /// Maximum absolute elementwise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Index<(usize, usize, usize)> for Tensor {
    type Output = f32;

    #[inline]
    fn index(&self, (c, r, col): (usize, usize, usize)) -> &f32 {
        &self.data[self.shape.index(c, r, col)]
    }
}

impl IndexMut<(usize, usize, usize)> for Tensor {
    #[inline]
    fn index_mut(&mut self, (c, r, col): (usize, usize, usize)) -> &mut f32 {
        &mut self.data[self.shape.index(c, r, col)]
    }
}

impl<'a> IntoIterator for &'a Tensor {
    type Item = &'a f32;
    type IntoIter = std::slice::Iter<'a, f32>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({})", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        Tensor::from_fn(Shape::new(2, 2, 2), |c, r, col| {
            (c * 4 + r * 2 + col) as f32 - 3.0
        })
    }

    #[test]
    fn from_fn_layout_matches_indexing() {
        let t = sample();
        assert_eq!(t[(0, 0, 0)], -3.0);
        assert_eq!(t[(1, 1, 1)], 4.0);
        assert_eq!(t.at(7), 4.0);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut t = sample();
        t.relu_inplace();
        assert!(t.iter().all(|&v| v >= 0.0));
        assert_eq!(t.count_zero(), 4); // -3, -2, -1 and the original 0
    }

    #[test]
    fn zero_mask_matches_count() {
        let mut t = sample();
        t.relu_inplace();
        let m = t.zero_mask();
        assert_eq!(m.count_ones(), t.count_zero());
        for i in m.iter_set() {
            assert_eq!(t.at(i), 0.0);
        }
    }

    #[test]
    fn apply_drop_mask_zeroes_selected() {
        let mut t = Tensor::full(Shape::new(1, 2, 2), 5.0);
        let mut m = BitMask::zeros(t.shape());
        m.set(0, true);
        m.set(3, true);
        t.apply_drop_mask(&m);
        assert_eq!(t.as_slice(), &[0.0, 5.0, 5.0, 0.0]);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Tensor::full(Shape::new(1, 1, 3), 1.0);
        let b = Tensor::from_vec(Shape::new(1, 1, 3), vec![1.0, 2.0, 3.0]);
        a.add_assign(&b);
        a.scale_inplace(0.5);
        assert_eq!(a.as_slice(), &[1.0, 1.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_checked() {
        let _ = Tensor::from_vec(Shape::new(1, 2, 2), vec![0.0; 3]);
    }

    #[test]
    fn channel_slices() {
        let t = sample();
        assert_eq!(t.channel(0), &[-3.0, -2.0, -1.0, 0.0]);
        assert_eq!(t.channel(1), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn max_abs_diff_is_symmetric() {
        let a = sample();
        let b = a.map(|v| v + 0.25);
        assert_eq!(a.max_abs_diff(&b), 0.25);
        assert_eq!(b.max_abs_diff(&a), 0.25);
    }
}
