#![warn(missing_docs)]

//! Dense tensors, bit masks and shape arithmetic for the Fast-BCNN
//! reproduction.
//!
//! This crate is the lowest layer of the workspace: everything that moves
//! feature maps, kernels or dropout masks around is built on the types
//! defined here.
//!
//! * [`Shape`] — a `(channels, height, width)` feature-map shape with
//!   checked index arithmetic.
//! * [`Tensor`] — an owned, dense, row-major `f32` tensor over a [`Shape`].
//! * [`BitMask`] — a packed bit set over a [`Shape`], used for dropout
//!   masks, zero-neuron indexes and weight-polarity indicators.
//! * [`stats`] — small numeric helpers (argmax, mean, variance, softmax).
//!
//! # Examples
//!
//! ```
//! use fbcnn_tensor::{Shape, Tensor};
//!
//! let shape = Shape::new(2, 3, 3);
//! let mut t = Tensor::zeros(shape);
//! t[(1, 2, 0)] = 4.5;
//! assert_eq!(t[(1, 2, 0)], 4.5);
//! assert_eq!(t.shape().len(), 18);
//! ```

mod bitmask;
mod shape;
pub mod stats;
mod tensor;

pub use bitmask::BitMask;
pub use shape::Shape;
pub use tensor::Tensor;
