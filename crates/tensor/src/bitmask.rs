use crate::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A packed bit set addressed through a [`Shape`].
///
/// Three of the paper's data structures are 1-bit maps over feature-map
/// coordinates, and all three are represented by `BitMask`:
///
/// * **dropout masks** `M^l` — bit 1 means *the neuron is dropped*;
/// * **zero-neuron indexes** recorded during the pre-inference — bit 1
///   means *the neuron was zero without dropout*;
/// * **weight-polarity indicators** — bit 1 means *the weight is negative
///   or zero* (an "nw" position in the paper's terminology).
///
/// # Examples
///
/// ```
/// use fbcnn_tensor::{BitMask, Shape};
///
/// let mut m = BitMask::zeros(Shape::new(1, 2, 2));
/// m.set_at(0, 1, 1, true);
/// assert!(m.get_at(0, 1, 1));
/// assert_eq!(m.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitMask {
    shape: Shape,
    words: Vec<u64>,
}

const WORD_BITS: usize = 64;

impl BitMask {
    /// An all-zero mask over `shape`.
    pub fn zeros(shape: Shape) -> Self {
        Self {
            shape,
            words: vec![0; shape.len().div_ceil(WORD_BITS)],
        }
    }

    /// An all-one mask over `shape`.
    pub fn ones(shape: Shape) -> Self {
        let len = shape.len();
        let mut words = vec![!0u64; len.div_ceil(WORD_BITS)];
        // Padding bits past `len` must stay clear (count_ones and iter_set
        // rely on it), so mask the tail word.
        let tail = len % WORD_BITS;
        if tail != 0 {
            *words.last_mut().unwrap() = (1u64 << tail) - 1;
        }
        Self { shape, words }
    }

    /// Builds a mask by evaluating a predicate at every linear index.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut m = Self::zeros(shape);
        for i in 0..shape.len() {
            if f(i) {
                m.set(i, true);
            }
        }
        m
    }

    /// The mask's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// Whether the mask addresses zero bits. Always `false` for validated
    /// shapes, provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bit at a linear index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len(), "bit index {i} out of bounds");
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets the bit at a linear index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len(), "bit index {i} out of bounds");
        let w = &mut self.words[i / WORD_BITS];
        let bit = 1u64 << (i % WORD_BITS);
        if value {
            *w |= bit;
        } else {
            *w &= !bit;
        }
    }

    /// Bit at a `(c, r, col)` coordinate.
    #[inline]
    pub fn get_at(&self, c: usize, r: usize, col: usize) -> bool {
        self.get(self.shape.index(c, r, col))
    }

    /// Sets the bit at a `(c, r, col)` coordinate.
    #[inline]
    pub fn set_at(&mut self, c: usize, r: usize, col: usize, value: bool) {
        self.set(self.shape.index(c, r, col), value);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits in `[0, 1]`.
    pub fn density(&self) -> f64 {
        self.count_ones() as f64 / self.len() as f64
    }

    /// Iterates over the linear indexes of set bits, in ascending order.
    pub fn iter_set(&self) -> IterSet<'_> {
        IterSet {
            mask: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Bitwise AND with `other` (set bits present in both).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn and(&self, other: &BitMask) -> BitMask {
        assert_eq!(self.shape, other.shape, "mask shape mismatch in and");
        BitMask {
            shape: self.shape,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Bitwise OR with `other` (set bits present in either).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn or(&self, other: &BitMask) -> BitMask {
        assert_eq!(self.shape, other.shape, "mask shape mismatch in or");
        BitMask {
            shape: self.shape,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Set bits of `self` that are *not* set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn and_not(&self, other: &BitMask) -> BitMask {
        assert_eq!(self.shape, other.shape, "mask shape mismatch in and_not");
        BitMask {
            shape: self.shape,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
        }
    }

    /// Count of bits set in both masks, without allocating.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn count_and(&self, other: &BitMask) -> usize {
        assert_eq!(self.shape, other.shape, "mask shape mismatch in count_and");
        Self::and_popcount(&self.words, &other.words)
    }

    /// The raw packed words, little-endian within each `u64` (bit `i` of
    /// the mask is bit `i % 64` of word `i / 64`). Padding bits past
    /// [`BitMask::len`] are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reads `len ≤ 64` consecutive bits starting at linear index `start`
    /// into the low bits of a `u64` (an unaligned packed-row extraction —
    /// the shifted mask-row load of the word-parallel counting kernel).
    ///
    /// # Panics
    ///
    /// Panics if `len > 64` or `start + len` exceeds the mask length.
    #[inline]
    pub fn load_bits(&self, start: usize, len: usize) -> u64 {
        assert!(len <= WORD_BITS, "cannot load {len} bits into a u64");
        assert!(
            start + len <= self.len(),
            "bit range {start}..{} out of bounds",
            start + len
        );
        if len == 0 {
            return 0;
        }
        let w = start / WORD_BITS;
        let b = start % WORD_BITS;
        let lo = self.words[w] >> b;
        let hi = if b == 0 || w + 1 == self.words.len() {
            0
        } else {
            self.words[w + 1] << (WORD_BITS - b)
        };
        let v = lo | hi;
        if len == WORD_BITS {
            v
        } else {
            v & ((1u64 << len) - 1)
        }
    }

    /// Popcount of the pairwise AND of two packed-word slices (zipped to
    /// the shorter length) — the AND-gate + popcount reduction of the
    /// paper's prediction unit, one word lane at a time.
    #[inline]
    pub fn and_popcount(a: &[u64], b: &[u64]) -> usize {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }
}

impl fmt::Debug for BitMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BitMask({}, {}/{} set)",
            self.shape,
            self.count_ones(),
            self.len()
        )
    }
}

/// Iterator over set-bit indexes, created by [`BitMask::iter_set`].
#[derive(Debug)]
pub struct IterSet<'a> {
    mask: &'a BitMask,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterSet<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * WORD_BITS + bit;
                // The top word may have padding bits past len(); they are
                // never set, so no filtering is needed here.
                return Some(idx);
            }
            self.word_idx += 1;
            if self.word_idx >= self.mask.words.len() {
                return None;
            }
            self.current = self.mask.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMask::zeros(Shape::new(2, 3, 3));
        m.set(0, true);
        m.set(17, true);
        m.set(17, false);
        assert!(m.get(0));
        assert!(!m.get(17));
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    fn iter_set_ascending() {
        let mut m = BitMask::zeros(Shape::flat(200));
        for &i in &[3, 64, 65, 130, 199] {
            m.set(i, true);
        }
        let collected: Vec<_> = m.iter_set().collect();
        assert_eq!(collected, vec![3, 64, 65, 130, 199]);
    }

    #[test]
    fn boolean_algebra() {
        let s = Shape::flat(130);
        let a = BitMask::from_fn(s, |i| i.is_multiple_of(2));
        let b = BitMask::from_fn(s, |i| i % 3 == 0);
        let and = a.and(&b);
        let or = a.or(&b);
        let diff = a.and_not(&b);
        for i in 0..s.len() {
            assert_eq!(and.get(i), a.get(i) && b.get(i));
            assert_eq!(or.get(i), a.get(i) || b.get(i));
            assert_eq!(diff.get(i), a.get(i) && !b.get(i));
        }
        assert_eq!(and.count_ones(), a.count_and(&b));
        // inclusion-exclusion
        assert_eq!(
            or.count_ones() + and.count_ones(),
            a.count_ones() + b.count_ones()
        );
    }

    #[test]
    fn density_of_ones() {
        let m = BitMask::ones(Shape::flat(77));
        assert_eq!(m.count_ones(), 77);
        assert!((m.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ones_keeps_padding_bits_clear() {
        for n in [1, 63, 64, 65, 128, 129] {
            let m = BitMask::ones(Shape::flat(n));
            assert_eq!(m.count_ones(), n, "wrong popcount at len {n}");
            assert_eq!(m.iter_set().count(), n, "padding bit set at len {n}");
            assert_eq!(m, BitMask::from_fn(Shape::flat(n), |_| true));
        }
    }

    #[test]
    fn load_bits_matches_per_bit_reads() {
        let m = BitMask::from_fn(Shape::flat(200), |i| {
            (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .count_ones()
                .is_multiple_of(2)
        });
        for start in [0, 1, 37, 63, 64, 65, 127, 130, 136] {
            for len in [0, 1, 5, 63, 64] {
                if start + len > m.len() {
                    continue;
                }
                let got = m.load_bits(start, len);
                for bit in 0..len {
                    assert_eq!(
                        (got >> bit) & 1 == 1,
                        m.get(start + bit),
                        "bit {bit} of load_bits({start}, {len})"
                    );
                }
                if len < WORD_BITS {
                    assert_eq!(
                        got >> len,
                        0,
                        "stray high bits in load_bits({start}, {len})"
                    );
                }
            }
        }
    }

    #[test]
    fn load_bits_at_mask_end() {
        let m = BitMask::ones(Shape::flat(70));
        assert_eq!(m.load_bits(64, 6), 0b11_1111);
        assert_eq!(m.load_bits(6, 64), !0u64);
    }

    #[test]
    fn and_popcount_matches_count_and() {
        let s = Shape::flat(150);
        let a = BitMask::from_fn(s, |i| i.is_multiple_of(2));
        let b = BitMask::from_fn(s, |i| i % 3 == 0);
        assert_eq!(BitMask::and_popcount(a.words(), b.words()), a.count_and(&b));
        assert_eq!(BitMask::and_popcount(&[], b.words()), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let m = BitMask::zeros(Shape::flat(10));
        let _ = m.get(10);
    }

    #[test]
    fn coordinate_addressing_matches_linear() {
        let s = Shape::new(2, 2, 2);
        let mut m = BitMask::zeros(s);
        m.set_at(1, 0, 1, true);
        assert!(m.get(s.index(1, 0, 1)));
        assert!(m.get_at(1, 0, 1));
    }
}
