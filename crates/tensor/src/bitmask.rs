use crate::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A packed bit set addressed through a [`Shape`].
///
/// Three of the paper's data structures are 1-bit maps over feature-map
/// coordinates, and all three are represented by `BitMask`:
///
/// * **dropout masks** `M^l` — bit 1 means *the neuron is dropped*;
/// * **zero-neuron indexes** recorded during the pre-inference — bit 1
///   means *the neuron was zero without dropout*;
/// * **weight-polarity indicators** — bit 1 means *the weight is negative
///   or zero* (an "nw" position in the paper's terminology).
///
/// # Examples
///
/// ```
/// use fbcnn_tensor::{BitMask, Shape};
///
/// let mut m = BitMask::zeros(Shape::new(1, 2, 2));
/// m.set_at(0, 1, 1, true);
/// assert!(m.get_at(0, 1, 1));
/// assert_eq!(m.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitMask {
    shape: Shape,
    words: Vec<u64>,
}

const WORD_BITS: usize = 64;

impl BitMask {
    /// An all-zero mask over `shape`.
    pub fn zeros(shape: Shape) -> Self {
        Self {
            shape,
            words: vec![0; shape.len().div_ceil(WORD_BITS)],
        }
    }

    /// An all-one mask over `shape`.
    pub fn ones(shape: Shape) -> Self {
        let mut m = Self::zeros(shape);
        for i in 0..shape.len() {
            m.set(i, true);
        }
        m
    }

    /// Builds a mask by evaluating a predicate at every linear index.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut m = Self::zeros(shape);
        for i in 0..shape.len() {
            if f(i) {
                m.set(i, true);
            }
        }
        m
    }

    /// The mask's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// Whether the mask addresses zero bits. Always `false` for validated
    /// shapes, provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bit at a linear index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len(), "bit index {i} out of bounds");
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets the bit at a linear index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len(), "bit index {i} out of bounds");
        let w = &mut self.words[i / WORD_BITS];
        let bit = 1u64 << (i % WORD_BITS);
        if value {
            *w |= bit;
        } else {
            *w &= !bit;
        }
    }

    /// Bit at a `(c, r, col)` coordinate.
    #[inline]
    pub fn get_at(&self, c: usize, r: usize, col: usize) -> bool {
        self.get(self.shape.index(c, r, col))
    }

    /// Sets the bit at a `(c, r, col)` coordinate.
    #[inline]
    pub fn set_at(&mut self, c: usize, r: usize, col: usize, value: bool) {
        self.set(self.shape.index(c, r, col), value);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits in `[0, 1]`.
    pub fn density(&self) -> f64 {
        self.count_ones() as f64 / self.len() as f64
    }

    /// Iterates over the linear indexes of set bits, in ascending order.
    pub fn iter_set(&self) -> IterSet<'_> {
        IterSet {
            mask: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Bitwise AND with `other` (set bits present in both).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn and(&self, other: &BitMask) -> BitMask {
        assert_eq!(self.shape, other.shape, "mask shape mismatch in and");
        BitMask {
            shape: self.shape,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Bitwise OR with `other` (set bits present in either).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn or(&self, other: &BitMask) -> BitMask {
        assert_eq!(self.shape, other.shape, "mask shape mismatch in or");
        BitMask {
            shape: self.shape,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Set bits of `self` that are *not* set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn and_not(&self, other: &BitMask) -> BitMask {
        assert_eq!(self.shape, other.shape, "mask shape mismatch in and_not");
        BitMask {
            shape: self.shape,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
        }
    }

    /// Count of bits set in both masks, without allocating.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn count_and(&self, other: &BitMask) -> usize {
        assert_eq!(self.shape, other.shape, "mask shape mismatch in count_and");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }
}

impl fmt::Debug for BitMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BitMask({}, {}/{} set)",
            self.shape,
            self.count_ones(),
            self.len()
        )
    }
}

/// Iterator over set-bit indexes, created by [`BitMask::iter_set`].
#[derive(Debug)]
pub struct IterSet<'a> {
    mask: &'a BitMask,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterSet<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * WORD_BITS + bit;
                // The top word may have padding bits past len(); they are
                // never set, so no filtering is needed here.
                return Some(idx);
            }
            self.word_idx += 1;
            if self.word_idx >= self.mask.words.len() {
                return None;
            }
            self.current = self.mask.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMask::zeros(Shape::new(2, 3, 3));
        m.set(0, true);
        m.set(17, true);
        m.set(17, false);
        assert!(m.get(0));
        assert!(!m.get(17));
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    fn iter_set_ascending() {
        let mut m = BitMask::zeros(Shape::flat(200));
        for &i in &[3, 64, 65, 130, 199] {
            m.set(i, true);
        }
        let collected: Vec<_> = m.iter_set().collect();
        assert_eq!(collected, vec![3, 64, 65, 130, 199]);
    }

    #[test]
    fn boolean_algebra() {
        let s = Shape::flat(130);
        let a = BitMask::from_fn(s, |i| i % 2 == 0);
        let b = BitMask::from_fn(s, |i| i % 3 == 0);
        let and = a.and(&b);
        let or = a.or(&b);
        let diff = a.and_not(&b);
        for i in 0..s.len() {
            assert_eq!(and.get(i), a.get(i) && b.get(i));
            assert_eq!(or.get(i), a.get(i) || b.get(i));
            assert_eq!(diff.get(i), a.get(i) && !b.get(i));
        }
        assert_eq!(and.count_ones(), a.count_and(&b));
        // inclusion-exclusion
        assert_eq!(
            or.count_ones() + and.count_ones(),
            a.count_ones() + b.count_ones()
        );
    }

    #[test]
    fn density_of_ones() {
        let m = BitMask::ones(Shape::flat(77));
        assert_eq!(m.count_ones(), 77);
        assert!((m.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let m = BitMask::zeros(Shape::flat(10));
        let _ = m.get(10);
    }

    #[test]
    fn coordinate_addressing_matches_linear() {
        let s = Shape::new(2, 2, 2);
        let mut m = BitMask::zeros(s);
        m.set_at(1, 0, 1, true);
        assert!(m.get(s.index(1, 0, 1)));
        assert!(m.get_at(1, 0, 1));
    }
}
