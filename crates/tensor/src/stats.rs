//! Small numeric helpers shared across the workspace.
//!
//! These operate on plain slices so they can be used on [`crate::Tensor`]
//! buffers, logits vectors and metric accumulators alike.

/// Index of the maximum element (first occurrence on ties).
///
/// # Panics
///
/// Panics if `xs` is empty.
///
/// # Examples
///
/// ```
/// assert_eq!(fbcnn_tensor::stats::argmax(&[0.1, 0.7, 0.2]), 1);
/// ```
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of an empty slice");
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mean(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty(), "mean of an empty slice");
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population variance (`E[x²] − E[x]²`, clamped at zero).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn variance(xs: &[f32]) -> f32 {
    let m = mean(xs);
    let v = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32;
    v.max(0.0)
}

/// Numerically stable softmax.
///
/// # Panics
///
/// Panics if `xs` is empty.
///
/// # Examples
///
/// ```
/// let p = fbcnn_tensor::stats::softmax(&[1.0, 1.0]);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(xs: &[f32]) -> Vec<f32> {
    assert!(!xs.is_empty(), "softmax of an empty slice");
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = xs.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Shannon entropy of a probability vector, in nats.
///
/// Zero-probability entries contribute zero. The input is assumed to be a
/// (possibly unnormalized) non-negative vector; it is normalized first.
///
/// # Panics
///
/// Panics if `p` is empty or sums to zero.
pub fn entropy(p: &[f32]) -> f32 {
    assert!(!p.is_empty(), "entropy of an empty slice");
    let sum: f32 = p.iter().sum();
    assert!(sum > 0.0, "entropy of a zero vector");
    p.iter()
        .map(|&x| {
            let q = x / sum;
            if q > 0.0 {
                -q * q.ln()
            } else {
                0.0
            }
        })
        .sum()
}

/// `⌈a / b⌉` for positive integers — the paper's `[N/Tn]` tiling count.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn ceil_div(a: usize, b: usize) -> usize {
    assert!(b > 0, "ceil_div by zero");
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_ties_go_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
    }

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-6);
        assert_eq!(variance(&[2.0, 2.0]), 0.0);
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        assert!((a.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_handles_large_inputs() {
        let p = softmax(&[1000.0, 0.0]);
        assert!(p[0] > 0.999 && p[1] < 1e-3);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
        let uniform = entropy(&[0.25; 4]);
        assert!((uniform - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn ceil_div_matches_definition() {
        assert_eq!(ceil_div(10, 4), 3);
        assert_eq!(ceil_div(8, 4), 2);
        assert_eq!(ceil_div(0, 4), 0);
        assert_eq!(ceil_div(1, 1), 1);
    }
}
