use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a `(channels, height, width)` feature map.
///
/// All feature maps, dropout masks and zero-neuron indexes in the workspace
/// are addressed through a `Shape`. The linear layout is row-major within a
/// channel and channel-major overall: index `(c, r, col)` maps to
/// `c * h * w + r * w + col`.
///
/// # Examples
///
/// ```
/// use fbcnn_tensor::Shape;
///
/// let s = Shape::new(16, 8, 8);
/// assert_eq!(s.len(), 1024);
/// assert_eq!(s.index(1, 0, 3), 67);
/// assert_eq!(s.unravel(67), (1, 0, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    channels: usize,
    height: usize,
    width: usize,
}

impl Shape {
    /// Creates a new shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero: a degenerate feature map is always a
    /// bug in the caller.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "shape dimensions must be non-zero, got ({channels}, {height}, {width})"
        );
        Self {
            channels,
            height,
            width,
        }
    }

    /// A flat shape with `n` elements laid out as `(n, 1, 1)`.
    ///
    /// Used for fully-connected layer activations.
    pub fn flat(n: usize) -> Self {
        Self::new(n, 1, 1)
    }

    /// Number of channels (`C`).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Feature-map height (`H` / paper's `R` for outputs).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Feature-map width (`W` / paper's `C` for outputs).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Elements in one channel plane (`H × W`).
    pub fn plane(&self) -> usize {
        self.height * self.width
    }

    /// Total number of elements (`C × H × W`).
    pub fn len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Whether the shape holds zero elements. Always `false` (dimensions are
    /// validated non-zero) but provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(c, r, col)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any coordinate is out of bounds.
    #[inline]
    pub fn index(&self, c: usize, r: usize, col: usize) -> usize {
        debug_assert!(
            c < self.channels && r < self.height && col < self.width,
            "index ({c}, {r}, {col}) out of bounds for shape {self}"
        );
        (c * self.height + r) * self.width + col
    }

    /// Inverse of [`Shape::index`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= self.len()`.
    #[inline]
    pub fn unravel(&self, i: usize) -> (usize, usize, usize) {
        debug_assert!(i < self.len(), "linear index {i} out of bounds for {self}");
        let plane = self.plane();
        let c = i / plane;
        let rem = i % plane;
        (c, rem / self.width, rem % self.width)
    }

    /// Iterates over all `(c, r, col)` coordinates in linear order.
    pub fn coords(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        (0..self.len()).map(move |i| self.unravel(i))
    }

    /// The output shape of a `k×k` convolution with the given stride and
    /// symmetric zero padding, producing `out_channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (after padding) does not fit in the input or the
    /// stride is zero.
    pub fn conv_output(&self, out_channels: usize, k: usize, stride: usize, pad: usize) -> Shape {
        assert!(stride > 0, "stride must be non-zero");
        assert!(k > 0, "kernel size must be non-zero");
        let padded_h = self.height + 2 * pad;
        let padded_w = self.width + 2 * pad;
        assert!(
            padded_h >= k && padded_w >= k,
            "kernel {k} does not fit input {self} with pad {pad}"
        );
        Shape::new(
            out_channels,
            (padded_h - k) / stride + 1,
            (padded_w - k) / stride + 1,
        )
    }

    /// The output shape of a `k×k` pooling window with the given stride.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit or the stride is zero.
    pub fn pool_output(&self, k: usize, stride: usize) -> Shape {
        assert!(stride > 0, "stride must be non-zero");
        assert!(
            self.height >= k && self.width >= k,
            "pool window {k} does not fit input {self}"
        );
        Shape::new(
            self.channels,
            (self.height - k) / stride + 1,
            (self.width - k) / stride + 1,
        )
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let s = Shape::new(3, 4, 5);
        for i in 0..s.len() {
            let (c, r, col) = s.unravel(i);
            assert_eq!(s.index(c, r, col), i);
        }
    }

    #[test]
    fn conv_output_shapes() {
        let s = Shape::new(3, 32, 32);
        assert_eq!(s.conv_output(64, 3, 1, 1), Shape::new(64, 32, 32));
        assert_eq!(s.conv_output(64, 3, 1, 0), Shape::new(64, 30, 30));
        assert_eq!(s.conv_output(6, 5, 1, 2), Shape::new(6, 32, 32));
        assert_eq!(s.conv_output(8, 1, 1, 0), Shape::new(8, 32, 32));
        assert_eq!(s.conv_output(8, 3, 2, 1), Shape::new(8, 16, 16));
    }

    #[test]
    fn pool_output_shapes() {
        let s = Shape::new(16, 32, 32);
        assert_eq!(s.pool_output(2, 2), Shape::new(16, 16, 16));
        assert_eq!(s.pool_output(3, 1), Shape::new(16, 30, 30));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_rejected() {
        let _ = Shape::new(0, 2, 2);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_kernel_rejected() {
        let _ = Shape::new(1, 2, 2).conv_output(1, 5, 1, 0);
    }

    #[test]
    fn flat_shape() {
        let s = Shape::flat(10);
        assert_eq!(s.len(), 10);
        assert_eq!(s.channels(), 10);
        assert_eq!(s.plane(), 1);
    }

    #[test]
    fn coords_cover_everything_in_order() {
        let s = Shape::new(2, 2, 2);
        let coords: Vec<_> = s.coords().collect();
        assert_eq!(coords.len(), 8);
        assert_eq!(coords[0], (0, 0, 0));
        assert_eq!(coords[7], (1, 1, 1));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(3, 32, 31).to_string(), "3x32x31");
    }
}
