//! Property-based tests for shapes, tensors and bit masks.

use fbcnn_tensor::{BitMask, Shape, Tensor};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = Shape> {
    (1usize..6, 1usize..12, 1usize..12).prop_map(|(c, h, w)| Shape::new(c, h, w))
}

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    arb_shape().prop_flat_map(|s| {
        proptest::collection::vec(-10.0f32..10.0, s.len())
            .prop_map(move |data| Tensor::from_vec(s, data))
    })
}

proptest! {
    #[test]
    fn shape_index_unravel_roundtrip(s in arb_shape(), frac in 0.0f64..1.0) {
        let i = ((s.len() - 1) as f64 * frac) as usize;
        let (c, r, col) = s.unravel(i);
        prop_assert_eq!(s.index(c, r, col), i);
        prop_assert!(c < s.channels() && r < s.height() && col < s.width());
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(mut t in arb_tensor()) {
        t.relu_inplace();
        let once = t.clone();
        t.relu_inplace();
        prop_assert_eq!(&once, &t);
        prop_assert!(t.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn zero_mask_is_exact(mut t in arb_tensor()) {
        t.relu_inplace();
        let m = t.zero_mask();
        prop_assert_eq!(m.count_ones(), t.count_zero());
        let from_mask: Vec<usize> = m.iter_set().collect();
        let direct: Vec<usize> = t
            .iter()
            .enumerate()
            .filter(|(_, &v)| v == 0.0)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(from_mask, direct);
    }

    #[test]
    fn drop_mask_application_matches_elementwise_product(
        t in arb_tensor(),
        seed in any::<u64>(),
    ) {
        // A dropped bit corresponds to multiplying by zero; kept bits by one.
        let s = t.shape();
        let mask = BitMask::from_fn(s, |i| (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64)).count_ones().is_multiple_of(2));
        let mut dropped = t.clone();
        dropped.apply_drop_mask(&mask);
        for i in 0..s.len() {
            let expect = if mask.get(i) { 0.0 } else { t.at(i) };
            prop_assert_eq!(dropped.at(i), expect);
        }
    }

    #[test]
    fn mask_algebra_counts(s in arb_shape(), a_seed in any::<u64>(), b_seed in any::<u64>()) {
        let a = BitMask::from_fn(s, |i| (a_seed >> (i % 64)) & 1 == 1);
        let b = BitMask::from_fn(s, |i| (b_seed >> (i % 64)) & 1 == 1);
        // |A ∪ B| + |A ∩ B| = |A| + |B|
        prop_assert_eq!(
            a.or(&b).count_ones() + a.and(&b).count_ones(),
            a.count_ones() + b.count_ones()
        );
        // A \ B and A ∩ B partition A
        prop_assert_eq!(
            a.and_not(&b).count_ones() + a.and(&b).count_ones(),
            a.count_ones()
        );
        prop_assert_eq!(a.count_and(&b), a.and(&b).count_ones());
    }

    #[test]
    fn softmax_is_a_distribution(xs in proptest::collection::vec(-30.0f32..30.0, 1..20)) {
        let p = fbcnn_tensor::stats::softmax(&xs);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert_eq!(
            fbcnn_tensor::stats::argmax(&p),
            fbcnn_tensor::stats::argmax(&xs)
        );
    }
}
