//! Property-based tests for the CNN substrate.

use fbcnn_nn::{Conv2d, Dense, Pool2d, PoolKind, Workspace};
use fbcnn_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn arb_conv() -> impl Strategy<Value = (Conv2d, Tensor)> {
    (1usize..4, 1usize..5, 1usize..4, 0usize..2, 4usize..8).prop_flat_map(
        |(n, m, k_idx, pad, dim)| {
            let k = [1usize, 3, 5][k_idx % 3].min(dim);
            let pad = pad.min(k.saturating_sub(1));
            let wlen = m * n * k * k;
            (
                proptest::collection::vec(-1.0f32..1.0, wlen),
                proptest::collection::vec(-1.0f32..1.0, n * dim * dim),
                Just((n, m, k, pad, dim)),
            )
                .prop_map(|(weights, data, (n, m, k, pad, dim))| {
                    let mut conv = Conv2d::new(n, m, k, 1, pad, false);
                    conv.weights_mut().copy_from_slice(&weights);
                    let input = Tensor::from_vec(Shape::new(n, dim, dim), data);
                    (conv, input)
                })
        },
    )
}

/// Like [`arb_conv`], but additionally varies stride, fused ReLU and the
/// bias — the dimensions the fast conv paths must reproduce exactly.
fn arb_conv_fast() -> impl Strategy<Value = (Conv2d, Tensor)> {
    (
        (1usize..4, 1usize..6, 0usize..3),
        (0usize..3, 1usize..3, 4usize..9, any::<bool>()),
    )
        .prop_flat_map(|((n, m, k_idx), (pad, stride, dim, relu))| {
            let k = [1usize, 3, 5][k_idx % 3].min(dim);
            let pad = pad.min(k.saturating_sub(1));
            let wlen = m * n * k * k;
            (
                proptest::collection::vec(-1.0f32..1.0, wlen),
                proptest::collection::vec(-1.0f32..1.0, m),
                proptest::collection::vec(-1.0f32..1.0, n * dim * dim),
                Just((n, m, k, pad, stride, dim, relu)),
            )
                .prop_map(
                    |(weights, bias, data, (n, m, k, pad, stride, dim, relu))| {
                        let mut conv = Conv2d::new(n, m, k, stride, pad, relu);
                        conv.weights_mut().copy_from_slice(&weights);
                        conv.bias_mut().copy_from_slice(&bias);
                        let input = Tensor::from_vec(Shape::new(n, dim, dim), data);
                        (conv, input)
                    },
                )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forward_ws_matches_naive_forward((conv, input) in arb_conv_fast()) {
        // The im2col + blocked kernel must agree with the naive reference
        // loop exactly (same accumulation order, so same rounding).
        let mut ws = Workspace::new();
        prop_assert_eq!(conv.forward_ws(&input, &mut ws), conv.forward(&input));
    }

    #[test]
    fn forward_parallel_matches_naive_forward(
        (conv, input) in arb_conv_fast(),
        threads in 1usize..5,
    ) {
        // Workers own disjoint output channels, so thread count must not
        // change a single bit of the result.
        let mut ws = Workspace::new();
        prop_assert_eq!(
            conv.forward_parallel(&input, threads, &mut ws),
            conv.forward(&input)
        );
    }

    #[test]
    fn convolution_is_linear_in_the_input((conv, input) in arb_conv(), scale in -2.0f32..2.0) {
        // With zero bias and no ReLU, conv(s·x) == s·conv(x).
        let scaled = input.map(|v| v * scale);
        let a = conv.forward(&scaled);
        let mut b = conv.forward(&input);
        b.scale_inplace(scale);
        prop_assert!(a.max_abs_diff(&b) < 1e-3, "nonlinearity detected: {}", a.max_abs_diff(&b));
    }

    #[test]
    fn convolution_is_additive((conv, input) in arb_conv()) {
        // conv(x + x) == conv(x) + conv(x) with zero bias.
        let doubled = input.map(|v| v + v);
        let a = conv.forward(&doubled);
        let single = conv.forward(&input);
        let mut b = single.clone();
        b.add_assign(&single);
        prop_assert!(a.max_abs_diff(&b) < 1e-3);
    }

    #[test]
    fn forward_neuron_agrees_with_forward((conv, input) in arb_conv()) {
        let full = conv.forward(&input);
        let s = full.shape();
        // Spot-check a handful of coordinates.
        for &i in &[0usize, s.len() / 3, s.len() / 2, s.len() - 1] {
            let (m, r, c) = s.unravel(i);
            prop_assert_eq!(conv.forward_neuron(&input, m, r, c), full.at(i));
        }
    }

    #[test]
    fn relu_only_clamps((conv, input) in arb_conv()) {
        let mut relu_conv = conv.clone();
        // Rebuild with fused ReLU by comparing manually.
        let plain = conv.forward(&input);
        let _ = &mut relu_conv;
        let clamped = plain.map(|v| v.max(0.0));
        let mut by_hand = plain.clone();
        by_hand.relu_inplace();
        prop_assert_eq!(clamped, by_hand);
    }

    #[test]
    fn max_pool_dominates_avg_pool(
        data in proptest::collection::vec(-5.0f32..5.0, 64),
        k in 1usize..4,
    ) {
        let input = Tensor::from_vec(Shape::new(1, 8, 8), data);
        let maxp = Pool2d::new(PoolKind::Max, k, k).forward(&input);
        let avgp = Pool2d::new(PoolKind::Avg, k, k).forward(&input);
        for i in 0..maxp.len() {
            prop_assert!(maxp.at(i) >= avgp.at(i) - 1e-6);
        }
    }

    #[test]
    fn max_pool_output_is_a_window_member(
        data in proptest::collection::vec(-5.0f32..5.0, 2 * 36),
    ) {
        let input = Tensor::from_vec(Shape::new(2, 6, 6), data);
        let pool = Pool2d::new(PoolKind::Max, 2, 2);
        let (out, arg) = pool.forward_with_argmax(&input);
        for (i, &src) in arg.iter().enumerate() {
            prop_assert_eq!(out.at(i), input.at(src));
        }
    }

    #[test]
    fn dense_is_linear(
        weights in proptest::collection::vec(-1.0f32..1.0, 12),
        x in proptest::collection::vec(-1.0f32..1.0, 4),
        s in -2.0f32..2.0,
    ) {
        let mut fc = Dense::new(4, 3, false);
        fc.weights_mut().copy_from_slice(&weights);
        let input = Tensor::from_vec(Shape::flat(4), x.clone());
        let scaled = Tensor::from_vec(Shape::flat(4), x.iter().map(|v| v * s).collect());
        let a = fc.forward(&scaled);
        let mut b = fc.forward(&input);
        b.scale_inplace(s);
        prop_assert!(a.max_abs_diff(&b) < 1e-4);
    }
}
