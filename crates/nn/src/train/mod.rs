//! A small SGD trainer for sequential networks.
//!
//! The paper retrains its models during the offline threshold-optimization
//! stage; more importantly, the accuracy experiments need a model whose
//! predictions *mean* something. This module provides enough machinery to
//! train LeNet-5 on [`crate::data::SynthDigits`] from scratch:
//! cross-entropy loss, exact backward passes for convolution, max/avg
//! pooling and dense layers (with fused ReLU), and momentum SGD.
//!
//! Only *sequential* networks are supported (each layer feeds the next);
//! LeNet-5 qualifies. The big Inception/VGG models use the calibrated
//! initialization instead (see [`crate::init`]).

use crate::data::SynthSample;
use crate::{Layer, Network, Op, PoolKind};
use fbcnn_tensor::{stats, Tensor};

/// Hyper-parameters for [`train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Bernoulli dropout rate applied to every convolution output during
    /// training — the Bayesian training procedure (Gal & Ghahramani): a
    /// network destined for MC-dropout inference must be trained under
    /// the same stochastic regularization, with the same unscaled-mask
    /// semantics the inference path uses.
    pub dropout: f64,
    /// Seed for the training dropout masks.
    pub dropout_seed: u64,
    /// Per-epoch learning-rate multiplier (1.0 = constant LR). Dropout
    /// training is noisy; a gentle decay keeps late epochs from undoing
    /// early progress.
    pub lr_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 0.05,
            momentum: 0.9,
            epochs: 4,
            batch_size: 16,
            dropout: 0.3,
            dropout_seed: 0x7121,
            lr_decay: 0.7,
        }
    }
}

/// Summary returned by [`train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean cross-entropy loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training-set accuracy after the final epoch.
    pub final_train_accuracy: f32,
}

/// Cross-entropy loss of `logits` against an integer label.
///
/// # Panics
///
/// Panics if `label` is out of range or `logits` is empty.
pub fn cross_entropy(logits: &[f32], label: usize) -> f32 {
    assert!(label < logits.len(), "label {label} out of range");
    let p = stats::softmax(logits);
    -(p[label].max(1e-12)).ln()
}

/// Classification accuracy of `net` over `data`.
pub fn accuracy(net: &Network, data: &[SynthSample]) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = data
        .iter()
        .filter(|s| stats::argmax(&net.forward(&s.image)) == s.label)
        .count();
    correct as f32 / data.len() as f32
}

/// Checks that every layer node consumes the immediately preceding node.
fn assert_sequential(net: &Network) {
    for node in net.nodes().iter().skip(1) {
        assert!(
            matches!(node.op(), Op::Layer(_)),
            "trainer supports sequential layer chains only (node {} is {:?})",
            node.label(),
            node.op()
        );
        assert_eq!(
            node.inputs(),
            &[crate::NodeId(node.id().0 - 1)],
            "trainer supports sequential layer chains only"
        );
    }
}

/// Per-node gradient buffers.
struct Grads {
    w: Vec<Vec<f32>>,
    b: Vec<Vec<f32>>,
}

impl Grads {
    fn zeros_like(net: &Network) -> Self {
        let mut w = Vec::new();
        let mut b = Vec::new();
        for node in net.nodes() {
            match node.op() {
                Op::Layer(Layer::Conv(c)) => {
                    w.push(vec![0.0; c.weights().len()]);
                    b.push(vec![0.0; c.bias().len()]);
                }
                Op::Layer(Layer::Dense(d)) => {
                    w.push(vec![0.0; d.weights().len()]);
                    b.push(vec![0.0; d.bias().len()]);
                }
                _ => {
                    w.push(Vec::new());
                    b.push(Vec::new());
                }
            }
        }
        Self { w, b }
    }

    fn clear(&mut self) {
        for v in self.w.iter_mut().chain(self.b.iter_mut()) {
            v.iter_mut().for_each(|x| *x = 0.0);
        }
    }
}

/// One forward pass keeping everything backward needs.
struct ForwardCache {
    /// Output tensor per node (index = node id).
    outputs: Vec<Tensor>,
    /// Max-pool argmax per node (empty for others).
    argmax: Vec<Vec<usize>>,
}

/// Cheap deterministic Bernoulli bit for training dropout.
#[inline]
fn drop_bit(seed: u64, node: usize, i: usize, rate: f64) -> bool {
    let mut z = seed
        .wrapping_add((node as u64) << 32)
        .wrapping_add(i as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z & 0xFFFF) as f64 / 65536.0) < rate
}

fn forward_cached(net: &Network, input: &Tensor, dropout: Option<(f64, u64)>) -> ForwardCache {
    let mut outputs: Vec<Tensor> = Vec::with_capacity(net.len());
    let mut argmax: Vec<Vec<usize>> = Vec::with_capacity(net.len());
    for node in net.nodes() {
        let (mut out, arg) = match node.op() {
            Op::Input => (input.clone(), Vec::new()),
            Op::Layer(Layer::Pool(p)) if p.kind() == PoolKind::Max => {
                let (o, a) = p.forward_with_argmax(&outputs[node.id().0 - 1]);
                (o, a)
            }
            Op::Layer(l) => (l.forward(&outputs[node.id().0 - 1]), Vec::new()),
            Op::Concat => unreachable!("sequential nets have no concat"),
        };
        // Training dropout on conv outputs, with the same unscaled-mask
        // semantics as BCNN inference. Dropped (zeroed) neurons have zero
        // gradient automatically: the backward pass gates on `out == 0`
        // exactly as it does for ReLU.
        if let (Some((rate, seed)), Op::Layer(Layer::Conv(_))) = (dropout, node.op()) {
            let id = node.id().0;
            for i in 0..out.len() {
                if drop_bit(seed, id, i, rate) {
                    out.set(i, 0.0);
                }
            }
        }
        outputs.push(out);
        argmax.push(arg);
    }
    ForwardCache { outputs, argmax }
}

/// Backward pass for one sample; accumulates into `grads`, returns loss.
#[allow(clippy::needless_range_loop)]
fn backward(net: &Network, cache: &ForwardCache, label: usize, grads: &mut Grads) -> f32 {
    let logits = cache.outputs.last().expect("non-empty network").as_slice();
    let loss = cross_entropy(logits, label);
    let mut p = stats::softmax(logits);
    p[label] -= 1.0;
    // `dout` flows backwards; it always matches the *output* of the node
    // currently being processed.
    let mut dout: Vec<f32> = p;

    for node in net.nodes().iter().rev() {
        let id = node.id().0;
        if id == 0 {
            break;
        }
        let x = &cache.outputs[id - 1];
        let out = &cache.outputs[id];
        let layer = node.layer().expect("sequential nets contain only layers");
        let mut dx = vec![0.0f32; x.len()];
        match layer {
            Layer::Dense(d) => {
                let relu = d.has_relu();
                let (wg, bg) = (&mut grads.w[id], &mut grads.b[id]);
                let xin = x.as_slice();
                for o in 0..d.out_features() {
                    let mut g = dout[o];
                    if relu && out.at(o) == 0.0 {
                        g = 0.0;
                    }
                    if g == 0.0 {
                        continue;
                    }
                    bg[o] += g;
                    let row = o * d.in_features();
                    let wrow = &d.weights()[row..row + d.in_features()];
                    for i in 0..d.in_features() {
                        wg[row + i] += g * xin[i];
                        dx[i] += wrow[i] * g;
                    }
                }
            }
            Layer::Conv(conv) => {
                let relu = conv.has_relu();
                let in_shape = x.shape();
                let out_shape = out.shape();
                let (in_h, in_w) = (in_shape.height(), in_shape.width());
                let (out_h, out_w) = (out_shape.height(), out_shape.width());
                let k = conv.kernel_size();
                let stride = conv.stride();
                let pad = conv.pad() as isize;
                let (wg, bg) = (&mut grads.w[id], &mut grads.b[id]);
                for m in 0..conv.out_channels() {
                    let out_plane_base = m * out_shape.plane();
                    for r in 0..out_h {
                        for c in 0..out_w {
                            let oidx = out_plane_base + r * out_w + c;
                            let mut g = dout[oidx];
                            if relu && out.at(oidx) == 0.0 {
                                g = 0.0;
                            }
                            if g == 0.0 {
                                continue;
                            }
                            bg[m] += g;
                            for n in 0..conv.in_channels() {
                                let in_plane_base = n * in_shape.plane();
                                for i in 0..k {
                                    let ri = (r * stride + i) as isize - pad;
                                    if ri < 0 || ri as usize >= in_h {
                                        continue;
                                    }
                                    for j in 0..k {
                                        let ci = (c * stride + j) as isize - pad;
                                        if ci < 0 || ci as usize >= in_w {
                                            continue;
                                        }
                                        let xi = in_plane_base + ri as usize * in_w + ci as usize;
                                        let widx = ((m * conv.in_channels() + n) * k + i) * k + j;
                                        wg[widx] += g * x.at(xi);
                                        dx[xi] += conv.weights()[widx] * g;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Layer::Pool(p) => match p.kind() {
                PoolKind::Max => {
                    for (oidx, &src) in cache.argmax[id].iter().enumerate() {
                        dx[src] += dout[oidx];
                    }
                }
                PoolKind::Avg => {
                    let out_shape = out.shape();
                    let in_shape = x.shape();
                    let kk = (p.window() * p.window()) as f32;
                    let (out_h, out_w) = (out_shape.height(), out_shape.width());
                    let in_w = in_shape.width();
                    for ch in 0..out_shape.channels() {
                        for r in 0..out_h {
                            for c in 0..out_w {
                                let g = dout[out_shape.index(ch, r, c)] / kk;
                                for i in 0..p.window() {
                                    for j in 0..p.window() {
                                        let xi = ch * in_shape.plane()
                                            + (r * p.stride() + i) * in_w
                                            + c * p.stride()
                                            + j;
                                        dx[xi] += g;
                                    }
                                }
                            }
                        }
                    }
                }
            },
        }
        dout = dx;
    }
    loss
}

fn apply_update(net: &mut Network, grads: &Grads, vel: &mut Grads, cfg: &TrainConfig, scale: f32) {
    for idx in 0..net.len() {
        if grads.w[idx].is_empty() {
            continue;
        }
        let node = net.node_mut(crate::NodeId(idx));
        let Op::Layer(layer) = node.op_mut() else {
            continue;
        };
        let (weights, bias) = match layer {
            Layer::Conv(c) => c.params_mut(),
            Layer::Dense(d) => d.params_mut(),
            Layer::Pool(_) => continue,
        };
        for ((w, g), v) in weights
            .iter_mut()
            .zip(&grads.w[idx])
            .zip(vel.w[idx].iter_mut())
        {
            *v = cfg.momentum * *v - cfg.lr * g * scale;
            *w += *v;
        }
        for ((b, g), v) in bias
            .iter_mut()
            .zip(&grads.b[idx])
            .zip(vel.b[idx].iter_mut())
        {
            *v = cfg.momentum * *v - cfg.lr * g * scale;
            *b += *v;
        }
    }
}

/// Trains `net` in place on `data` and reports per-epoch losses.
///
/// # Panics
///
/// Panics if the network is not a sequential layer chain or `data` is
/// empty.
pub fn train(net: &mut Network, data: &[SynthSample], cfg: &TrainConfig) -> TrainReport {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert_sequential(net);
    let mut grads = Grads::zeros_like(net);
    let mut vel = Grads::zeros_like(net);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut step = 0u64;
    let mut epoch_cfg = *cfg;
    for epoch in 0..cfg.epochs {
        epoch_cfg.lr = cfg.lr * cfg.lr_decay.powi(epoch as i32);
        let mut total_loss = 0.0f32;
        for batch in data.chunks(cfg.batch_size) {
            grads.clear();
            for sample in batch {
                let dropout =
                    (cfg.dropout > 0.0).then(|| (cfg.dropout, cfg.dropout_seed.wrapping_add(step)));
                step += 1;
                let cache = forward_cached(net, &sample.image, dropout);
                total_loss += backward(net, &cache, sample.label, &mut grads);
            }
            apply_update(net, &grads, &mut vel, &epoch_cfg, 1.0 / batch.len() as f32);
        }
        epoch_losses.push(total_loss / data.len() as f32);
    }
    let final_train_accuracy = accuracy(net, data);
    TrainReport {
        epoch_losses,
        final_train_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SynthDigits;
    use crate::{init, Conv2d, Dense, NetworkBuilder, Pool2d};
    use fbcnn_tensor::Shape;

    fn small_digit_net(seed: u64) -> Network {
        let mut b = NetworkBuilder::new(Shape::new(1, 28, 28));
        let x = b.input();
        let c1 = b.layer(x, Conv2d::new(1, 4, 5, 1, 0, true), "c1").unwrap();
        let p1 = b.layer(c1, Pool2d::new(PoolKind::Max, 2, 2), "p1").unwrap();
        let c2 = b.layer(p1, Conv2d::new(4, 8, 5, 1, 0, true), "c2").unwrap();
        let p2 = b.layer(c2, Pool2d::new(PoolKind::Max, 2, 2), "p2").unwrap();
        let f = b.layer(p2, Dense::new(8 * 4 * 4, 10, false), "fc").unwrap();
        let _ = f;
        let mut net = b.build().unwrap();
        init::he_uniform(&mut net, seed);
        net
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let mut net = small_digit_net(1);
        let data = SynthDigits::new(1).batch(0, 80);
        let report = train(
            &mut net,
            &data,
            &TrainConfig {
                epochs: 3,
                dropout: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(
            report.epoch_losses[2] < report.epoch_losses[0],
            "loss did not decrease: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn training_beats_chance() {
        let mut net = small_digit_net(2);
        let data = SynthDigits::new(2).batch(0, 120);
        // The toy 4/8-channel net is too small for heavy dropout; this
        // test exercises the optimizer itself.
        let report = train(
            &mut net,
            &data,
            &TrainConfig {
                dropout: 0.0,
                ..TrainConfig::default()
            },
        );
        assert!(
            report.final_train_accuracy > 0.5,
            "accuracy {} not above chance",
            report.final_train_accuracy
        );
        // Generalization to a held-out split.
        let test = SynthDigits::new(99).batch(0, 60);
        assert!(accuracy(&net, &test) > 0.3);
    }

    #[test]
    fn cross_entropy_of_confident_correct_is_small() {
        assert!(cross_entropy(&[10.0, 0.0, 0.0], 0) < 0.01);
        assert!(cross_entropy(&[10.0, 0.0, 0.0], 1) > 5.0);
    }

    #[test]
    fn numeric_gradient_check_dense() {
        // Finite-difference check on a tiny dense-only net.
        let mut b = NetworkBuilder::new(Shape::flat(4));
        let x = b.input();
        b.layer(x, Dense::new(4, 3, true), "h").unwrap();
        let mut net = b.build().unwrap();
        init::he_uniform(&mut net, 5);
        // One fake sample.
        let img = Tensor::from_vec(Shape::flat(4), vec![0.3, -0.1, 0.7, 0.2]);
        let label = 2usize;

        let mut grads = Grads::zeros_like(&net);
        let cache = forward_cached(&net, &img, None);
        backward(&net, &cache, label, &mut grads);

        let eps = 1e-3f32;
        for wi in 0..6 {
            let orig = net
                .node(crate::NodeId(1))
                .layer()
                .unwrap()
                .as_dense()
                .unwrap()
                .weights()[wi];
            set_dense_weight(&mut net, wi, orig + eps);
            let lp = cross_entropy(&net.forward(&img), label);
            set_dense_weight(&mut net, wi, orig - eps);
            let lm = cross_entropy(&net.forward(&img), label);
            set_dense_weight(&mut net, wi, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.w[1][wi];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "grad mismatch at {wi}: numeric {numeric} analytic {analytic}"
            );
        }
    }

    fn set_dense_weight(net: &mut Network, i: usize, v: f32) {
        if let Op::Layer(Layer::Dense(d)) = net.node_mut(crate::NodeId(1)).op_mut() {
            d.weights_mut()[i] = v;
        }
    }

    #[test]
    fn numeric_gradient_check_conv() {
        let mut b = NetworkBuilder::new(Shape::new(1, 4, 4));
        let x = b.input();
        let c = b.layer(x, Conv2d::new(1, 2, 3, 1, 1, true), "c").unwrap();
        b.layer(c, Dense::new(32, 3, false), "fc").unwrap();
        let mut net = b.build().unwrap();
        init::he_uniform(&mut net, 11);
        let img = Tensor::from_fn(Shape::new(1, 4, 4), |_, r, c| ((r * 4 + c) as f32) / 16.0);
        let label = 1usize;

        let mut grads = Grads::zeros_like(&net);
        let cache = forward_cached(&net, &img, None);
        backward(&net, &cache, label, &mut grads);

        let eps = 1e-3f32;
        for wi in [0usize, 4, 9, 17] {
            let orig = net
                .node(crate::NodeId(1))
                .layer()
                .unwrap()
                .as_conv()
                .unwrap()
                .weights()[wi];
            set_conv_weight(&mut net, wi, orig + eps);
            let lp = cross_entropy(&net.forward(&img), label);
            set_conv_weight(&mut net, wi, orig - eps);
            let lm = cross_entropy(&net.forward(&img), label);
            set_conv_weight(&mut net, wi, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.w[1][wi];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "conv grad mismatch at {wi}: numeric {numeric} analytic {analytic}"
            );
        }
    }

    fn set_conv_weight(net: &mut Network, i: usize, v: f32) {
        if let Op::Layer(Layer::Conv(c)) = net.node_mut(crate::NodeId(1)).op_mut() {
            c.weights_mut()[i] = v;
        }
    }
}
