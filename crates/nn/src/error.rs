use std::error::Error;
use std::fmt;

/// Errors produced while assembling a [`crate::Network`].
///
/// Forward execution itself panics on violated internal invariants (shapes
/// are fully validated at build time), so only graph construction is
/// fallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// A node referenced an input id that does not exist yet.
    UnknownNode(usize),
    /// A concat node received inputs whose spatial dimensions disagree.
    ConcatShapeMismatch(String),
    /// A layer's declared input shape does not match the producing node.
    ShapeMismatch {
        /// What the layer expected.
        expected: String,
        /// What the upstream node produces.
        actual: String,
    },
    /// The graph has no output node (it is empty).
    EmptyGraph,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            NnError::ConcatShapeMismatch(msg) => {
                write!(f, "concat inputs have mismatched spatial shape: {msg}")
            }
            NnError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "layer expects input {expected} but upstream produces {actual}"
                )
            }
            NnError::EmptyGraph => write!(f, "network graph has no nodes"),
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NnError::ShapeMismatch {
            expected: "3x32x32".into(),
            actual: "3x16x16".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("3x32x32") && msg.contains("3x16x16"));
        assert!(!format!("{:?}", NnError::EmptyGraph).is_empty());
    }
}
