use crate::{init, Conv2d, Dense, Network, NetworkBuilder, Pool2d, PoolKind};
use fbcnn_tensor::Shape;

/// Builds LeNet-5 for 28×28×1 inputs, 10 classes.
///
/// Topology (the classic LeCun variant with a third 5×5 convolution acting
/// as the first fully-connected stage):
///
/// ```text
/// input 1x28x28
/// conv1: 6 @ 5x5, pad 2, ReLU   -> 6x28x28
/// maxpool 2/2                   -> 6x14x14
/// conv2: 16 @ 5x5, ReLU         -> 16x10x10
/// maxpool 2/2                   -> 16x5x5
/// conv3: 120 @ 5x5, ReLU        -> 120x1x1
/// fc1: 120 -> 84, ReLU
/// fc2: 84 -> 10
/// ```
///
/// Weights are filled with the calibrated initialization; for the accuracy
/// experiments the network is re-trained on SynthDigits (see
/// [`crate::train`]).
///
/// # Examples
///
/// ```
/// let net = fbcnn_nn::models::lenet5(1);
/// assert_eq!(net.conv_nodes().len(), 3);
/// assert_eq!(net.output_shape().len(), 10);
/// ```
pub fn lenet5(seed: u64) -> Network {
    let mut b = NetworkBuilder::named("lenet5", Shape::new(1, 28, 28));
    let x = b.input();
    let c1 = b
        .layer(x, Conv2d::new(1, 6, 5, 1, 2, true), "conv1")
        .expect("lenet conv1");
    let p1 = b
        .layer(c1, Pool2d::new(PoolKind::Max, 2, 2), "pool1")
        .expect("lenet pool1");
    let c2 = b
        .layer(p1, Conv2d::new(6, 16, 5, 1, 0, true), "conv2")
        .expect("lenet conv2");
    let p2 = b
        .layer(c2, Pool2d::new(PoolKind::Max, 2, 2), "pool2")
        .expect("lenet pool2");
    let c3 = b
        .layer(p2, Conv2d::new(16, 120, 5, 1, 0, true), "conv3")
        .expect("lenet conv3");
    let f1 = b
        .layer(c3, Dense::new(120, 84, true), "fc1")
        .expect("lenet fc1");
    b.layer(f1, Dense::new(84, 10, false), "fc2")
        .expect("lenet fc2");
    let mut net = b.build().expect("lenet graph");
    init::calibrated(&mut net, seed);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbcnn_tensor::Tensor;

    #[test]
    fn shapes_follow_the_classic_plan() {
        let net = lenet5(0);
        let shapes: Vec<String> = net
            .nodes()
            .iter()
            .map(|n| net.shape(n.id()).to_string())
            .collect();
        assert_eq!(
            shapes,
            vec![
                "1x28x28", "6x28x28", "6x14x14", "16x10x10", "16x5x5", "120x1x1", "84x1x1",
                "10x1x1"
            ]
        );
    }

    #[test]
    fn forward_produces_ten_logits() {
        let net = lenet5(3);
        let input = Tensor::from_fn(net.input_shape(), |_, r, c| ((r + c) % 5) as f32 / 5.0);
        let logits = net.forward(&input);
        assert_eq!(logits.len(), 10);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn macs_match_hand_count() {
        let net = lenet5(0);
        // conv1: 6*28*28*25*1; conv2: 16*10*10*25*6; conv3: 120*1*1*25*16
        // fc1: 120*84; fc2: 84*10
        let expect = 6 * 28 * 28 * 25 + 16 * 100 * 25 * 6 + 120 * 25 * 16 + 120 * 84 + 840;
        assert_eq!(net.total_macs(), expect as u64);
    }
}
