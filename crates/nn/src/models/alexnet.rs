use super::ModelScale;
use crate::{init, Conv2d, Dense, Network, NetworkBuilder, Pool2d, PoolKind};
use fbcnn_tensor::Shape;

/// Builds AlexNet adapted to CIFAR-shaped 32×32×3 inputs (the common
/// CIFAR variant: 3×3 kernels, three pools), 100 classes, optionally
/// width/resolution scaled.
///
/// Not part of the paper's evaluation set — provided as an extension
/// (Cnvlutin's original evaluation used AlexNet, so the comparison can
/// be reproduced on it too).
///
/// ```text
/// conv1:  64 @ 3x3 p1, ReLU   pool 2/2
/// conv2: 192 @ 3x3 p1, ReLU   pool 2/2
/// conv3: 384 @ 3x3 p1, ReLU
/// conv4: 256 @ 3x3 p1, ReLU
/// conv5: 256 @ 3x3 p1, ReLU   pool 2/2
/// fc1: 256·4·4 -> 512, ReLU
/// fc2: 512 -> 100
/// ```
///
/// # Examples
///
/// ```
/// use fbcnn_nn::models::{alexnet_scaled, ModelScale};
///
/// let net = alexnet_scaled(1, ModelScale::TINY);
/// assert_eq!(net.conv_nodes().len(), 5);
/// ```
pub fn alexnet_scaled(seed: u64, scale: ModelScale) -> Network {
    let dim = scale.dim(32);
    let mut b = NetworkBuilder::named("alexnet", Shape::new(3, dim, dim));
    let x = b.input();
    let c = [
        scale.channels(64),
        scale.channels(192),
        scale.channels(384),
        scale.channels(256),
        scale.channels(256),
    ];
    let c1 = b
        .layer(x, Conv2d::new(3, c[0], 3, 1, 1, true), "conv1")
        .expect("alexnet conv1");
    let p1 = b
        .layer(c1, Pool2d::new(PoolKind::Max, 2, 2), "pool1")
        .expect("alexnet pool1");
    let c2 = b
        .layer(p1, Conv2d::new(c[0], c[1], 3, 1, 1, true), "conv2")
        .expect("alexnet conv2");
    let p2 = b
        .layer(c2, Pool2d::new(PoolKind::Max, 2, 2), "pool2")
        .expect("alexnet pool2");
    let c3 = b
        .layer(p2, Conv2d::new(c[1], c[2], 3, 1, 1, true), "conv3")
        .expect("alexnet conv3");
    let c4 = b
        .layer(c3, Conv2d::new(c[2], c[3], 3, 1, 1, true), "conv4")
        .expect("alexnet conv4");
    let c5 = b
        .layer(c4, Conv2d::new(c[3], c[4], 3, 1, 1, true), "conv5")
        .expect("alexnet conv5");
    let p3 = b
        .layer(c5, Pool2d::new(PoolKind::Max, 2, 2), "pool3")
        .expect("alexnet pool3");
    let spatial = dim / 8;
    let feat = c[4] * spatial * spatial;
    let hidden = scale.channels(512);
    let f1 = b
        .layer(p3, Dense::new(feat, hidden, true), "fc1")
        .expect("alexnet fc1");
    b.layer(f1, Dense::new(hidden, 100, false), "fc2")
        .expect("alexnet fc2");
    let mut net = b.build().expect("alexnet graph");
    init::calibrated(&mut net, seed);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbcnn_tensor::Tensor;

    #[test]
    fn full_size_shape_plan() {
        let net = alexnet_scaled(0, ModelScale::FULL);
        assert_eq!(net.input_shape(), Shape::new(3, 32, 32));
        assert_eq!(net.conv_nodes().len(), 5);
        assert_eq!(net.output_shape().len(), 100);
        let last_conv = *net.conv_nodes().last().unwrap();
        assert_eq!(net.shape(last_conv), Shape::new(256, 8, 8));
    }

    #[test]
    fn tiny_variant_runs_forward() {
        let net = alexnet_scaled(4, ModelScale::TINY);
        let input = Tensor::from_fn(net.input_shape(), |ch, r, c| {
            ((ch + r * 2 + c) % 5) as f32 / 5.0
        });
        let logits = net.forward(&input);
        assert_eq!(logits.len(), 100);
        assert!(logits.iter().all(|v| v.is_finite()));
    }
}
