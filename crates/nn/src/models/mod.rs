//! The three network topologies the paper evaluates.
//!
//! * [`lenet5`] — LeNet-5 on 28×28×1 (MNIST-shaped) inputs;
//! * [`vgg16`] — VGG16 adapted to 32×32×3 (CIFAR-shaped) inputs, 100
//!   classes;
//! * [`googlenet`] — GoogLeNet (full Inception v1 channel plan) adapted
//!   to 32×32×3 inputs, 100 classes.
//!
//! Each builder takes a seed and returns a fully initialized network
//! (calibrated initialization, see [`crate::init`]).
//!
//! # Scaled variants
//!
//! The reproduction runs on a single CPU core, so the experiment harness
//! uses width/resolution-scaled variants by default
//! ([`ModelKind::build_scaled`] with [`ModelScale::BENCH`]). The full-size
//! topologies are always available via [`ModelScale::FULL`]; scaling
//! multiplies channel counts by `width` and divides spatial resolution by
//! `resolution_div`, which leaves every *relative* quantity the
//! experiments report (skip rates, speedups, energy ratios) governed by
//! the same mechanisms.

mod alexnet;
mod googlenet;
mod lenet;
mod vgg;

pub use alexnet::alexnet_scaled;
pub use googlenet::googlenet_scaled;
pub use lenet::lenet5;
pub use vgg::vgg16_scaled;

use crate::Network;
use serde::{Deserialize, Serialize};

/// Width/resolution scaling applied to a model topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelScale {
    /// Channel-count multiplier in `(0, 1]`.
    pub width: f32,
    /// Input resolution divisor (`1` = native resolution).
    pub resolution_div: usize,
}

impl ModelScale {
    /// The paper's native sizes.
    pub const FULL: ModelScale = ModelScale {
        width: 1.0,
        resolution_div: 1,
    };

    /// Default harness scale for single-core runs: quarter width at
    /// *native* resolution for the two big models (LeNet-5 always runs
    /// full size — it is small enough). Width-only scaling preserves the
    /// paper's feature-map plane sizes, which govern per-channel skip
    /// balance and the counting-lane overlap (Eq. 8/9); channel counts
    /// stay large enough for the `<Tm, Tn>` design space to behave as at
    /// full width.
    pub const BENCH: ModelScale = ModelScale {
        width: 0.5,
        resolution_div: 1,
    };

    /// An even smaller scale for unit/integration tests.
    pub const TINY: ModelScale = ModelScale {
        width: 0.125,
        resolution_div: 2,
    };

    /// Width-only test scale with native planes (for balance-sensitive
    /// tests).
    pub const TINY_WIDE: ModelScale = ModelScale {
        width: 0.125,
        resolution_div: 1,
    };

    /// Scales a channel count (minimum 4, rounded to a multiple of 4 so
    /// `Tn = 4` lanes stay aligned).
    pub fn channels(&self, c: usize) -> usize {
        let scaled = (c as f32 * self.width).round() as usize;
        scaled.max(4).div_ceil(4) * 4
    }

    /// Scales a spatial dimension (minimum 8 pixels).
    pub fn dim(&self, d: usize) -> usize {
        (d / self.resolution_div).max(8)
    }
}

impl Default for ModelScale {
    fn default() -> Self {
        Self::FULL
    }
}

/// The evaluated models (paper §VI-A) plus the AlexNet extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// B-LeNet-5 (MNIST).
    LeNet5,
    /// B-VGG16 (CIFAR-100).
    Vgg16,
    /// B-GoogLeNet (CIFAR-100).
    GoogLeNet,
    /// B-AlexNet (CIFAR-shaped) — an extension beyond the paper's set.
    AlexNet,
}

impl ModelKind {
    /// The paper's three models, in its presentation order.
    pub const ALL: [ModelKind; 3] = [ModelKind::LeNet5, ModelKind::Vgg16, ModelKind::GoogLeNet];

    /// The paper's models plus the AlexNet extension.
    pub const EXTENDED: [ModelKind; 4] = [
        ModelKind::LeNet5,
        ModelKind::Vgg16,
        ModelKind::GoogLeNet,
        ModelKind::AlexNet,
    ];

    /// The paper's name for the Bayesian variant ("B-LeNet-5", …).
    pub fn bayesian_name(&self) -> &'static str {
        match self {
            ModelKind::LeNet5 => "B-LeNet-5",
            ModelKind::Vgg16 => "B-VGG16",
            ModelKind::GoogLeNet => "B-GoogLeNet",
            ModelKind::AlexNet => "B-AlexNet",
        }
    }

    /// Builds the full-size model.
    pub fn build(&self, seed: u64) -> Network {
        self.build_scaled(seed, ModelScale::FULL)
    }

    /// Builds a scaled model (LeNet-5 ignores the scale; it is already
    /// small).
    pub fn build_scaled(&self, seed: u64, scale: ModelScale) -> Network {
        match self {
            ModelKind::LeNet5 => lenet5(seed),
            ModelKind::Vgg16 => vgg16_scaled(seed, scale),
            ModelKind::GoogLeNet => googlenet_scaled(seed, scale),
            ModelKind::AlexNet => alexnet_scaled(seed, scale),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.bayesian_name())
    }
}

/// Builds the full-size VGG16 (CIFAR-shaped).
pub fn vgg16(seed: u64) -> Network {
    vgg16_scaled(seed, ModelScale::FULL)
}

/// Builds the full-size GoogLeNet (CIFAR-shaped).
pub fn googlenet(seed: u64) -> Network {
    googlenet_scaled(seed, ModelScale::FULL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_channel_rounding() {
        let s = ModelScale::BENCH;
        assert_eq!(s.channels(64), 32);
        assert_eq!(s.channels(3), 4);
        assert_eq!(s.channels(100), 52); // 50 -> next multiple of 4
        assert_eq!(s.dim(32), 32);
        assert_eq!(s.dim(8), 8); // floor at 8
    }

    #[test]
    fn full_scale_is_identity_for_multiples_of_four() {
        let s = ModelScale::FULL;
        assert_eq!(s.channels(64), 64);
        assert_eq!(s.dim(32), 32);
    }

    #[test]
    fn model_kind_display() {
        assert_eq!(ModelKind::Vgg16.to_string(), "B-VGG16");
        assert_eq!(ModelKind::ALL.len(), 3);
    }
}
