use super::ModelScale;
use crate::{init, Conv2d, Dense, Network, NetworkBuilder, NodeId, Pool2d, PoolKind};
use fbcnn_tensor::Shape;

/// The VGG16 channel plan: five blocks of 3×3/pad-1 convolutions, each
/// followed by a 2×2/2 max pool.
const BLOCKS: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];

/// Builds VGG16 adapted to CIFAR-shaped 32×32×3 inputs, 100 classes,
/// optionally width/resolution scaled.
///
/// The classifier is the common CIFAR adaptation: after the fifth pool the
/// feature map is 1×1, so a single hidden FC layer (512) precedes the
/// 100-way output.
///
/// Layer labels follow the `convB_I` convention (`conv1_1` … `conv5_3`),
/// matching how the paper refers to e.g. "the 2nd layer of
/// Bayesian-VGG16".
///
/// # Examples
///
/// ```
/// use fbcnn_nn::models::{vgg16_scaled, ModelScale};
///
/// let net = vgg16_scaled(1, ModelScale::TINY);
/// assert_eq!(net.conv_nodes().len(), 13);
/// ```
pub fn vgg16_scaled(seed: u64, scale: ModelScale) -> Network {
    let dim = scale.dim(32);
    let mut b = NetworkBuilder::named("vgg16", Shape::new(3, dim, dim));
    let mut cursor: NodeId = b.input();
    let mut in_ch = 3;
    let mut spatial = dim;
    for (block, &(channels, reps)) in BLOCKS.iter().enumerate() {
        let out_ch = scale.channels(channels);
        for rep in 0..reps {
            let label = format!("conv{}_{}", block + 1, rep + 1);
            cursor = b
                .layer(cursor, Conv2d::new(in_ch, out_ch, 3, 1, 1, true), label)
                .expect("vgg conv");
            in_ch = out_ch;
        }
        // Only pool while the spatial size can halve; scaled-resolution
        // variants run out of pixels before the fifth block.
        if spatial >= 2 {
            cursor = b
                .layer(
                    cursor,
                    Pool2d::new(PoolKind::Max, 2, 2),
                    format!("pool{}", block + 1),
                )
                .expect("vgg pool");
            spatial /= 2;
        }
    }
    let feat = in_ch * spatial * spatial;
    let hidden = scale.channels(512);
    let f1 = b
        .layer(cursor, Dense::new(feat, hidden, true), "fc1")
        .expect("vgg fc1");
    b.layer(f1, Dense::new(hidden, 100, false), "fc2")
        .expect("vgg fc2");
    let mut net = b.build().expect("vgg graph");
    init::calibrated(&mut net, seed);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::vgg16;
    use fbcnn_tensor::Tensor;

    #[test]
    fn full_size_shape_plan() {
        let net = vgg16(0);
        assert_eq!(net.input_shape(), Shape::new(3, 32, 32));
        assert_eq!(net.conv_nodes().len(), 13);
        assert_eq!(net.output_shape().len(), 100);
        // After five pools: 512x1x1.
        let last_conv = *net.conv_nodes().last().unwrap();
        assert_eq!(net.shape(last_conv), Shape::new(512, 2, 2));
    }

    #[test]
    fn labels_follow_paper_convention() {
        let net = vgg16(0);
        let labels: Vec<&str> = net
            .conv_nodes()
            .iter()
            .map(|&id| net.node(id).label())
            .collect();
        assert_eq!(labels[0], "conv1_1");
        assert_eq!(labels[1], "conv1_2");
        assert_eq!(labels[12], "conv5_3");
    }

    #[test]
    fn scaled_variant_runs_forward() {
        let net = vgg16_scaled(5, ModelScale::TINY);
        let input = Tensor::from_fn(net.input_shape(), |ch, r, c| {
            ((ch + r + c) % 7) as f32 / 7.0
        });
        let logits = net.forward(&input);
        assert_eq!(logits.len(), 100);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn scaling_reduces_macs() {
        let full = vgg16(0);
        // Half width ≈ quarter MACs; TINY is far smaller still.
        let bench = vgg16_scaled(0, ModelScale::BENCH);
        assert!(bench.total_macs() * 3 < full.total_macs());
        let tiny = vgg16_scaled(0, ModelScale::TINY);
        assert!(tiny.total_macs() * 10 < full.total_macs());
    }
}
