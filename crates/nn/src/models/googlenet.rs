use super::ModelScale;
use crate::{init, Conv2d, Dense, Network, NetworkBuilder, NodeId, Pool2d, PoolKind};
use fbcnn_tensor::Shape;

/// Channel plan of one Inception module:
/// `(b1, b3_reduce, b3, b5_reduce, b5, pool_proj)`.
type InceptionPlan = (usize, usize, usize, usize, usize, usize);

/// The Inception v1 channel plan (GoogLeNet table 1), modules 3a–5b.
const INCEPTIONS: [(&str, InceptionPlan); 9] = [
    ("a3", (64, 96, 128, 16, 32, 32)),
    ("b3", (128, 128, 192, 32, 96, 64)),
    ("a4", (192, 96, 208, 16, 48, 64)),
    ("b4", (160, 112, 224, 24, 64, 64)),
    ("c4", (128, 128, 256, 24, 64, 64)),
    ("d4", (112, 144, 288, 32, 64, 64)),
    ("e4", (256, 160, 320, 32, 128, 128)),
    ("a5", (256, 160, 320, 32, 128, 128)),
    ("b5", (384, 192, 384, 48, 128, 128)),
];

fn inception(
    b: &mut NetworkBuilder,
    input: NodeId,
    in_ch: usize,
    name: &str,
    plan: InceptionPlan,
    scale: ModelScale,
) -> (NodeId, usize) {
    let (b1, r3, b3, r5, b5, pp) = plan;
    let (b1, r3, b3, r5, b5, pp) = (
        scale.channels(b1),
        scale.channels(r3),
        scale.channels(b3),
        scale.channels(r5),
        scale.channels(b5),
        scale.channels(pp),
    );
    // Branch 1: 1x1. Label convention matches the paper's "a3C1".
    let n1 = b
        .layer(
            input,
            Conv2d::new(in_ch, b1, 1, 1, 0, true),
            format!("{name}C1"),
        )
        .expect("inception 1x1");
    // Branch 2: 1x1 reduce then 3x3. The paper's "b5R3" is the 3x3 reduce.
    let n3r = b
        .layer(
            input,
            Conv2d::new(in_ch, r3, 1, 1, 0, true),
            format!("{name}R3"),
        )
        .expect("inception 3x3 reduce");
    let n3 = b
        .layer(n3r, Conv2d::new(r3, b3, 3, 1, 1, true), format!("{name}C3"))
        .expect("inception 3x3");
    // Branch 3: 1x1 reduce then 5x5.
    let n5r = b
        .layer(
            input,
            Conv2d::new(in_ch, r5, 1, 1, 0, true),
            format!("{name}R5"),
        )
        .expect("inception 5x5 reduce");
    let n5 = b
        .layer(n5r, Conv2d::new(r5, b5, 5, 1, 2, true), format!("{name}C5"))
        .expect("inception 5x5");
    // Branch 4: 3x3/1 same-size max pool then 1x1 projection.
    let np = b
        .layer(
            input,
            Pool2d::new(PoolKind::Max, 3, 1).with_pad(1),
            format!("{name}P"),
        )
        .expect("inception pool");
    let npp = b
        .layer(
            np,
            Conv2d::new(in_ch, pp, 1, 1, 0, true),
            format!("{name}PP"),
        )
        .expect("inception pool proj");
    let out = b
        .concat(&[n1, n3, n5, npp], format!("{name}cat"))
        .expect("inception concat");
    (out, b1 + b3 + b5 + pp)
}

/// Builds GoogLeNet (Inception v1) adapted to CIFAR-shaped 32×32×3
/// inputs, 100 classes, optionally width/resolution scaled.
///
/// The 224×224 stem (7×7/2 conv and two early pools) is replaced by the
/// standard CIFAR stem — two 3×3/pad-1 convolutions — so Inception 3
/// operates at 32×32, Inception 4 at 16×16 and Inception 5 at 8×8,
/// followed by a global average pool and the 100-way classifier. All nine
/// Inception modules keep the published channel plan.
///
/// # Examples
///
/// ```
/// use fbcnn_nn::models::{googlenet_scaled, ModelScale};
///
/// let net = googlenet_scaled(1, ModelScale::TINY);
/// // 2 stem convs + 9 modules x 6 convs
/// assert_eq!(net.conv_nodes().len(), 2 + 9 * 6);
/// ```
pub fn googlenet_scaled(seed: u64, scale: ModelScale) -> Network {
    let dim = scale.dim(32);
    let mut b = NetworkBuilder::named("googlenet", Shape::new(3, dim, dim));
    let x = b.input();
    let stem1_ch = scale.channels(64);
    let stem2_ch = scale.channels(192);
    let s1 = b
        .layer(x, Conv2d::new(3, stem1_ch, 3, 1, 1, true), "conv1")
        .expect("stem conv1");
    let s2 = b
        .layer(s1, Conv2d::new(stem1_ch, stem2_ch, 3, 1, 1, true), "conv2")
        .expect("stem conv2");

    let mut cursor = s2;
    let mut in_ch = stem2_ch;
    let mut spatial = dim;
    for (name, plan) in INCEPTIONS {
        let (out, out_ch) = inception(&mut b, cursor, in_ch, name, plan, scale);
        cursor = out;
        in_ch = out_ch;
        // Downsample after 3b and 4e (the paper's grouping into the
        // consecutive-layer blocks a3–b3, a4–e4, a5–b5).
        if (name == "b3" || name == "e4") && spatial >= 2 {
            cursor = b
                .layer(
                    cursor,
                    Pool2d::new(PoolKind::Max, 2, 2),
                    format!("pool_{name}"),
                )
                .expect("googlenet pool");
            spatial /= 2;
        }
    }
    let gap = b
        .layer(cursor, Pool2d::new(PoolKind::Avg, spatial, spatial), "gap")
        .expect("global average pool");
    b.layer(gap, Dense::new(in_ch, 100, false), "fc")
        .expect("classifier");
    let mut net = b.build().expect("googlenet graph");
    init::calibrated(&mut net, seed);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::googlenet;
    use fbcnn_tensor::Tensor;

    #[test]
    fn full_size_channel_plan() {
        let net = googlenet(0);
        assert_eq!(net.conv_nodes().len(), 56);
        assert_eq!(net.output_shape().len(), 100);
        // Find the a3 concat output: 64+128+32+32 = 256 channels at 32x32.
        let a3cat = net
            .nodes()
            .iter()
            .find(|n| n.label() == "a3cat")
            .expect("a3cat node");
        assert_eq!(net.shape(a3cat.id()), Shape::new(256, 32, 32));
        // b5 concat: 384+384+128+128 = 1024 channels at 8x8.
        let b5cat = net
            .nodes()
            .iter()
            .find(|n| n.label() == "b5cat")
            .expect("b5cat node");
        assert_eq!(net.shape(b5cat.id()), Shape::new(1024, 8, 8));
    }

    #[test]
    fn paper_layer_names_exist() {
        // The paper cites "a3C1" (1x1 conv in Inception 3a) and "b5R3"
        // (3x3 reduce in Inception 5b).
        let net = googlenet(0);
        for label in ["a3C1", "b5R3", "e4C5", "a4PP"] {
            assert!(
                net.nodes().iter().any(|n| n.label() == label),
                "missing layer {label}"
            );
        }
    }

    #[test]
    fn tiny_variant_forward_is_finite() {
        let net = googlenet_scaled(2, ModelScale::TINY);
        let input = Tensor::from_fn(net.input_shape(), |ch, r, c| {
            ((ch * 5 + r * 3 + c) % 11) as f32 / 11.0
        });
        let logits = net.forward(&input);
        assert_eq!(logits.len(), 100);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn downsampling_happens_twice() {
        let net = googlenet(0);
        let gap = net
            .nodes()
            .iter()
            .find(|n| n.label() == "gap")
            .expect("gap node");
        assert_eq!(net.shape(gap.id()), Shape::new(1024, 1, 1));
    }
}
