//! Numeric health checks for forward-pass activations.
//!
//! Soft errors (bit flips in weights or activations), poisoned inputs and
//! runaway arithmetic all surface the same way in a CNN: a `NaN`, an
//! infinity, or an absurdly large activation somewhere in the layer
//! outputs — and once produced, the corruption propagates silently to the
//! logits and from there into every MC-dropout statistic. An
//! [`ActivationGuard`] screens each node's output tensor and either
//! reports the fault as a typed error or repairs it in place, depending
//! on its [`GuardPolicy`].

use fbcnn_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a guard does when a tensor fails its health check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuardPolicy {
    /// Abort the pass with a [`NumericFault`] — strict mode for callers
    /// that must never consume repaired values.
    Fail,
    /// Repair in place: `NaN` becomes `0`, infinities and over-limit
    /// values clamp to `±max_abs`. The pass continues on the repaired
    /// tensor and the caller learns how many values were touched.
    Saturate,
    /// Report the fault like [`GuardPolicy::Fail`]; higher layers (the
    /// engine's `predict_robust`) interpret it as "abandon this fast-path
    /// sample and recompute it exactly".
    FallbackExact,
}

/// A typed numeric-health violation found in a node's output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NumericFault {
    /// A `NaN` or infinity at `index` of node `node`'s output.
    NotFinite {
        /// Graph node id where the value was produced.
        node: usize,
        /// Linear index of the first offending value.
        index: usize,
    },
    /// A finite activation whose magnitude exceeds the guard's limit.
    Explosion {
        /// Graph node id where the value was produced.
        node: usize,
        /// Linear index of the first offending value.
        index: usize,
        /// The offending value.
        value: f32,
    },
}

impl GuardPolicy {
    /// Stable lowercase policy name — the `policy` telemetry label.
    pub fn name(&self) -> &'static str {
        match self {
            GuardPolicy::Fail => "fail",
            GuardPolicy::Saturate => "saturate",
            GuardPolicy::FallbackExact => "fallback_exact",
        }
    }
}

impl NumericFault {
    /// Stable fault-kind name — the `kind` telemetry label.
    pub fn kind(&self) -> &'static str {
        match self {
            NumericFault::NotFinite { .. } => "not_finite",
            NumericFault::Explosion { .. } => "explosion",
        }
    }
}

impl fmt::Display for NumericFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericFault::NotFinite { node, index } => {
                write!(f, "non-finite activation at node {node}, index {index}")
            }
            NumericFault::Explosion { node, index, value } => {
                write!(
                    f,
                    "exploding activation {value:e} at node {node}, index {index}"
                )
            }
        }
    }
}

impl std::error::Error for NumericFault {}

/// Per-layer activation health check: every value must be finite and
/// within `±max_abs`.
///
/// # Examples
///
/// ```
/// use fbcnn_nn::{ActivationGuard, GuardPolicy};
/// use fbcnn_tensor::{Shape, Tensor};
///
/// let mut t = Tensor::full(Shape::flat(4), 1.0);
/// t.set(2, f32::NAN);
/// let strict = ActivationGuard::strict();
/// assert!(strict.screen(0, &mut t).is_err());
/// let lenient = ActivationGuard {
///     policy: GuardPolicy::Saturate,
///     ..ActivationGuard::default()
/// };
/// assert_eq!(lenient.screen(0, &mut t), Ok(1)); // NaN repaired to 0
/// assert_eq!(t.at(2), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationGuard {
    /// Largest activation magnitude considered healthy. Anything above is
    /// an [`NumericFault::Explosion`] (or is clamped under
    /// [`GuardPolicy::Saturate`]).
    pub max_abs: f32,
    /// What to do on a violation.
    pub policy: GuardPolicy,
}

impl Default for ActivationGuard {
    fn default() -> Self {
        Self {
            // Healthy activations in this workspace sit well below 1e3;
            // 1e12 flags genuine blow-ups without ever tripping on the
            // models' working range.
            max_abs: 1e12,
            policy: GuardPolicy::FallbackExact,
        }
    }
}

impl ActivationGuard {
    /// A guard that fails hard on any violation.
    pub fn strict() -> Self {
        Self {
            policy: GuardPolicy::Fail,
            ..Self::default()
        }
    }

    /// Scans `t` for the first unhealthy value, without modifying it.
    pub fn find_fault(&self, node: usize, t: &Tensor) -> Option<NumericFault> {
        for (index, &v) in t.iter().enumerate() {
            if !v.is_finite() {
                return Some(NumericFault::NotFinite { node, index });
            }
            if v.abs() > self.max_abs {
                return Some(NumericFault::Explosion {
                    node,
                    index,
                    value: v,
                });
            }
        }
        None
    }

    /// Checks (and under [`GuardPolicy::Saturate`] repairs) a node output.
    ///
    /// Returns the number of repaired values — always `0` for the
    /// non-repairing policies.
    ///
    /// Every violation increments the `guard_trips` telemetry counter
    /// (labels: fault kind, policy); repairs additionally feed
    /// `guard_repaired_values`.
    ///
    /// # Errors
    ///
    /// Returns the first [`NumericFault`] found when the policy is
    /// [`GuardPolicy::Fail`] or [`GuardPolicy::FallbackExact`].
    pub fn screen(&self, node: usize, t: &mut Tensor) -> Result<usize, NumericFault> {
        match self.policy {
            GuardPolicy::Fail | GuardPolicy::FallbackExact => match self.find_fault(node, t) {
                Some(fault) => {
                    fbcnn_telemetry::counter_add(
                        "guard_trips",
                        &[("kind", fault.kind()), ("policy", self.policy.name())],
                        1,
                    );
                    Err(fault)
                }
                None => Ok(0),
            },
            GuardPolicy::Saturate => {
                let max = self.max_abs;
                let mut repaired = 0usize;
                for v in t.as_mut_slice() {
                    if v.is_nan() {
                        *v = 0.0;
                        repaired += 1;
                    } else if *v > max {
                        *v = max;
                        repaired += 1;
                    } else if *v < -max {
                        *v = -max;
                        repaired += 1;
                    }
                }
                if repaired > 0 {
                    fbcnn_telemetry::counter_add(
                        "guard_trips",
                        &[("kind", "repaired"), ("policy", self.policy.name())],
                        1,
                    );
                    fbcnn_telemetry::counter_add("guard_repaired_values", &[], repaired as u64);
                }
                Ok(repaired)
            }
        }
    }

    /// Checks a probability row: finite, within `[0, 1]`, and summing to
    /// one (softmax output). Used by the inference layers to validate
    /// per-sample rows before they enter the predictive mean.
    pub fn probs_are_sane(probs: &[f32]) -> bool {
        !probs.is_empty()
            && probs
                .iter()
                .all(|p| p.is_finite() && (0.0..=1.0).contains(p))
            && (probs.iter().sum::<f32>() - 1.0).abs() < 1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbcnn_tensor::Shape;

    fn tensor(vals: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::flat(vals.len()), vals.to_vec())
    }

    #[test]
    fn healthy_tensor_passes_every_policy() {
        for policy in [
            GuardPolicy::Fail,
            GuardPolicy::Saturate,
            GuardPolicy::FallbackExact,
        ] {
            let guard = ActivationGuard {
                policy,
                ..ActivationGuard::default()
            };
            let mut t = tensor(&[0.0, -3.5, 1e6]);
            assert_eq!(guard.screen(7, &mut t), Ok(0));
            assert_eq!(t, tensor(&[0.0, -3.5, 1e6]));
        }
    }

    #[test]
    fn nan_and_inf_are_detected_with_location() {
        let guard = ActivationGuard::strict();
        let mut t = tensor(&[1.0, f32::NAN, 2.0]);
        assert_eq!(
            guard.screen(3, &mut t),
            Err(NumericFault::NotFinite { node: 3, index: 1 })
        );
        let mut t = tensor(&[f32::INFINITY]);
        assert_eq!(
            guard.screen(0, &mut t),
            Err(NumericFault::NotFinite { node: 0, index: 0 })
        );
    }

    #[test]
    fn explosion_reports_the_value() {
        let guard = ActivationGuard {
            max_abs: 10.0,
            policy: GuardPolicy::Fail,
        };
        let mut t = tensor(&[1.0, -11.0]);
        match guard.screen(2, &mut t) {
            Err(NumericFault::Explosion {
                node: 2,
                index: 1,
                value,
            }) => {
                assert_eq!(value, -11.0);
            }
            other => panic!("unexpected screen outcome {other:?}"),
        }
    }

    #[test]
    fn saturate_repairs_in_place_and_counts() {
        let guard = ActivationGuard {
            max_abs: 10.0,
            policy: GuardPolicy::Saturate,
        };
        let mut t = tensor(&[f32::NAN, 20.0, -f32::INFINITY, 3.0]);
        assert_eq!(guard.screen(0, &mut t), Ok(3));
        assert_eq!(t, tensor(&[0.0, 10.0, -10.0, 3.0]));
    }

    #[test]
    fn fallback_policy_reports_like_fail() {
        let guard = ActivationGuard {
            policy: GuardPolicy::FallbackExact,
            ..ActivationGuard::default()
        };
        let mut t = tensor(&[f32::NAN]);
        assert!(matches!(
            guard.screen(1, &mut t),
            Err(NumericFault::NotFinite { node: 1, index: 0 })
        ));
        assert!(t.at(0).is_nan(), "fallback must not modify the tensor");
    }

    #[test]
    fn probability_sanity() {
        assert!(ActivationGuard::probs_are_sane(&[0.25, 0.75]));
        assert!(!ActivationGuard::probs_are_sane(&[]));
        assert!(!ActivationGuard::probs_are_sane(&[0.5, f32::NAN]));
        assert!(!ActivationGuard::probs_are_sane(&[0.9, 0.9]));
        assert!(!ActivationGuard::probs_are_sane(&[1.5, -0.5]));
    }

    #[test]
    fn screen_violations_feed_telemetry() {
        let registry = std::sync::Arc::new(fbcnn_telemetry::Registry::new());
        let _telemetry = fbcnn_telemetry::install(registry.clone());
        let strict = ActivationGuard::strict();
        let mut t = tensor(&[f32::NAN]);
        let _ = strict.screen(0, &mut t);
        assert_eq!(
            registry.counter_value("guard_trips", &[("kind", "not_finite"), ("policy", "fail")]),
            Some(1)
        );
        let lenient = ActivationGuard {
            max_abs: 10.0,
            policy: GuardPolicy::Saturate,
        };
        let mut t = tensor(&[f32::NAN, 20.0, 1.0]);
        assert_eq!(lenient.screen(0, &mut t), Ok(2));
        assert_eq!(registry.counter_total("guard_repaired_values"), 2);
        assert_eq!(
            registry.counter_value(
                "guard_trips",
                &[("kind", "repaired"), ("policy", "saturate")]
            ),
            Some(1)
        );
    }

    #[test]
    fn display_messages_are_informative() {
        let a = NumericFault::NotFinite { node: 4, index: 9 };
        assert!(a.to_string().contains("node 4"));
        let b = NumericFault::Explosion {
            node: 1,
            index: 0,
            value: 1e30,
        };
        assert!(b.to_string().contains("exploding"));
    }
}
