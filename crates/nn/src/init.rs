//! Deterministic weight initialization with calibrated post-ReLU sparsity.
//!
//! The paper's skipping opportunity rests on two statistics of *trained*
//! networks: (a) a substantial fraction of post-ReLU activations are zero
//! (typically 40–70 % per layer, Fig. 4) and (b) per-channel sparsity is
//! moderate in spread — the paper's Fast-BCNN-to-ideal gap of only
//! 7–15 % (PE idleness) bounds how skewed the channel-level skip
//! distribution can be. We do not have the authors' trained CIFAR-100
//! checkpoints, so for B-VGG16 and B-GoogLeNet we substitute
//! *activation-calibrated* weights:
//!
//! 1. fill every layer with He-uniform weights;
//! 2. run one dropout-free probe forward pass, layer by layer, and shift
//!    each kernel's bias so its post-ReLU zero fraction lands on a
//!    per-kernel target drawn from a narrow band.
//!
//! This mirrors how batch-norm-trained networks end up with controlled
//! activation statistics, reproduces Fig. 4's per-layer diversity through
//! the per-kernel target jitter, and leaves property (b) to emerge from
//! the same mechanism as in trained networks (losing a handful of
//! negative products rarely flips a decidedly negative pre-activation).
//!
//! B-LeNet-5 can additionally be *actually trained* on
//! [`crate::data::SynthDigits`] via [`crate::train`], so nothing here is
//! load-bearing for the accuracy experiments on that model.
//!
//! All generation is seeded, so networks are reproducible across runs and
//! platforms.

use crate::{Layer, Network, Op};
use fbcnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Controls the calibrated initialization.
///
/// # Examples
///
/// ```
/// use fbcnn_nn::init::InitConfig;
///
/// let cfg = InitConfig::default();
/// assert!(cfg.zero_max > cfg.zero_min);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InitConfig {
    /// Lower bound of the per-layer target zero fraction.
    pub zero_min: f32,
    /// Upper bound of the per-layer target zero fraction.
    pub zero_max: f32,
    /// Half-width of the per-kernel jitter around the layer target.
    pub kernel_jitter: f32,
}

impl Default for InitConfig {
    fn default() -> Self {
        // Fig. 4's regime: ~50-65 % zero neurons with kernel-to-kernel
        // diversity but moderate spread.
        Self {
            zero_min: 0.50,
            zero_max: 0.62,
            kernel_jitter: 0.015,
        }
    }
}

fn he_bound(fan_in: usize) -> f32 {
    (6.0 / fan_in as f32).sqrt()
}

fn rng_for(seed: u64, node: usize, kernel: usize) -> StdRng {
    // SplitMix-style mixing so nearby (node, kernel) pairs decorrelate.
    let mut z = seed
        .wrapping_add((node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((kernel as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Fills every layer with plain He-uniform weights (zero mean, zero
/// bias).
///
/// Used by the trainer as a starting point; produces roughly 50 % zero
/// activations after ReLU without any sparsity shaping.
pub fn he_uniform(net: &mut Network, seed: u64) {
    for (node_idx, (_, layer)) in net.layers_mut().enumerate() {
        match layer {
            Layer::Conv(conv) => {
                let fan_in = conv.in_channels() * conv.kernel_size() * conv.kernel_size();
                let bound = he_bound(fan_in);
                let ksz = fan_in;
                for m in 0..conv.out_channels() {
                    let mut rng = rng_for(seed, node_idx, m);
                    let kernel_start = m * ksz;
                    for w in &mut conv.weights_mut()[kernel_start..kernel_start + ksz] {
                        *w = rng.gen_range(-bound..bound);
                    }
                    conv.bias_mut()[m] = 0.0;
                }
            }
            Layer::Dense(dense) => {
                let bound = he_bound(dense.in_features());
                let mut rng = rng_for(seed, node_idx, usize::MAX / 2);
                for w in dense.weights_mut() {
                    *w = rng.gen_range(-bound..bound);
                }
                for b in dense.bias_mut() {
                    *b = 0.0;
                }
            }
            Layer::Pool(_) => {}
        }
    }
}

/// Fills every layer with He-uniform weights, then calibrates every
/// convolution kernel's bias so its post-ReLU zero fraction matches the
/// default target band (see the module docs).
pub fn calibrated(net: &mut Network, seed: u64) {
    init_with(net, seed, InitConfig::default());
}

/// Like [`calibrated`] with an explicit [`InitConfig`].
///
/// # Panics
///
/// Panics if the target band is not within `(0, 1)`.
pub fn init_with(net: &mut Network, seed: u64, cfg: InitConfig) {
    assert!(
        cfg.zero_min > 0.0 && cfg.zero_max < 1.0 && cfg.zero_min <= cfg.zero_max,
        "target zero band ({}, {}) must sit inside (0, 1)",
        cfg.zero_min,
        cfg.zero_max
    );
    he_uniform(net, seed);
    calibrate_sparsity(net, seed, cfg);
}

/// A deterministic, spatially smooth probe image in `[0, 1]` (natural
/// images are dominated by low frequencies; see
/// `fast_bcnn::synth_input`).
fn probe_input(shape: fbcnn_tensor::Shape, seed: u64) -> Tensor {
    let grid = 4usize;
    let hash = |a: u64, b: u64, c: u64| -> f32 {
        let mut z = seed
            .wrapping_add(a << 40)
            .wrapping_add(b << 20)
            .wrapping_add(c);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        (z % 997) as f32 / 997.0
    };
    let cell_h = (shape.height() as f32 / grid as f32).max(1.0);
    let cell_w = (shape.width() as f32 / grid as f32).max(1.0);
    Tensor::from_fn(shape, |c, r, col| {
        let fy = r as f32 / cell_h;
        let fx = col as f32 / cell_w;
        let (y0, x0) = (fy.floor(), fx.floor());
        let (ty, tx) = (fy - y0, fx - x0);
        let corner = |dy: u64, dx: u64| hash(c as u64, y0 as u64 + dy, x0 as u64 + dx);
        let smooth = corner(0, 0) * (1.0 - ty) * (1.0 - tx)
            + corner(0, 1) * (1.0 - ty) * tx
            + corner(1, 0) * ty * (1.0 - tx)
            + corner(1, 1) * ty * tx;
        let gradient = ((r + col) % 13) as f32 / 13.0;
        let texture = hash(c as u64 ^ 0xF00D, r as u64, col as u64);
        (0.7 * smooth + 0.2 * gradient + 0.1 * texture).clamp(0.0, 1.0)
    })
}

/// Runs one probe pass and shifts every conv kernel's bias so its zero
/// fraction meets its target. Processes nodes in topological order so
/// later layers see calibrated inputs.
fn calibrate_sparsity(net: &mut Network, seed: u64, cfg: InitConfig) {
    let input = probe_input(net.input_shape(), seed ^ 0x05EE_DCAB);
    let n_nodes = net.len();
    let mut outputs: Vec<Option<Tensor>> = vec![None; n_nodes];
    for idx in 0..n_nodes {
        // Collect immutable info first to satisfy the borrow checker.
        let (op_is_conv, in_ids, shape) = {
            let node = net.node(crate::NodeId(idx));
            (
                node.layer().is_some_and(Layer::is_conv),
                node.inputs().to_vec(),
                net.shape(crate::NodeId(idx)),
            )
        };
        let out = if idx == 0 {
            input.clone()
        } else if op_is_conv {
            let upstream = outputs[in_ids[0].0].clone().expect("topological order");
            let layer_target = {
                let mut rng = rng_for(seed ^ 0xCA1, idx, usize::MAX);
                rng.gen_range(cfg.zero_min..cfg.zero_max.max(cfg.zero_min + f32::EPSILON))
            };
            let node = net.node_mut(crate::NodeId(idx));
            let Op::Layer(Layer::Conv(conv)) = node.op_mut() else {
                unreachable!("checked above");
            };
            let mut out = Tensor::zeros(shape);
            let plane_len = shape.plane();
            let mut preact = vec![0.0f32; plane_len];
            for m in 0..conv.out_channels() {
                let mut rng = rng_for(seed ^ 0xCA1, idx, m);
                let jitter = if cfg.kernel_jitter > 0.0 {
                    rng.gen_range(-cfg.kernel_jitter..cfg.kernel_jitter)
                } else {
                    0.0
                };
                let target = (layer_target + jitter).clamp(0.05, 0.95);
                conv.forward_channel_preactivation(&upstream, m, &mut preact);
                // Find the value whose subtraction zeroes `target` of the
                // plane.
                let mut sorted = preact.clone();
                sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite activations"));
                let q_idx = ((target * plane_len as f32) as usize).min(plane_len - 1);
                let threshold = sorted[q_idx];
                conv.bias_mut()[m] -= threshold;
                // Materialize the calibrated output.
                let out_plane = out.channel_mut(m);
                for (o, &p) in out_plane.iter_mut().zip(&preact) {
                    let v = p - threshold;
                    *o = if conv.has_relu() && v < 0.0 { 0.0 } else { v };
                }
            }
            out
        } else {
            let node = net.node(crate::NodeId(idx));
            let ins: Vec<&Tensor> = in_ids
                .iter()
                .map(|i| outputs[i.0].as_ref().expect("topological order"))
                .collect();
            net.eval_node(node, &ins)
        };
        outputs[idx] = Some(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Dense, NetworkBuilder, Pool2d, PoolKind};
    use fbcnn_tensor::Shape;

    fn build_net() -> Network {
        let mut b = NetworkBuilder::new(Shape::new(3, 12, 12));
        let x = b.input();
        let c1 = b.layer(x, Conv2d::new(3, 16, 3, 1, 1, true), "c1").unwrap();
        let p = b.layer(c1, Pool2d::new(PoolKind::Max, 2, 2), "p").unwrap();
        let c2 = b
            .layer(p, Conv2d::new(16, 32, 3, 1, 1, true), "c2")
            .unwrap();
        b.layer(c2, Dense::new(32 * 6 * 6, 10, false), "fc")
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn init_is_deterministic() {
        let mut a = build_net();
        let mut b = build_net();
        calibrated(&mut a, 42);
        calibrated(&mut b, 42);
        assert_eq!(a, b);
        let mut c = build_net();
        calibrated(&mut c, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn calibrated_hits_the_target_band_on_the_probe() {
        let mut net = build_net();
        let cfg = InitConfig::default();
        init_with(&mut net, 7, cfg);
        let input = probe_input(net.input_shape(), 7 ^ 0x05EE_DCAB);
        let acts = net.forward_full(&input);
        for &conv_id in &net.conv_nodes() {
            let t = &acts[conv_id.0];
            let plane = t.shape().plane();
            for m in 0..t.shape().channels() {
                let zeros = t.channel(m).iter().filter(|&&v| v == 0.0).count();
                let frac = zeros as f32 / plane as f32;
                assert!(
                    (cfg.zero_min - cfg.kernel_jitter - 0.05
                        ..=cfg.zero_max + cfg.kernel_jitter + 0.05)
                        .contains(&frac),
                    "kernel {m} of {conv_id:?} off target: {frac}"
                );
            }
        }
    }

    #[test]
    fn calibration_generalizes_to_other_inputs() {
        let mut net = build_net();
        calibrated(&mut net, 11);
        // A different (but similarly distributed) input should keep zero
        // fractions in a realistic regime.
        let input = Tensor::from_fn(net.input_shape(), |ch, r, c| {
            (((ch * 5 + 3 * r + 7 * c) % 13) as f32 / 13.0).max(0.0)
        });
        let acts = net.forward_full(&input);
        for &conv_id in &net.conv_nodes() {
            let zero_frac = acts[conv_id.0].count_zero() as f64 / acts[conv_id.0].len() as f64;
            assert!(
                (0.25..0.9).contains(&zero_frac),
                "zero fraction {zero_frac} out of regime for {conv_id:?}"
            );
        }
    }

    #[test]
    fn per_channel_spread_is_tight() {
        let mut net = build_net();
        calibrated(&mut net, 3);
        let input = probe_input(net.input_shape(), 3 ^ 0x05EE_DCAB);
        let acts = net.forward_full(&input);
        let conv_id = net.conv_nodes()[1];
        let t = &acts[conv_id.0];
        let plane = t.shape().plane() as f32;
        let fracs: Vec<f32> = (0..t.shape().channels())
            .map(|m| t.channel(m).iter().filter(|&&v| v == 0.0).count() as f32 / plane)
            .collect();
        let min = fracs.iter().cloned().fold(1.0f32, f32::min);
        let max = fracs.iter().cloned().fold(0.0f32, f32::max);
        assert!(
            max - min < 0.35,
            "per-channel zero-fraction spread too wide: {min}..{max}"
        );
    }

    #[test]
    fn he_uniform_is_roughly_zero_mean() {
        let mut net = build_net();
        he_uniform(&mut net, 1);
        for node in net.nodes() {
            if let Some(conv) = node.layer().and_then(Layer::as_conv) {
                let mean: f32 = conv.weights().iter().sum::<f32>() / conv.weights().len() as f32;
                assert!(mean.abs() < 0.05, "mean {mean} too far from zero");
            }
        }
    }

    #[test]
    #[should_panic(expected = "target zero band")]
    fn degenerate_band_rejected() {
        let mut net = build_net();
        init_with(
            &mut net,
            0,
            InitConfig {
                zero_min: 0.0,
                zero_max: 0.5,
                kernel_jitter: 0.0,
            },
        );
    }
}
