use crate::workspace::Workspace;
use fbcnn_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// Column-block width (in output positions) for the blocked im2col kernel.
/// 256 f32 columns keep one output block plus one patch row well inside L1
/// while amortizing the per-block loop overhead.
const COL_BLOCK: usize = 256;

/// A 2-D convolution layer with optional fused ReLU.
///
/// Weight layout is `[m][n][i][j]` — output channel, input channel, kernel
/// row, kernel column — matching the paper's six convolution dimensions
/// `<M, N, R, C, I, J>`. The accelerator models in `fbcnn-accel` and the
/// prediction machinery in `fbcnn-predictor` address weights through
/// [`Conv2d::weight`] and [`Conv2d::kernel`].
///
/// The fused ReLU mirrors the hardware: the paper's PE applies ReLU before
/// the output buffer, and the *zero neuron* concept is defined on the
/// post-ReLU value.
///
/// # Examples
///
/// ```
/// use fbcnn_nn::Conv2d;
/// use fbcnn_tensor::{Shape, Tensor};
///
/// let mut conv = Conv2d::new(1, 1, 3, 1, 1, false);
/// conv.set_weight(0, 0, 1, 1, 2.0); // identity kernel scaled by 2
/// let input = Tensor::full(Shape::new(1, 4, 4), 1.5);
/// let out = conv.forward(&input);
/// assert_eq!(out[(0, 2, 2)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    k: usize,
    stride: usize,
    pad: usize,
    relu: bool,
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Conv2d {
    /// Creates a zero-initialized convolution.
    ///
    /// # Panics
    ///
    /// Panics if any of `in_channels`, `out_channels`, `k` or `stride` is
    /// zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        k: usize,
        stride: usize,
        pad: usize,
        relu: bool,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && k > 0 && stride > 0,
            "convolution dimensions must be non-zero"
        );
        Self {
            in_channels,
            out_channels,
            k,
            stride,
            pad,
            relu,
            weights: vec![0.0; out_channels * in_channels * k * k],
            bias: vec![0.0; out_channels],
        }
    }

    /// Number of input channels (`N`).
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels / kernels (`M`).
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel size (`K`).
    pub fn kernel_size(&self) -> usize {
        self.k
    }

    /// Convolution stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Symmetric zero padding.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Whether ReLU is fused into this layer.
    pub fn has_relu(&self) -> bool {
        self.relu
    }

    /// The shape produced for a given input shape.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count differs from
    /// [`Conv2d::in_channels`] or the kernel does not fit.
    pub fn output_shape(&self, input: Shape) -> Shape {
        assert_eq!(
            input.channels(),
            self.in_channels,
            "conv expects {} input channels, got {input}",
            self.in_channels
        );
        input.conv_output(self.out_channels, self.k, self.stride, self.pad)
    }

    /// Multiply-accumulates needed for one output neuron (`K² · N`).
    pub fn macs_per_neuron(&self) -> usize {
        self.k * self.k * self.in_channels
    }

    #[inline]
    fn widx(&self, m: usize, n: usize, i: usize, j: usize) -> usize {
        ((m * self.in_channels + n) * self.k + i) * self.k + j
    }

    /// Weight at `[m][n][i][j]`.
    #[inline]
    pub fn weight(&self, m: usize, n: usize, i: usize, j: usize) -> f32 {
        self.weights[self.widx(m, n, i, j)]
    }

    /// Sets the weight at `[m][n][i][j]`.
    #[inline]
    pub fn set_weight(&mut self, m: usize, n: usize, i: usize, j: usize, v: f32) {
        let idx = self.widx(m, n, i, j);
        self.weights[idx] = v;
    }

    /// The full kernel for output channel `m`, laid out `[n][i][j]`.
    pub fn kernel(&self, m: usize) -> &[f32] {
        let stride = self.in_channels * self.k * self.k;
        &self.weights[m * stride..(m + 1) * stride]
    }

    /// All weights, laid out `[m][n][i][j]`.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Mutable access to all weights (used by the trainer and by
    /// [`crate::init`]).
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// Bias per output channel.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable access to the bias vector.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Simultaneous mutable access to `(weights, bias)` — used by the
    /// trainer's parameter update.
    pub fn params_mut(&mut self) -> (&mut [f32], &mut [f32]) {
        (&mut self.weights, &mut self.bias)
    }

    /// Runs the convolution (and fused ReLU, if enabled).
    ///
    /// # Panics
    ///
    /// Panics if the input shape is incompatible (see
    /// [`Conv2d::output_shape`]).
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let out_shape = self.output_shape(input.shape());
        let mut out = Tensor::zeros(out_shape);
        for m in 0..self.out_channels {
            self.forward_channel_into(input, m, out.channel_mut(m));
        }
        out
    }

    /// Computes one output channel `m` into `plane` (length `R·C`)
    /// *without* the fused ReLU — the pre-activation values.
    ///
    /// Used by the activation-calibrated initialization in
    /// [`crate::init`], which needs the pre-ReLU distribution to place
    /// each kernel's bias.
    ///
    /// # Panics
    ///
    /// Panics if `plane.len()` is not the output plane size.
    pub fn forward_channel_preactivation(&self, input: &Tensor, m: usize, plane: &mut [f32]) {
        self.forward_channel_impl(input, m, plane, false);
    }

    /// Computes one output channel `m` into `plane` (length `R·C`).
    ///
    /// Exposed so the skipping inference in `fbcnn-predictor` can compute
    /// individual kept neurons with identical arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `plane.len()` is not the output plane size.
    pub fn forward_channel_into(&self, input: &Tensor, m: usize, plane: &mut [f32]) {
        self.forward_channel_impl(input, m, plane, self.relu);
    }

    fn forward_channel_impl(&self, input: &Tensor, m: usize, plane: &mut [f32], relu: bool) {
        let in_shape = input.shape();
        let out_shape = self.output_shape(in_shape);
        assert_eq!(plane.len(), out_shape.plane(), "output plane size mismatch");

        plane.fill(self.bias[m]);
        let (out_h, out_w) = (out_shape.height(), out_shape.width());
        let (in_h, in_w) = (in_shape.height(), in_shape.width());
        for n in 0..self.in_channels {
            let in_plane = input.channel(n);
            for i in 0..self.k {
                for j in 0..self.k {
                    let w = self.weight(m, n, i, j);
                    if w == 0.0 {
                        continue;
                    }
                    for r in 0..out_h {
                        let in_r = (r * self.stride + i) as isize - self.pad as isize;
                        if in_r < 0 || in_r as usize >= in_h {
                            continue;
                        }
                        let in_row = &in_plane[in_r as usize * in_w..(in_r as usize + 1) * in_w];
                        let out_row = &mut plane[r * out_w..(r + 1) * out_w];
                        for (c, out_v) in out_row.iter_mut().enumerate() {
                            let in_c = (c * self.stride + j) as isize - self.pad as isize;
                            if in_c < 0 || in_c as usize >= in_w {
                                continue;
                            }
                            *out_v += w * in_row[in_c as usize];
                        }
                    }
                }
            }
        }
        if relu {
            for v in plane.iter_mut() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
    }

    /// Runs the convolution through the im2col + cache-blocked kernel,
    /// reusing the patch buffer in `ws` across calls.
    ///
    /// Produces output equal (`==`, i.e. up to the sign of zero) to
    /// [`Conv2d::forward`]: the patch matrix zero-fills out-of-bounds
    /// positions, so padding contributes `w * 0.0` terms that leave every
    /// accumulator unchanged, and all nonzero terms are accumulated in the
    /// same `(n, i, j)`-ascending order as the naive loop, bias first and
    /// ReLU last.
    ///
    /// # Panics
    ///
    /// Panics if the input shape is incompatible (see
    /// [`Conv2d::output_shape`]).
    pub fn forward_ws(&self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        let out_shape = self.output_shape(input.shape());
        let plane = out_shape.plane();
        let patches = ws.im2col(self.macs_per_neuron() * plane);
        self.fill_im2col(input, out_shape, patches);
        let mut out = Tensor::zeros(out_shape);
        for m in 0..self.out_channels {
            self.blocked_channel(patches, m, out.channel_mut(m), self.relu);
        }
        out
    }

    /// Runs the convolution with output channels fanned out over `threads`
    /// worker threads (capped at [`Conv2d::out_channels`]).
    ///
    /// The im2col patch matrix is built once in `ws` and shared read-only
    /// by all workers; each worker owns a disjoint chunk of output planes,
    /// so the result is identical to [`Conv2d::forward_ws`] regardless of
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero, if a worker thread panics, or if the
    /// input shape is incompatible (see [`Conv2d::output_shape`]).
    pub fn forward_parallel(&self, input: &Tensor, threads: usize, ws: &mut Workspace) -> Tensor {
        assert!(threads > 0, "thread count must be non-zero");
        let out_shape = self.output_shape(input.shape());
        let plane = out_shape.plane();
        let patches = ws.im2col(self.macs_per_neuron() * plane);
        self.fill_im2col(input, out_shape, patches);
        let mut out = Tensor::zeros(out_shape);
        let threads = threads.min(self.out_channels);
        if threads == 1 {
            for m in 0..self.out_channels {
                self.blocked_channel(patches, m, out.channel_mut(m), self.relu);
            }
            return out;
        }
        let chunk = self.out_channels.div_ceil(threads);
        let patches = &*patches;
        crossbeam::thread::scope(|scope| {
            for (worker, planes) in out.as_mut_slice().chunks_mut(chunk * plane).enumerate() {
                let first_m = worker * chunk;
                scope.spawn(move |_| {
                    for (dm, out_plane) in planes.chunks_mut(plane).enumerate() {
                        self.blocked_channel(patches, first_m + dm, out_plane, self.relu);
                    }
                });
            }
        })
        .expect("conv worker thread panicked");
        out
    }

    /// Lowers `input` into the patch matrix: row `kk = (n·K + i)·K + j`
    /// holds, for each output position `(r, c)`, the input value that
    /// weight `kk` multiplies — `0.0` where the window hangs over the
    /// border. Row layout matches [`Conv2d::kernel`], column layout matches
    /// the output plane.
    fn fill_im2col(&self, input: &Tensor, out_shape: Shape, patches: &mut [f32]) {
        let in_shape = input.shape();
        let (in_h, in_w) = (in_shape.height(), in_shape.width());
        let (out_h, out_w) = (out_shape.height(), out_shape.width());
        let plane = out_shape.plane();
        let pad = self.pad as isize;
        for n in 0..self.in_channels {
            let in_plane = input.channel(n);
            for i in 0..self.k {
                for j in 0..self.k {
                    let kk = (n * self.k + i) * self.k + j;
                    let row = &mut patches[kk * plane..(kk + 1) * plane];
                    for r in 0..out_h {
                        let in_r = (r * self.stride + i) as isize - pad;
                        let dst = &mut row[r * out_w..(r + 1) * out_w];
                        if in_r < 0 || in_r as usize >= in_h {
                            dst.fill(0.0);
                            continue;
                        }
                        let in_row = &in_plane[in_r as usize * in_w..(in_r as usize + 1) * in_w];
                        if self.stride == 1 {
                            // in_c = c + j - pad is valid for
                            // c ∈ [pad - j, in_w + pad - j) ∩ [0, out_w).
                            let lo = ((pad - j as isize).max(0) as usize).min(out_w);
                            let hi = ((in_w as isize + pad - j as isize).max(lo as isize) as usize)
                                .min(out_w);
                            dst[..lo].fill(0.0);
                            dst[hi..].fill(0.0);
                            let src = (lo + j) - self.pad;
                            dst[lo..hi].copy_from_slice(&in_row[src..src + (hi - lo)]);
                        } else {
                            for (c, v) in dst.iter_mut().enumerate() {
                                let in_c = (c * self.stride + j) as isize - pad;
                                *v = if in_c < 0 || in_c as usize >= in_w {
                                    0.0
                                } else {
                                    in_row[in_c as usize]
                                };
                            }
                        }
                    }
                }
            }
        }
    }

    /// Computes output channel `m` from the patch matrix, walking the
    /// output plane in [`COL_BLOCK`]-column tiles so the accumulator block
    /// stays cache-resident while the kernel's rows stream through it.
    /// Per output element the accumulation order is identical to
    /// [`Conv2d::forward`]: bias, then weights in `kk`-ascending order
    /// (zeros skipped), then ReLU.
    fn blocked_channel(&self, patches: &[f32], m: usize, plane: &mut [f32], relu: bool) {
        let kernel = self.kernel(m);
        let cols = plane.len();
        debug_assert_eq!(patches.len(), kernel.len() * cols);
        plane.fill(self.bias[m]);
        let mut start = 0;
        while start < cols {
            let end = (start + COL_BLOCK).min(cols);
            let out_block = &mut plane[start..end];
            for (kk, &w) in kernel.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let patch_row = &patches[kk * cols + start..kk * cols + end];
                for (acc, &x) in out_block.iter_mut().zip(patch_row) {
                    *acc += w * x;
                }
            }
            start = end;
        }
        if relu {
            for v in plane.iter_mut() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
    }

    /// Computes a single output neuron `(m, r, c)` with the same
    /// arithmetic as [`Conv2d::forward`] — the reference the skipping
    /// inference must reproduce bit-for-bit.
    pub fn forward_neuron(&self, input: &Tensor, m: usize, r: usize, c: usize) -> f32 {
        let in_shape = input.shape();
        let (in_h, in_w) = (in_shape.height(), in_shape.width());
        let mut acc = self.bias[m];
        for n in 0..self.in_channels {
            let in_plane = input.channel(n);
            for i in 0..self.k {
                let in_r = (r * self.stride + i) as isize - self.pad as isize;
                if in_r < 0 || in_r as usize >= in_h {
                    continue;
                }
                for j in 0..self.k {
                    let in_c = (c * self.stride + j) as isize - self.pad as isize;
                    if in_c < 0 || in_c as usize >= in_w {
                        continue;
                    }
                    acc += self.weight(m, n, i, j) * in_plane[in_r as usize * in_w + in_c as usize];
                }
            }
        }
        if self.relu && acc < 0.0 {
            0.0
        } else {
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_preserves_input() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, false);
        conv.set_weight(0, 0, 1, 1, 1.0);
        let input = Tensor::from_fn(Shape::new(1, 3, 3), |_, r, c| (r * 3 + c) as f32);
        let out = conv.forward(&input);
        assert_eq!(out, input);
    }

    #[test]
    fn padding_zeros_at_border() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, false);
        // Sum-of-window kernel.
        for i in 0..3 {
            for j in 0..3 {
                conv.set_weight(0, 0, i, j, 1.0);
            }
        }
        let input = Tensor::full(Shape::new(1, 3, 3), 1.0);
        let out = conv.forward(&input);
        assert_eq!(out[(0, 1, 1)], 9.0); // full window
        assert_eq!(out[(0, 0, 0)], 4.0); // corner sees 2x2
        assert_eq!(out[(0, 0, 1)], 6.0); // edge sees 2x3
    }

    #[test]
    fn stride_two_subsamples() {
        let mut conv = Conv2d::new(1, 1, 1, 2, 0, false);
        conv.set_weight(0, 0, 0, 0, 1.0);
        let input = Tensor::from_fn(Shape::new(1, 4, 4), |_, r, c| (r * 4 + c) as f32);
        let out = conv.forward(&input);
        assert_eq!(out.shape(), Shape::new(1, 2, 2));
        assert_eq!(out[(0, 0, 0)], 0.0);
        assert_eq!(out[(0, 0, 1)], 2.0);
        assert_eq!(out[(0, 1, 0)], 8.0);
        assert_eq!(out[(0, 1, 1)], 10.0);
    }

    #[test]
    fn multi_channel_sums_contributions() {
        let mut conv = Conv2d::new(2, 1, 1, 1, 0, false);
        conv.set_weight(0, 0, 0, 0, 1.0);
        conv.set_weight(0, 1, 0, 0, 10.0);
        let input = Tensor::from_fn(Shape::new(2, 2, 2), |ch, _, _| (ch + 1) as f32);
        let out = conv.forward(&input);
        assert!(out.iter().all(|&v| v == 21.0));
    }

    #[test]
    fn relu_clamps_output() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, true);
        conv.set_weight(0, 0, 0, 0, -1.0);
        let input = Tensor::full(Shape::new(1, 2, 2), 3.0);
        let out = conv.forward(&input);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bias_is_applied_per_channel() {
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, false);
        conv.bias_mut()[0] = 1.0;
        conv.bias_mut()[1] = -2.0;
        let input = Tensor::zeros(Shape::new(1, 2, 2));
        let out = conv.forward(&input);
        assert!(out.channel(0).iter().all(|&v| v == 1.0));
        assert!(out.channel(1).iter().all(|&v| v == -2.0));
    }

    #[test]
    fn forward_neuron_matches_forward() {
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, true);
        // Deterministic pseudo-random weights.
        let mut state = 11u64;
        for v in conv.weights_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *v = ((state >> 33) as f32 / u32::MAX as f32 * 2.0 - 1.0) * 0.5;
        }
        let input = Tensor::from_fn(Shape::new(3, 5, 5), |ch, r, c| {
            ((ch * 31 + r * 7 + c * 3) % 9) as f32 / 4.0
        });
        let full = conv.forward(&input);
        let out_shape = full.shape();
        for (m, r, c) in out_shape.coords() {
            assert_eq!(conv.forward_neuron(&input, m, r, c), full[(m, r, c)]);
        }
    }

    fn seeded_conv(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        relu: bool,
        seed: u64,
    ) -> Conv2d {
        let mut conv = Conv2d::new(in_c, out_c, k, stride, pad, relu);
        let mut state = seed;
        for v in conv.weights_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            // ~25% exact zeros to exercise the w == 0.0 skip.
            *v = if state >> 62 == 0 {
                0.0
            } else {
                ((state >> 33) as f32 / u32::MAX as f32 * 2.0 - 1.0) * 0.5
            };
        }
        for b in conv.bias_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 33) as f32 / u32::MAX as f32 - 0.5;
        }
        conv
    }

    #[test]
    fn forward_ws_matches_forward_across_geometries() {
        // (in_c, out_c, k, stride, pad, dim) covering LeNet-ish shapes,
        // stride > 1, pad larger than needed, and 1x1 kernels.
        let cases = [
            (1, 1, 1, 1, 0, 4),
            (1, 6, 5, 1, 2, 14),
            (3, 4, 3, 1, 1, 6),
            (2, 3, 5, 2, 2, 9),
            (6, 16, 5, 1, 0, 14),
            (4, 2, 3, 3, 1, 10),
        ];
        let mut ws = Workspace::new();
        for (idx, &(in_c, out_c, k, stride, pad, dim)) in cases.iter().enumerate() {
            let conv = seeded_conv(
                in_c,
                out_c,
                k,
                stride,
                pad,
                idx.is_multiple_of(2),
                idx as u64 + 3,
            );
            let input = Tensor::from_fn(Shape::new(in_c, dim, dim), |ch, r, c| {
                ((ch * 31 + r * 7 + c * 3) % 11) as f32 / 5.0 - 1.0
            });
            assert_eq!(
                conv.forward_ws(&input, &mut ws),
                conv.forward(&input),
                "geometry {:?} diverged",
                (in_c, out_c, k, stride, pad, dim)
            );
        }
        assert!(ws.im2col_capacity() > 0);
    }

    #[test]
    fn forward_parallel_matches_forward_for_any_thread_count() {
        let conv = seeded_conv(3, 8, 3, 1, 1, true, 42);
        let input = Tensor::from_fn(Shape::new(3, 9, 9), |ch, r, c| {
            ((ch * 13 + r * 5 + c) % 7) as f32 / 3.0 - 1.0
        });
        let reference = conv.forward(&input);
        let mut ws = Workspace::new();
        for threads in [1, 2, 3, 8, 16] {
            assert_eq!(
                conv.forward_parallel(&input, threads, &mut ws),
                reference,
                "threads={threads} diverged"
            );
        }
    }

    #[test]
    fn workspace_is_reused_across_layers() {
        let big = seeded_conv(2, 2, 3, 1, 1, false, 7);
        let small = seeded_conv(1, 1, 1, 1, 0, false, 8);
        let mut ws = Workspace::new();
        let _ = big.forward_ws(&Tensor::full(Shape::new(2, 8, 8), 1.0), &mut ws);
        let cap = ws.im2col_capacity();
        let _ = small.forward_ws(&Tensor::full(Shape::new(1, 4, 4), 1.0), &mut ws);
        assert_eq!(ws.im2col_capacity(), cap, "smaller layer must not shrink");
    }

    #[test]
    #[should_panic(expected = "thread count must be non-zero")]
    fn zero_threads_rejected() {
        let conv = Conv2d::new(1, 1, 1, 1, 0, false);
        let _ = conv.forward_parallel(
            &Tensor::zeros(Shape::new(1, 2, 2)),
            0,
            &mut Workspace::new(),
        );
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn wrong_channel_count_rejected() {
        let conv = Conv2d::new(3, 1, 3, 1, 1, false);
        let input = Tensor::zeros(Shape::new(2, 8, 8));
        let _ = conv.forward(&input);
    }
}
