use fbcnn_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// The pooling reduction applied over each window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Maximum over the window (the common case in all three models).
    Max,
    /// Arithmetic mean over the window (GoogLeNet's final global pool).
    Avg,
}

/// A 2-D pooling layer.
///
/// Pooling interacts with the skipping machinery in one specific way: when
/// a dropout layer's mask must be *pooled* before it describes the inputs
/// of the next convolution, the paper's mask-pooling unit emits a dropped
/// bit only when **all** bits in the window are dropped (§V-B2). That
/// logic lives in `fbcnn-bayes::mask`; this type only reduces values.
///
/// # Examples
///
/// ```
/// use fbcnn_nn::{Pool2d, PoolKind};
/// use fbcnn_tensor::{Shape, Tensor};
///
/// let pool = Pool2d::new(PoolKind::Max, 2, 2);
/// let input = Tensor::from_fn(Shape::new(1, 2, 2), |_, r, c| (r * 2 + c) as f32);
/// let out = pool.forward(&input);
/// assert_eq!(out[(0, 0, 0)], 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pool2d {
    kind: PoolKind,
    k: usize,
    stride: usize,
    pad: usize,
}

impl Pool2d {
    /// Creates a pooling layer with window `k×k` and the given stride.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `stride` is zero.
    pub fn new(kind: PoolKind, k: usize, stride: usize) -> Self {
        assert!(
            k > 0 && stride > 0,
            "pool window and stride must be non-zero"
        );
        Self {
            kind,
            k,
            stride,
            pad: 0,
        }
    }

    /// Adds symmetric padding (Inception's same-size 3×3/1 branch pool).
    ///
    /// Out-of-bounds positions are ignored: max pooling takes the max of
    /// in-bounds values, average pooling divides by the in-bounds count.
    ///
    /// # Panics
    ///
    /// Panics if `pad >= k` (the window would be entirely padding).
    pub fn with_pad(mut self, pad: usize) -> Self {
        assert!(
            pad < self.k,
            "pad {pad} must be smaller than window {}",
            self.k
        );
        self.pad = pad;
        self
    }

    /// Symmetric padding.
    pub fn padding(&self) -> usize {
        self.pad
    }

    /// The reduction kind.
    pub fn kind(&self) -> PoolKind {
        self.kind
    }

    /// Window size.
    pub fn window(&self) -> usize {
        self.k
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The shape produced for a given input shape.
    ///
    /// # Panics
    ///
    /// Panics if the window (after padding) does not fit in the input.
    pub fn output_shape(&self, input: Shape) -> Shape {
        let h = input.height() + 2 * self.pad;
        let w = input.width() + 2 * self.pad;
        assert!(
            h >= self.k && w >= self.k,
            "pool window {} does not fit input {input} with pad {}",
            self.k,
            self.pad
        );
        Shape::new(
            input.channels(),
            (h - self.k) / self.stride + 1,
            (w - self.k) / self.stride + 1,
        )
    }

    /// The in-bounds input window for output position `(r, c)`, as
    /// `(row_range, col_range)` over the input plane.
    #[inline]
    fn in_bounds_window(
        &self,
        r: usize,
        c: usize,
        in_h: usize,
        in_w: usize,
    ) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let r0 = (r * self.stride) as isize - self.pad as isize;
        let c0 = (c * self.stride) as isize - self.pad as isize;
        let rs = r0.max(0) as usize..((r0 + self.k as isize).min(in_h as isize)) as usize;
        let cs = c0.max(0) as usize..((c0 + self.k as isize).min(in_w as isize)) as usize;
        (rs, cs)
    }

    /// Runs the pooling reduction.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let in_shape = input.shape();
        let out_shape = self.output_shape(in_shape);
        let (out_h, out_w) = (out_shape.height(), out_shape.width());
        let (in_h, in_w) = (in_shape.height(), in_shape.width());
        let mut out = Tensor::zeros(out_shape);
        for ch in 0..in_shape.channels() {
            let in_plane = input.channel(ch);
            let out_plane = out.channel_mut(ch);
            for r in 0..out_h {
                for c in 0..out_w {
                    let (rs, cs) = self.in_bounds_window(r, c, in_h, in_w);
                    let mut acc = match self.kind {
                        PoolKind::Max => f32::NEG_INFINITY,
                        PoolKind::Avg => 0.0,
                    };
                    let mut count = 0usize;
                    for i in rs.clone() {
                        for j in cs.clone() {
                            let v = in_plane[i * in_w + j];
                            match self.kind {
                                PoolKind::Max => acc = acc.max(v),
                                PoolKind::Avg => acc += v,
                            }
                            count += 1;
                        }
                    }
                    if self.kind == PoolKind::Avg {
                        acc /= count as f32;
                    }
                    out_plane[r * out_w + c] = acc;
                }
            }
        }
        out
    }

    /// Like [`Pool2d::forward`] but also reports, for max pooling, the
    /// linear input index chosen per output element (used by the trainer's
    /// backward pass).
    pub fn forward_with_argmax(&self, input: &Tensor) -> (Tensor, Vec<usize>) {
        let in_shape = input.shape();
        let out_shape = self.output_shape(in_shape);
        let (out_h, out_w) = (out_shape.height(), out_shape.width());
        let (in_h, in_w) = (in_shape.height(), in_shape.width());
        let plane = in_shape.plane();
        let mut out = Tensor::zeros(out_shape);
        let mut arg = vec![0usize; out_shape.len()];
        for ch in 0..in_shape.channels() {
            let in_plane = input.channel(ch);
            for r in 0..out_h {
                for c in 0..out_w {
                    let (rs, cs) = self.in_bounds_window(r, c, in_h, in_w);
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for i in rs.clone() {
                        for j in cs.clone() {
                            let idx = i * in_w + j;
                            if in_plane[idx] > best {
                                best = in_plane[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let out_idx = out_shape.index(ch, r, c);
                    out.set(out_idx, best);
                    arg[out_idx] = ch * plane + best_idx;
                }
            }
        }
        (out, arg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_2x2() {
        let pool = Pool2d::new(PoolKind::Max, 2, 2);
        let input = Tensor::from_fn(Shape::new(1, 4, 4), |_, r, c| (r * 4 + c) as f32);
        let out = pool.forward(&input);
        assert_eq!(out.shape(), Shape::new(1, 2, 2));
        assert_eq!(out.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_2x2() {
        let pool = Pool2d::new(PoolKind::Avg, 2, 2);
        let input = Tensor::from_fn(Shape::new(1, 2, 2), |_, r, c| (r * 2 + c) as f32);
        let out = pool.forward(&input);
        assert_eq!(out.as_slice(), &[1.5]);
    }

    #[test]
    fn global_avg_as_full_window() {
        let pool = Pool2d::new(PoolKind::Avg, 4, 4);
        let input = Tensor::full(Shape::new(3, 4, 4), 2.0);
        let out = pool.forward(&input);
        assert_eq!(out.shape(), Shape::new(3, 1, 1));
        assert!(out.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn overlapping_stride_one() {
        let pool = Pool2d::new(PoolKind::Max, 3, 1);
        let input = Tensor::from_fn(Shape::new(1, 3, 4), |_, r, c| (r + c) as f32);
        let out = pool.forward(&input);
        assert_eq!(out.shape(), Shape::new(1, 1, 2));
        assert_eq!(out.as_slice(), &[4.0, 5.0]);
    }

    #[test]
    fn argmax_points_at_chosen_input() {
        let pool = Pool2d::new(PoolKind::Max, 2, 2);
        let input = Tensor::from_fn(Shape::new(2, 4, 4), |ch, r, c| {
            ((ch * 17 + r * 5 + c * 3) % 11) as f32
        });
        let (out, arg) = pool.forward_with_argmax(&input);
        for (idx, &src) in arg.iter().enumerate() {
            assert_eq!(out.at(idx), input.at(src));
        }
        // Plain forward agrees.
        assert_eq!(out, pool.forward(&input));
    }

    #[test]
    fn padded_same_size_max_pool() {
        // Inception branch pool: 3x3 window, stride 1, pad 1 keeps size.
        let pool = Pool2d::new(PoolKind::Max, 3, 1).with_pad(1);
        let input = Tensor::from_fn(Shape::new(1, 3, 3), |_, r, c| (r * 3 + c) as f32);
        let out = pool.forward(&input);
        assert_eq!(out.shape(), Shape::new(1, 3, 3));
        assert_eq!(out[(0, 0, 0)], 4.0); // max of in-bounds 2x2 corner
        assert_eq!(out[(0, 2, 2)], 8.0);
        assert_eq!(out[(0, 1, 1)], 8.0);
    }

    #[test]
    fn padded_avg_divides_by_inbounds_count() {
        let pool = Pool2d::new(PoolKind::Avg, 3, 1).with_pad(1);
        let input = Tensor::full(Shape::new(1, 3, 3), 6.0);
        let out = pool.forward(&input);
        // Every window averages only in-bounds values, so all outputs are 6.
        assert!(out.iter().all(|&v| v == 6.0));
    }

    #[test]
    #[should_panic(expected = "smaller than window")]
    fn pad_must_be_smaller_than_window() {
        let _ = Pool2d::new(PoolKind::Max, 2, 2).with_pad(2);
    }

    #[test]
    fn channels_pool_independently() {
        let pool = Pool2d::new(PoolKind::Max, 2, 2);
        let input = Tensor::from_fn(Shape::new(2, 2, 2), |ch, r, c| {
            (ch * 100 + r * 2 + c) as f32
        });
        let out = pool.forward(&input);
        assert_eq!(out.channel(0), &[3.0]);
        assert_eq!(out.channel(1), &[103.0]);
    }
}
