//! Reusable scratch buffers for the convolution hot path.

/// Scratch space threaded through [`crate::Conv2d::forward_ws`] (and, one
/// level up, MC-dropout sample passes) so repeated forward passes reuse
/// their im2col patch buffer instead of reallocating it per call.
///
/// One `Workspace` belongs to one thread at a time; parallel runners keep
/// one per worker.
///
/// # Examples
///
/// ```
/// use fbcnn_nn::{Conv2d, Workspace};
/// use fbcnn_tensor::{Shape, Tensor};
///
/// let conv = Conv2d::new(1, 2, 3, 1, 1, true);
/// let input = Tensor::full(Shape::new(1, 6, 6), 1.0);
/// let mut ws = Workspace::new();
/// let fast = conv.forward_ws(&input, &mut ws);
/// assert_eq!(fast, conv.forward(&input));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    im2col: Vec<f32>,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// The im2col patch buffer, grown to at least `len` elements. Contents
    /// are unspecified — callers overwrite every slot they read.
    #[inline]
    pub(crate) fn im2col(&mut self, len: usize) -> &mut [f32] {
        if self.im2col.len() < len {
            self.im2col.resize(len, 0.0);
        }
        &mut self.im2col[..len]
    }

    /// Capacity currently held by the im2col buffer, in elements (used by
    /// tests to verify buffers are retained across passes).
    pub fn im2col_capacity(&self) -> usize {
        self.im2col.len()
    }
}
