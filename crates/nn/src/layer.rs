use crate::{Conv2d, Dense, Pool2d};
use fbcnn_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// A single network layer — the unit the [`crate::Network`] DAG composes.
///
/// Only three layer families exist in the paper's models; activation
/// (ReLU) is fused into [`Conv2d`] and [`Dense`], matching the PE
/// datapath where ReLU sits directly in front of the output buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution (optionally with fused ReLU).
    Conv(Conv2d),
    /// 2-D max/avg pooling.
    Pool(Pool2d),
    /// Fully-connected layer (optionally with fused ReLU).
    Dense(Dense),
}

impl Layer {
    /// The output shape for a given input shape.
    ///
    /// # Panics
    ///
    /// Panics if the input shape is incompatible with the layer.
    pub fn output_shape(&self, input: Shape) -> Shape {
        match self {
            Layer::Conv(c) => c.output_shape(input),
            Layer::Pool(p) => p.output_shape(input),
            Layer::Dense(d) => d.output_shape(input),
        }
    }

    /// Runs the layer.
    ///
    /// # Panics
    ///
    /// Panics if the input shape is incompatible with the layer.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        match self {
            Layer::Conv(c) => c.forward(input),
            Layer::Pool(p) => p.forward(input),
            Layer::Dense(d) => d.forward(input),
        }
    }

    /// Runs the layer through the fast path: convolutions take the
    /// im2col + blocked kernel via [`Conv2d::forward_ws`] (reusing the
    /// scratch buffers in `ws`), other layers fall through to
    /// [`Layer::forward`]. Output equals [`Layer::forward`] under `==`.
    ///
    /// # Panics
    ///
    /// Panics if the input shape is incompatible with the layer.
    pub fn forward_ws(&self, input: &Tensor, ws: &mut crate::Workspace) -> Tensor {
        match self {
            Layer::Conv(c) => c.forward_ws(input, ws),
            other => other.forward(input),
        }
    }

    /// Whether this is a convolution layer.
    pub fn is_conv(&self) -> bool {
        matches!(self, Layer::Conv(_))
    }

    /// The convolution, if this is one.
    pub fn as_conv(&self) -> Option<&Conv2d> {
        match self {
            Layer::Conv(c) => Some(c),
            _ => None,
        }
    }

    /// Mutable convolution access, if this is one.
    pub fn as_conv_mut(&mut self) -> Option<&mut Conv2d> {
        match self {
            Layer::Conv(c) => Some(c),
            _ => None,
        }
    }

    /// The pooling layer, if this is one.
    pub fn as_pool(&self) -> Option<&Pool2d> {
        match self {
            Layer::Pool(p) => Some(p),
            _ => None,
        }
    }

    /// The dense layer, if this is one.
    pub fn as_dense(&self) -> Option<&Dense> {
        match self {
            Layer::Dense(d) => Some(d),
            _ => None,
        }
    }

    /// Mutable dense access, if this is one.
    pub fn as_dense_mut(&mut self) -> Option<&mut Dense> {
        match self {
            Layer::Dense(d) => Some(d),
            _ => None,
        }
    }
}

impl From<Conv2d> for Layer {
    fn from(c: Conv2d) -> Self {
        Layer::Conv(c)
    }
}

impl From<Pool2d> for Layer {
    fn from(p: Pool2d) -> Self {
        Layer::Pool(p)
    }
}

impl From<Dense> for Layer {
    fn from(d: Dense) -> Self {
        Layer::Dense(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PoolKind;

    #[test]
    fn dispatch_matches_inner_layer() {
        let conv: Layer = Conv2d::new(1, 2, 3, 1, 1, true).into();
        let pool: Layer = Pool2d::new(PoolKind::Max, 2, 2).into();
        let dense: Layer = Dense::new(8, 4, false).into();
        let s = Shape::new(1, 4, 4);
        assert_eq!(conv.output_shape(s), Shape::new(2, 4, 4));
        assert_eq!(pool.output_shape(s), Shape::new(1, 2, 2));
        assert_eq!(dense.output_shape(Shape::new(2, 2, 2)), Shape::flat(4));
        assert!(conv.is_conv() && !pool.is_conv());
        assert!(conv.as_conv().is_some());
        assert!(pool.as_pool().is_some());
        assert!(dense.as_dense().is_some());
    }
}
