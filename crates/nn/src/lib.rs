#![warn(missing_docs)]

//! From-scratch CNN inference (and training) substrate for the Fast-BCNN
//! reproduction.
//!
//! The paper evaluates three Bayesian CNNs — B-LeNet-5, B-VGG16 and
//! B-GoogLeNet — on an FPGA accelerator. This crate provides everything
//! those models need *below* the Bayesian machinery:
//!
//! * [`Conv2d`], [`Pool2d`], [`Dense`] and the [`Layer`] dispatch enum;
//! * [`Network`] — a DAG of layers supporting Inception-style branch/concat
//!   topologies;
//! * [`models`] — LeNet-5, VGG16 (CIFAR-sized) and GoogLeNet builders;
//! * [`init`] — deterministic weight generation with calibrated post-ReLU
//!   sparsity (the substitution for trained CIFAR-100 weights, see
//!   DESIGN.md §2);
//! * [`data`] — the SynthDigits procedural dataset;
//! * [`quant`] — symmetric int8 post-training quantization;
//! * [`train`] — a small SGD trainer able to actually train LeNet-5.
//!
//! # Examples
//!
//! ```
//! use fbcnn_nn::models;
//! use fbcnn_tensor::Tensor;
//!
//! let net = models::lenet5(7);
//! let input = Tensor::full(net.input_shape(), 0.5);
//! let logits = net.forward(&input);
//! assert_eq!(logits.len(), 10);
//! ```

mod conv;
pub mod data;
mod dense;
mod error;
mod graph;
mod guard;
pub mod init;
mod layer;
pub mod models;
mod pool;
pub mod quant;
pub mod train;
mod workspace;

pub use conv::Conv2d;
pub use dense::Dense;
pub use error::NnError;
pub use graph::{Network, NetworkBuilder, Node, NodeId, Op};
pub use guard::{ActivationGuard, GuardPolicy, NumericFault};
pub use layer::Layer;
pub use pool::{Pool2d, PoolKind};
pub use workspace::Workspace;
