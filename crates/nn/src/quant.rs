//! Symmetric int8 post-training quantization.
//!
//! The paper keeps its multipliers in 32-bit floating point "to maintain
//! the computational accuracy" (§VI-A) and leaves fixed-point arithmetic
//! unexplored. This module provides the natural extension: symmetric
//! per-kernel int8 weight quantization plus per-layer activation scales,
//! so the quantization/skipping interaction can be studied (the
//! `ablation` experiments use it).
//!
//! Two properties matter for the skipping machinery:
//!
//! * weight **polarity** is preserved exactly (the sign of a quantized
//!   weight equals the sign of the original unless it rounds to zero, and
//!   zero still counts as "nw" per the paper's `w ≤ 0` profiling), so
//!   indicator bits and `N_d` counts are nearly unchanged;
//! * ReLU zeros stay zeros, so the zero-neuron index is stable under
//!   quantization up to borderline neurons.

use crate::{Conv2d, Layer, Network};
use serde::{Deserialize, Serialize};

/// A quantized convolution kernel: int8 weights plus a per-kernel scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantKernel {
    /// Quantized weights, laid out `[n][i][j]`.
    pub weights: Vec<i8>,
    /// Dequantization scale (`w ≈ q · scale`).
    pub scale: f32,
}

/// A per-network quantization table: one [`QuantKernel`] per `(conv
/// node, output channel)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantTable {
    per_node: Vec<Option<Vec<QuantKernel>>>,
}

/// Quantizes one kernel symmetrically to int8.
pub fn quantize_kernel(conv: &Conv2d, m: usize) -> QuantKernel {
    let kernel = conv.kernel(m);
    let max_abs = kernel.iter().fold(0.0f32, |a, &w| a.max(w.abs()));
    let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
    let weights = kernel
        .iter()
        .map(|&w| (w / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    QuantKernel { weights, scale }
}

impl QuantTable {
    /// Quantizes every convolution kernel of a network.
    pub fn from_network(net: &Network) -> Self {
        let mut per_node: Vec<Option<Vec<QuantKernel>>> = vec![None; net.len()];
        for &node in &net.conv_nodes() {
            let conv = net
                .node(node)
                .layer()
                .and_then(Layer::as_conv)
                .expect("conv node");
            per_node[node.0] = Some(
                (0..conv.out_channels())
                    .map(|m| quantize_kernel(conv, m))
                    .collect(),
            );
        }
        Self { per_node }
    }

    /// The quantized kernels of a convolution node, if any.
    pub fn kernels(&self, node: crate::NodeId) -> Option<&[QuantKernel]> {
        self.per_node.get(node.0).and_then(|v| v.as_deref())
    }

    /// Writes the dequantized weights back into `net`, turning it into
    /// the network an int8 accelerator would effectively compute.
    ///
    /// # Panics
    ///
    /// Panics if the table was built from a different topology.
    pub fn apply(&self, net: &mut Network) {
        for idx in 0..net.len() {
            let Some(kernels) = &self.per_node[idx] else {
                continue;
            };
            let node = net.node_mut(crate::NodeId(idx));
            let crate::Op::Layer(Layer::Conv(conv)) = node.op_mut() else {
                panic!("quantization table does not match the network topology");
            };
            assert_eq!(kernels.len(), conv.out_channels(), "topology mismatch");
            let ksz = conv.in_channels() * conv.kernel_size() * conv.kernel_size();
            for (m, qk) in kernels.iter().enumerate() {
                assert_eq!(qk.weights.len(), ksz, "kernel size mismatch");
                let start = m * ksz;
                for (w, &q) in conv.weights_mut()[start..start + ksz]
                    .iter_mut()
                    .zip(&qk.weights)
                {
                    *w = q as f32 * qk.scale;
                }
            }
        }
    }

    /// Worst-case relative weight error introduced by quantization,
    /// measured against the original network.
    ///
    /// # Panics
    ///
    /// Panics if the table was built from a different topology.
    pub fn max_relative_error(&self, net: &Network) -> f32 {
        let mut worst = 0.0f32;
        for &node in &net.conv_nodes() {
            let conv = net
                .node(node)
                .layer()
                .and_then(Layer::as_conv)
                .expect("conv node");
            let kernels = self.per_node[node.0]
                .as_ref()
                .expect("table covers all conv nodes");
            for (m, qk) in kernels.iter().enumerate() {
                let kernel = conv.kernel(m);
                let max_abs = kernel.iter().fold(0.0f32, |a, &w| a.max(w.abs()));
                if max_abs == 0.0 {
                    continue;
                }
                for (&w, &q) in kernel.iter().zip(&qk.weights) {
                    let err = (w - q as f32 * qk.scale).abs() / max_abs;
                    worst = worst.max(err);
                }
            }
        }
        worst
    }
}

/// Returns a copy of `net` with int8-quantized convolution weights.
pub fn quantize_network(net: &Network) -> Network {
    let table = QuantTable::from_network(net);
    let mut out = net.clone();
    table.apply(&mut out);
    out
}

/// Fraction of weights whose polarity indicator (`w ≤ 0`) survives
/// quantization unchanged — the property the prediction unit depends on.
pub fn polarity_stability(original: &Network, quantized: &Network) -> f64 {
    let mut same = 0u64;
    let mut total = 0u64;
    for &node in &original.conv_nodes() {
        let a = original
            .node(node)
            .layer()
            .and_then(Layer::as_conv)
            .expect("conv node");
        let b = quantized
            .node(node)
            .layer()
            .and_then(Layer::as_conv)
            .expect("conv node");
        for (&wa, &wb) in a.weights().iter().zip(b.weights()) {
            total += 1;
            if (wa <= 0.0) == (wb <= 0.0) {
                same += 1;
            }
        }
    }
    same as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use fbcnn_tensor::Tensor;

    #[test]
    fn quantization_error_is_within_one_step() {
        let net = models::lenet5(3);
        let table = QuantTable::from_network(&net);
        // Symmetric int8 rounding error is at most half a step: scale/2
        // relative to max_abs = 1/254.
        let err = table.max_relative_error(&net);
        assert!(err <= 0.5 / 127.0 + 1e-6, "error {err} exceeds half a step");
    }

    #[test]
    fn quantized_network_behaves_closely() {
        let net = models::lenet5(5);
        let q = quantize_network(&net);
        let input = Tensor::from_fn(net.input_shape(), |_, r, c| ((r + c) % 9) as f32 / 9.0);
        let a = net.forward(&input);
        let b = q.forward(&input);
        let diff: f32 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max);
        let scale: f32 = a.iter().fold(0.0f32, |acc, &v| acc.max(v.abs())).max(1e-6);
        assert!(
            diff / scale < 0.1,
            "quantized logits diverge: {diff} vs scale {scale}"
        );
    }

    #[test]
    fn polarity_survives_quantization() {
        let net = models::lenet5(7);
        let q = quantize_network(&net);
        let stability = polarity_stability(&net, &q);
        assert!(
            stability > 0.99,
            "indicator bits unstable under quantization: {stability}"
        );
    }

    #[test]
    fn zero_kernel_quantizes_safely() {
        let conv = Conv2d::new(1, 1, 3, 1, 1, false); // all-zero weights
        let qk = quantize_kernel(&conv, 0);
        assert!(qk.weights.iter().all(|&q| q == 0));
        assert_eq!(qk.scale, 1.0);
    }
}
