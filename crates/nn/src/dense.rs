use fbcnn_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// A fully-connected layer with optional fused ReLU.
///
/// Inputs are flattened feature maps (the graph inserts an implicit
/// flatten: any shape with `in_features` total elements is accepted).
/// Weight layout is `[out][in]`.
///
/// # Examples
///
/// ```
/// use fbcnn_nn::Dense;
/// use fbcnn_tensor::{Shape, Tensor};
///
/// let mut fc = Dense::new(4, 2, false);
/// fc.weights_mut()[0] = 1.0; // out 0 reads input 0
/// let input = Tensor::from_vec(Shape::new(1, 2, 2), vec![3.0, 0.0, 0.0, 0.0]);
/// let out = fc.forward(&input);
/// assert_eq!(out.as_slice(), &[3.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    relu: bool,
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Dense {
    /// Creates a zero-initialized fully-connected layer.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new(in_features: usize, out_features: usize, relu: bool) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "dense feature counts must be non-zero"
        );
        Self {
            in_features,
            out_features,
            relu,
            weights: vec![0.0; in_features * out_features],
            bias: vec![0.0; out_features],
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Whether ReLU is fused into this layer.
    pub fn has_relu(&self) -> bool {
        self.relu
    }

    /// The shape produced by this layer (always `(out, 1, 1)`).
    ///
    /// # Panics
    ///
    /// Panics if the input element count differs from
    /// [`Dense::in_features`].
    pub fn output_shape(&self, input: Shape) -> Shape {
        assert_eq!(
            input.len(),
            self.in_features,
            "dense expects {} input features, got {input}",
            self.in_features
        );
        Shape::flat(self.out_features)
    }

    /// All weights, laid out `[out][in]`.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Mutable access to the weights.
    pub fn weights_mut(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// Bias per output feature.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable access to the bias vector.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Simultaneous mutable access to `(weights, bias)` — used by the
    /// trainer's parameter update.
    pub fn params_mut(&mut self) -> (&mut [f32], &mut [f32]) {
        (&mut self.weights, &mut self.bias)
    }

    /// Runs the matrix-vector product (and fused ReLU, if enabled).
    ///
    /// # Panics
    ///
    /// Panics if the input element count is wrong.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        let out_shape = self.output_shape(input.shape());
        let x = input.as_slice();
        let mut out = Tensor::zeros(out_shape);
        for (o, out_v) in out.as_mut_slice().iter_mut().enumerate() {
            let row = &self.weights[o * self.in_features..(o + 1) * self.in_features];
            let mut acc = self.bias[o];
            for (w, v) in row.iter().zip(x) {
                acc += w * v;
            }
            *out_v = if self.relu && acc < 0.0 { 0.0 } else { acc };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_with_bias() {
        let mut fc = Dense::new(3, 2, false);
        fc.weights_mut()
            .copy_from_slice(&[1.0, 2.0, 3.0, 0.0, -1.0, 1.0]);
        fc.bias_mut().copy_from_slice(&[0.5, -0.5]);
        let input = Tensor::from_vec(Shape::flat(3), vec![1.0, 1.0, 1.0]);
        let out = fc.forward(&input);
        assert_eq!(out.as_slice(), &[6.5, -0.5]);
    }

    #[test]
    fn relu_clamps() {
        let mut fc = Dense::new(1, 1, true);
        fc.weights_mut()[0] = -1.0;
        let out = fc.forward(&Tensor::full(Shape::flat(1), 2.0));
        assert_eq!(out.as_slice(), &[0.0]);
    }

    #[test]
    fn implicit_flatten_accepts_spatial_input() {
        let fc = Dense::new(8, 2, false);
        let input = Tensor::zeros(Shape::new(2, 2, 2));
        assert_eq!(fc.forward(&input).shape(), Shape::flat(2));
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn wrong_size_rejected() {
        let fc = Dense::new(4, 2, false);
        let _ = fc.forward(&Tensor::zeros(Shape::flat(5)));
    }
}
