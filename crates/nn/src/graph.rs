use crate::{Layer, NnError};
use fbcnn_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// Identifier of a node inside a [`Network`].
///
/// Ids are dense indexes in topological (insertion) order; node 0 is
/// always the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// The operation a [`Node`] performs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// The network input placeholder.
    Input,
    /// A [`Layer`] applied to a single upstream node.
    Layer(Layer),
    /// Channel-wise concatenation of several upstream nodes (Inception).
    Concat,
}

/// A node of the network DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    label: String,
    op: Op,
    inputs: Vec<NodeId>,
}

impl Node {
    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Human-readable label (e.g. `"conv1"`, `"a3.b3x3"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The operation.
    pub fn op(&self) -> &Op {
        &self.op
    }

    /// Upstream node ids feeding this node.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The layer, if this node wraps one.
    pub fn layer(&self) -> Option<&Layer> {
        match &self.op {
            Op::Layer(l) => Some(l),
            _ => None,
        }
    }

    /// Mutable access to the operation (used by the trainer to update
    /// weights in place).
    pub fn op_mut(&mut self) -> &mut Op {
        &mut self.op
    }
}

/// A feed-forward DAG of layers with shape checking at build time.
///
/// Nodes are stored in topological order (the builder only lets a node
/// reference earlier nodes), so forward execution is a single pass over
/// the node list. The last added node is the network output.
///
/// # Examples
///
/// ```
/// use fbcnn_nn::{Conv2d, NetworkBuilder};
/// use fbcnn_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), fbcnn_nn::NnError> {
/// let mut b = NetworkBuilder::new(Shape::new(1, 8, 8));
/// let x = b.input();
/// let c = b.layer(x, Conv2d::new(1, 4, 3, 1, 1, true), "conv1")?;
/// let net = b.build()?;
/// assert_eq!(net.shape(c), Shape::new(4, 8, 8));
/// let out = net.forward(&Tensor::zeros(net.input_shape()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    nodes: Vec<Node>,
    shapes: Vec<Shape>,
}

/// Incremental builder for [`Network`] (see [`Network`] docs for an
/// example).
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    nodes: Vec<Node>,
    shapes: Vec<Shape>,
}

impl NetworkBuilder {
    /// Starts a network with the given input shape.
    pub fn new(input_shape: Shape) -> Self {
        Self::named("network", input_shape)
    }

    /// Starts a named network with the given input shape.
    pub fn named(name: impl Into<String>, input_shape: Shape) -> Self {
        Self {
            name: name.into(),
            nodes: vec![Node {
                id: NodeId(0),
                label: "input".into(),
                op: Op::Input,
                inputs: vec![],
            }],
            shapes: vec![input_shape],
        }
    }

    /// The input node id (always `NodeId(0)`).
    pub fn input(&self) -> NodeId {
        NodeId(0)
    }

    fn check(&self, id: NodeId) -> Result<(), NnError> {
        if id.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(NnError::UnknownNode(id.0))
        }
    }

    /// Appends a layer node reading from `input`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UnknownNode`] if `input` does not exist and
    /// [`NnError::ShapeMismatch`] if the layer rejects the upstream shape.
    pub fn layer(
        &mut self,
        input: NodeId,
        layer: impl Into<Layer>,
        label: impl Into<String>,
    ) -> Result<NodeId, NnError> {
        self.check(input)?;
        let layer = layer.into();
        let in_shape = self.shapes[input.0];
        let out_shape = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            layer.output_shape(in_shape)
        }))
        .map_err(|_| NnError::ShapeMismatch {
            expected: format!("{layer:?}"),
            actual: in_shape.to_string(),
        })?;
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            label: label.into(),
            op: Op::Layer(layer),
            inputs: vec![input],
        });
        self.shapes.push(out_shape);
        Ok(id)
    }

    /// Appends a channel-wise concat of `inputs` (Inception merge).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::UnknownNode`] for a missing input,
    /// [`NnError::ConcatShapeMismatch`] if spatial dimensions disagree or
    /// the input list is empty.
    pub fn concat(
        &mut self,
        inputs: &[NodeId],
        label: impl Into<String>,
    ) -> Result<NodeId, NnError> {
        if inputs.is_empty() {
            return Err(NnError::ConcatShapeMismatch("no inputs".into()));
        }
        for &i in inputs {
            self.check(i)?;
        }
        let first = self.shapes[inputs[0].0];
        let mut channels = 0;
        for &i in inputs {
            let s = self.shapes[i.0];
            if s.height() != first.height() || s.width() != first.width() {
                return Err(NnError::ConcatShapeMismatch(format!("{} vs {}", first, s)));
            }
            channels += s.channels();
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            label: label.into(),
            op: Op::Concat,
            inputs: inputs.to_vec(),
        });
        self.shapes
            .push(Shape::new(channels, first.height(), first.width()));
        Ok(id)
    }

    /// Finalizes the network. The last added node becomes the output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyGraph`] if no layer was added.
    pub fn build(self) -> Result<Network, NnError> {
        if self.nodes.len() < 2 {
            return Err(NnError::EmptyGraph);
        }
        Ok(Network {
            name: self.name,
            nodes: self.nodes,
            shapes: self.shapes,
        })
    }
}

impl Network {
    /// The network's name (e.g. `"lenet5"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes, including the input node.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes. Always `false` for built
    /// networks.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable node access (used by [`crate::init`] to fill weights).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// The output shape of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn shape(&self, id: NodeId) -> Shape {
        self.shapes[id.0]
    }

    /// The network input shape.
    pub fn input_shape(&self) -> Shape {
        self.shapes[0]
    }

    /// The output node (last in topological order).
    pub fn output(&self) -> NodeId {
        NodeId(self.nodes.len() - 1)
    }

    /// The output shape of the whole network.
    pub fn output_shape(&self) -> Shape {
        self.shapes[self.nodes.len() - 1]
    }

    /// Ids of all convolution nodes in topological order — the paper's
    /// `L` convolutional layers, in execution order.
    pub fn conv_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.layer().is_some_and(Layer::is_conv))
            .map(|n| n.id)
            .collect()
    }

    /// Iterates over mutable layer references (used by weight init and the
    /// trainer).
    pub fn layers_mut(&mut self) -> impl Iterator<Item = (&str, &mut Layer)> {
        self.nodes.iter_mut().filter_map(|n| {
            let Node { label, op, .. } = n;
            match op {
                Op::Layer(l) => Some((label.as_str(), l)),
                _ => None,
            }
        })
    }

    /// Evaluates one node given its resolved input tensors.
    ///
    /// This is the "default executor" that [`Network::forward_with`]
    /// callers can delegate to for nodes they do not override.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs does not match the node's arity.
    pub fn eval_node(&self, node: &Node, inputs: &[&Tensor]) -> Tensor {
        match &node.op {
            Op::Input => {
                assert_eq!(inputs.len(), 1, "input node takes exactly one tensor");
                inputs[0].clone()
            }
            Op::Layer(l) => {
                assert_eq!(inputs.len(), 1, "layer node takes exactly one tensor");
                l.forward(inputs[0])
            }
            Op::Concat => {
                let shape = self.shapes[node.id.0];
                let mut data = Vec::with_capacity(shape.len());
                for t in inputs {
                    data.extend_from_slice(t.as_slice());
                }
                Tensor::from_vec(shape, data)
            }
        }
    }

    /// Like [`Network::eval_node`], but layer nodes run through the fast
    /// path ([`Layer::forward_ws`]), reusing the scratch buffers in `ws`.
    /// Output equals [`Network::eval_node`] under `==`.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs does not match the node's arity.
    pub fn eval_node_ws(
        &self,
        node: &Node,
        inputs: &[&Tensor],
        ws: &mut crate::Workspace,
    ) -> Tensor {
        match &node.op {
            Op::Layer(l) => {
                assert_eq!(inputs.len(), 1, "layer node takes exactly one tensor");
                l.forward_ws(inputs[0], ws)
            }
            _ => self.eval_node(node, inputs),
        }
    }

    /// Runs the network and returns every node's output tensor, indexed by
    /// node id.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match [`Network::input_shape`].
    pub fn forward_full(&self, input: &Tensor) -> Vec<Tensor> {
        self.forward_with(input, |net, node, inputs| net.eval_node(node, inputs))
    }

    /// Validates an input tensor against [`Network::input_shape`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the shapes differ — the
    /// typed counterpart of the panic in [`Network::forward_with`].
    pub fn check_input(&self, input: &Tensor) -> Result<(), NnError> {
        if input.shape() == self.input_shape() {
            Ok(())
        } else {
            Err(NnError::ShapeMismatch {
                expected: self.input_shape().to_string(),
                actual: input.shape().to_string(),
            })
        }
    }

    /// Runs the network with a custom per-node executor that may fail.
    ///
    /// The fallible counterpart of [`Network::forward_with`]: input-shape
    /// violations and wrong-shape executor outputs become
    /// [`NnError::ShapeMismatch`] (converted into `E`), and the first
    /// executor error aborts the pass. This is what the guarded forward
    /// passes in `fbcnn-bayes` are built on.
    ///
    /// # Errors
    ///
    /// Returns the first error produced by `exec`, or a converted
    /// [`NnError`] on a shape violation.
    pub fn try_forward_with<E: From<NnError>>(
        &self,
        input: &Tensor,
        mut exec: impl FnMut(&Network, &Node, &[&Tensor]) -> Result<Tensor, E>,
    ) -> Result<Vec<Tensor>, E> {
        self.check_input(input)?;
        let mut outputs: Vec<Tensor> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let out = if matches!(node.op, Op::Input) {
                exec(self, node, &[input])?
            } else {
                let ins: Vec<&Tensor> = node.inputs.iter().map(|i| &outputs[i.0]).collect();
                exec(self, node, &ins)?
            };
            if out.shape() != self.shapes[node.id.0] {
                return Err(NnError::ShapeMismatch {
                    expected: self.shapes[node.id.0].to_string(),
                    actual: out.shape().to_string(),
                }
                .into());
            }
            outputs.push(out);
        }
        Ok(outputs)
    }

    /// Runs the network with a custom per-node executor.
    ///
    /// `exec` receives the network, the node, and the already-computed
    /// input tensors; it returns the node's output. Executors typically
    /// delegate to [`Network::eval_node`] and post-process (dropout) or
    /// replace (skipping convolution) selected nodes.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match [`Network::input_shape`] or an
    /// executor returns a tensor of the wrong shape.
    pub fn forward_with(
        &self,
        input: &Tensor,
        mut exec: impl FnMut(&Network, &Node, &[&Tensor]) -> Tensor,
    ) -> Vec<Tensor> {
        assert_eq!(
            input.shape(),
            self.input_shape(),
            "network expects input {}, got {}",
            self.input_shape(),
            input.shape()
        );
        let mut outputs: Vec<Tensor> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let out = if matches!(node.op, Op::Input) {
                exec(self, node, &[input])
            } else {
                let ins: Vec<&Tensor> = node.inputs.iter().map(|i| &outputs[i.0]).collect();
                exec(self, node, &ins)
            };
            assert_eq!(
                out.shape(),
                self.shapes[node.id.0],
                "executor returned wrong shape for node {} ({})",
                node.id.0,
                node.label
            );
            outputs.push(out);
        }
        outputs
    }

    /// Runs the network and returns the final logits.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match [`Network::input_shape`].
    pub fn forward(&self, input: &Tensor) -> Vec<f32> {
        self.forward_full(input)
            .pop()
            .expect("network has at least one node")
            .into_vec()
    }

    /// A human-readable layer inventory: one line per node with label,
    /// operation, output shape and parameter count.
    ///
    /// # Examples
    ///
    /// ```
    /// let net = fbcnn_nn::models::lenet5(1);
    /// let s = net.summary();
    /// assert!(s.contains("conv1"));
    /// assert!(s.contains("6x28x28"));
    /// ```
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} ({} MACs/pass)", self.name, self.total_macs());
        for node in &self.nodes {
            let shape = self.shapes[node.id.0];
            let (op, params) = match &node.op {
                Op::Input => ("input".to_string(), 0),
                Op::Concat => ("concat".to_string(), 0),
                Op::Layer(Layer::Conv(c)) => (
                    format!(
                        "conv {}x{} /{} p{}{}",
                        c.kernel_size(),
                        c.kernel_size(),
                        c.stride(),
                        c.pad(),
                        if c.has_relu() { " relu" } else { "" }
                    ),
                    c.weights().len() + c.bias().len(),
                ),
                Op::Layer(Layer::Pool(p)) => (
                    format!(
                        "{:?}pool {}x{} /{}",
                        p.kind(),
                        p.window(),
                        p.window(),
                        p.stride()
                    )
                    .to_lowercase(),
                    0,
                ),
                Op::Layer(Layer::Dense(d)) => (
                    format!(
                        "dense {}->{}{}",
                        d.in_features(),
                        d.out_features(),
                        if d.has_relu() { " relu" } else { "" }
                    ),
                    d.weights().len() + d.bias().len(),
                ),
            };
            let _ = writeln!(
                out,
                "  {:>3} {:<10} {:<20} out {:<12} params {}",
                node.id.0,
                node.label,
                op,
                shape.to_string(),
                params
            );
        }
        out
    }

    /// Total trainable parameters (convolution and dense layers).
    pub fn total_params(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                Op::Layer(Layer::Conv(c)) => (c.weights().len() + c.bias().len()) as u64,
                Op::Layer(Layer::Dense(d)) => (d.weights().len() + d.bias().len()) as u64,
                _ => 0,
            })
            .sum()
    }

    /// Total multiply-accumulates of one full inference pass (convolution
    /// and dense layers).
    pub fn total_macs(&self) -> u64 {
        let mut macs = 0u64;
        for node in &self.nodes {
            match &node.op {
                Op::Layer(Layer::Conv(c)) => {
                    let out = self.shapes[node.id.0];
                    macs += (c.macs_per_neuron() * out.len()) as u64;
                }
                Op::Layer(Layer::Dense(d)) => {
                    macs += (d.in_features() * d.out_features()) as u64;
                }
                _ => {}
            }
        }
        macs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Dense, Pool2d, PoolKind};

    fn tiny_net() -> Network {
        let mut b = NetworkBuilder::named("tiny", Shape::new(1, 4, 4));
        let x = b.input();
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, true);
        conv.set_weight(0, 0, 1, 1, 1.0);
        conv.set_weight(1, 0, 1, 1, -1.0);
        let c = b.layer(x, conv, "conv1").unwrap();
        let p = b
            .layer(c, Pool2d::new(PoolKind::Max, 2, 2), "pool1")
            .unwrap();
        let mut fc = Dense::new(8, 3, false);
        fc.weights_mut()[0] = 1.0;
        b.layer(p, fc, "fc").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn sequential_forward() {
        let net = tiny_net();
        let input = Tensor::from_fn(Shape::new(1, 4, 4), |_, r, c| (r * 4 + c) as f32);
        let logits = net.forward(&input);
        assert_eq!(logits.len(), 3);
        // conv ch0 = identity, maxpool picks 5; fc out0 reads it.
        assert_eq!(logits[0], 5.0);
        // conv ch1 is -identity then ReLU = all zero.
        assert_eq!(logits[1], 0.0);
    }

    #[test]
    fn forward_full_exposes_intermediates() {
        let net = tiny_net();
        let input = Tensor::full(Shape::new(1, 4, 4), 1.0);
        let acts = net.forward_full(&input);
        assert_eq!(acts.len(), net.len());
        assert_eq!(acts[1].shape(), Shape::new(2, 4, 4));
        assert_eq!(acts[2].shape(), Shape::new(2, 2, 2));
    }

    #[test]
    fn concat_merges_channels() {
        let mut b = NetworkBuilder::new(Shape::new(1, 4, 4));
        let x = b.input();
        let mut id1 = Conv2d::new(1, 2, 1, 1, 0, false);
        id1.set_weight(0, 0, 0, 0, 1.0);
        id1.set_weight(1, 0, 0, 0, 2.0);
        let a = b.layer(x, id1, "a").unwrap();
        let mut id2 = Conv2d::new(1, 3, 1, 1, 0, false);
        id2.set_weight(0, 0, 0, 0, 3.0);
        let c = b.layer(x, id2, "c").unwrap();
        let merged = b.concat(&[a, c], "cat").unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.shape(merged), Shape::new(5, 4, 4));
        let out = net.forward_full(&Tensor::full(Shape::new(1, 4, 4), 1.0));
        let cat = &out[merged.0];
        assert_eq!(cat[(0, 0, 0)], 1.0);
        assert_eq!(cat[(1, 0, 0)], 2.0);
        assert_eq!(cat[(2, 0, 0)], 3.0);
        assert_eq!(cat[(4, 0, 0)], 0.0);
    }

    #[test]
    fn concat_rejects_mismatched_spatial() {
        let mut b = NetworkBuilder::new(Shape::new(1, 4, 4));
        let x = b.input();
        let a = b.layer(x, Conv2d::new(1, 1, 1, 1, 0, false), "a").unwrap();
        let p = b.layer(x, Pool2d::new(PoolKind::Max, 2, 2), "p").unwrap();
        assert!(matches!(
            b.concat(&[a, p], "bad"),
            Err(NnError::ConcatShapeMismatch(_))
        ));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = NetworkBuilder::new(Shape::new(1, 4, 4));
        assert!(matches!(
            b.layer(NodeId(7), Conv2d::new(1, 1, 1, 1, 0, false), "x"),
            Err(NnError::UnknownNode(7))
        ));
    }

    #[test]
    fn empty_graph_rejected() {
        let b = NetworkBuilder::new(Shape::new(1, 4, 4));
        assert_eq!(b.build().unwrap_err(), NnError::EmptyGraph);
    }

    #[test]
    fn shape_mismatch_reported_at_build_time() {
        let mut b = NetworkBuilder::new(Shape::new(1, 4, 4));
        let x = b.input();
        assert!(matches!(
            b.layer(x, Conv2d::new(3, 1, 3, 1, 1, false), "bad"),
            Err(NnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn conv_nodes_in_topo_order() {
        let net = tiny_net();
        let convs = net.conv_nodes();
        assert_eq!(convs, vec![NodeId(1)]);
    }

    #[test]
    fn hook_can_mutate_outputs() {
        let net = tiny_net();
        let input = Tensor::full(Shape::new(1, 4, 4), 1.0);
        let acts = net.forward_with(&input, |net, node, ins| {
            let mut out = net.eval_node(node, ins);
            if node.layer().is_some_and(Layer::is_conv) {
                out.map_inplace(|_| 0.0);
            }
            out
        });
        assert!(acts[1].iter().all(|&v| v == 0.0));
        // Downstream nodes see the zeroed tensor.
        assert!(acts[3].as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn check_input_reports_shape_mismatch() {
        let net = tiny_net();
        assert_eq!(net.check_input(&Tensor::zeros(Shape::new(1, 4, 4))), Ok(()));
        let err = net
            .check_input(&Tensor::zeros(Shape::new(2, 4, 4)))
            .unwrap_err();
        assert!(matches!(err, NnError::ShapeMismatch { .. }));
    }

    #[test]
    fn try_forward_matches_forward_on_success() {
        let net = tiny_net();
        let input = Tensor::from_fn(Shape::new(1, 4, 4), |_, r, c| (r + c) as f32);
        let plain = net.forward_full(&input);
        let tried: Vec<Tensor> = net
            .try_forward_with::<NnError>(&input, |net, node, ins| Ok(net.eval_node(node, ins)))
            .unwrap();
        assert_eq!(plain, tried);
    }

    #[test]
    fn try_forward_propagates_executor_errors() {
        let net = tiny_net();
        let input = Tensor::zeros(Shape::new(1, 4, 4));
        let err = net
            .try_forward_with::<NnError>(&input, |net, node, ins| {
                if node.label() == "pool1" {
                    Err(NnError::UnknownNode(99))
                } else {
                    Ok(net.eval_node(node, ins))
                }
            })
            .unwrap_err();
        assert_eq!(err, NnError::UnknownNode(99));
    }

    #[test]
    fn try_forward_rejects_bad_input_shape_without_panicking() {
        let net = tiny_net();
        let input = Tensor::zeros(Shape::new(3, 4, 4));
        let err = net
            .try_forward_with::<NnError>(&input, |net, node, ins| Ok(net.eval_node(node, ins)))
            .unwrap_err();
        assert!(matches!(err, NnError::ShapeMismatch { .. }));
    }

    #[test]
    fn try_forward_rejects_wrong_executor_output_shape() {
        let net = tiny_net();
        let input = Tensor::zeros(Shape::new(1, 4, 4));
        let err = net
            .try_forward_with::<NnError>(&input, |net, node, ins| {
                if node.label() == "conv1" {
                    Ok(Tensor::zeros(Shape::new(1, 1, 1)))
                } else {
                    Ok(net.eval_node(node, ins))
                }
            })
            .unwrap_err();
        assert!(matches!(err, NnError::ShapeMismatch { .. }));
    }

    #[test]
    fn total_macs_counts_conv_and_dense() {
        let net = tiny_net();
        // conv: 2 out ch * 16 positions * 9 macs = 288; fc: 8*3 = 24.
        assert_eq!(net.total_macs(), 288 + 24);
    }

    #[test]
    fn summary_lists_every_node() {
        let net = tiny_net();
        let s = net.summary();
        assert_eq!(s.lines().count(), net.len() + 1);
        assert!(s.contains("conv1"));
        assert!(s.contains("maxpool") || s.contains("max"));
        assert!(s.contains("dense 8->3"));
    }

    #[test]
    fn total_params_counts_weights_and_bias() {
        let net = tiny_net();
        // conv: 2*1*3*3 + 2 = 20; fc: 8*3 + 3 = 27.
        assert_eq!(net.total_params(), 47);
    }
}
