use fbcnn_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One labelled SynthDigits image.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSample {
    /// 1×28×28 grayscale image in `[0, 1]`.
    pub image: Tensor,
    /// Class label in `0..10`.
    pub label: usize,
}

/// A deterministic generator of seven-segment-style digit images.
///
/// Each sample renders the digit's segments onto a 28×28 canvas with a
/// per-sample random offset, stroke intensity, stroke thickness and
/// additive noise — enough intra-class variation that classification is
/// non-trivial, while remaining learnable by LeNet-5 in a few epochs on a
/// single core.
///
/// Generation is fully determined by `(seed, index)`, so train/test splits
/// are reproducible: by convention the test set uses a different seed.
///
/// # Examples
///
/// ```
/// use fbcnn_nn::data::SynthDigits;
///
/// let gen = SynthDigits::new(7);
/// let sample = gen.sample(0);
/// assert_eq!(sample.image.shape().len(), 28 * 28);
/// assert!(sample.label < 10);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SynthDigits {
    seed: u64,
    shape: Shape,
}

/// Segment bit layout: A, B, C, D, E, F, G (standard seven-segment).
const SEGMENTS: [u8; 10] = [
    0b0111111, // 0: A B C D E F
    0b0000110, // 1: B C
    0b1011011, // 2: A B D E G
    0b1001111, // 3: A B C D G
    0b1100110, // 4: B C F G
    0b1101101, // 5: A C D F G
    0b1111101, // 6: A C D E F G
    0b0000111, // 7: A B C
    0b1111111, // 8: all
    0b1101111, // 9: A B C D F G
];

const SIZE: usize = 28;

impl SynthDigits {
    /// Creates a generator with the given seed producing the canonical
    /// `1×28×28` images.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            shape: Shape::new(1, SIZE, SIZE),
        }
    }

    /// Creates a generator producing images of an arbitrary shape: the
    /// digit is drawn at a size proportional to the canvas and replicated
    /// across channels with a small per-channel intensity jitter — enough
    /// to train the CIFAR-shaped models on the same task.
    ///
    /// # Panics
    ///
    /// Panics if the canvas is smaller than 12×12.
    pub fn with_shape(seed: u64, shape: Shape) -> Self {
        assert!(
            shape.height() >= 12 && shape.width() >= 12,
            "canvas {shape} too small for a digit"
        );
        Self { seed, shape }
    }

    /// The image shape.
    pub fn image_shape(&self) -> Shape {
        self.shape
    }

    /// Generates the `index`-th sample (deterministic in `(seed, index)`).
    pub fn sample(&self, index: usize) -> SynthSample {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(index as u64),
        );
        let (canvas_h, canvas_w) = (self.shape.height() as i32, self.shape.width() as i32);
        let jitter = (canvas_w / 9).max(1);
        let label = index % 10;
        let dx = rng.gen_range(-jitter..=jitter);
        let dy = rng.gen_range(-jitter..=jitter);
        let intensity = rng.gen_range(0.7f32..1.0);
        let thickness = rng.gen_range(2usize..=3).min(canvas_w as usize / 8).max(1);
        let noise = rng.gen_range(0.02f32..0.08);
        // Italic-style shear: columns shift horizontally with height.
        let shear = rng.gen_range(-0.15f32..0.15);
        // Per-channel intensity jitter (for multi-channel canvases).
        let channel_gain: Vec<f32> = (0..self.shape.channels())
            .map(|_| rng.gen_range(0.85f32..1.0))
            .collect();

        let mut img = Tensor::zeros(self.shape);
        let bits = SEGMENTS[label];
        // Digit body scales with the canvas (12x20 on a 28-wide one).
        let (w, h) = (canvas_w * 12 / 28, canvas_h * 20 / 28);
        let (x0, y0) = ((canvas_w - w) / 2 + dx, (canvas_h - h) / 2 + dy);
        let t = thickness as i32;
        let mid_y = canvas_h / 2;
        let mut draw_rect = |rx: i32, ry: i32, rw: i32, rh: i32| {
            for y in ry..ry + rh {
                let slant = (shear * (y - mid_y) as f32).round() as i32;
                for x in rx + slant..rx + rw + slant {
                    if (0..canvas_w).contains(&x) && (0..canvas_h).contains(&y) {
                        for (ch, gain) in channel_gain.iter().enumerate() {
                            img[(ch, y as usize, x as usize)] = intensity * gain;
                        }
                    }
                }
            }
        };
        if bits & 0b0000001 != 0 {
            draw_rect(x0, y0, w, t); // A: top
        }
        if bits & 0b0000010 != 0 {
            draw_rect(x0 + w - t, y0, t, h / 2); // B: top right
        }
        if bits & 0b0000100 != 0 {
            draw_rect(x0 + w - t, y0 + h / 2, t, h / 2); // C: bottom right
        }
        if bits & 0b0001000 != 0 {
            draw_rect(x0, y0 + h - t, w, t); // D: bottom
        }
        if bits & 0b0010000 != 0 {
            draw_rect(x0, y0 + h / 2, t, h / 2); // E: bottom left
        }
        if bits & 0b0100000 != 0 {
            draw_rect(x0, y0, t, h / 2); // F: top left
        }
        if bits & 0b1000000 != 0 {
            draw_rect(x0, y0 + h / 2 - t / 2, w, t); // G: middle
        }
        // Additive uniform noise, clamped to [0, 1].
        for v in img.iter_mut() {
            let n: f32 = rng.gen_range(-noise..noise);
            *v = (*v + n).clamp(0.0, 1.0);
        }
        SynthSample { image: img, label }
    }

    /// Generates `n` samples (labels cycle 0–9).
    pub fn batch(&self, start: usize, n: usize) -> Vec<SynthSample> {
        (start..start + n).map(|i| self.sample(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SynthDigits::new(3).sample(17);
        let b = SynthDigits::new(3).sample(17);
        assert_eq!(a, b);
        let c = SynthDigits::new(4).sample(17);
        assert_ne!(a.image, c.image);
    }

    #[test]
    fn labels_cycle() {
        let gen = SynthDigits::new(0);
        let batch = gen.batch(0, 25);
        assert_eq!(batch[0].label, 0);
        assert_eq!(batch[9].label, 9);
        assert_eq!(batch[10].label, 0);
        assert_eq!(batch.len(), 25);
    }

    #[test]
    fn images_are_normalized_and_nonempty() {
        let gen = SynthDigits::new(5);
        for i in 0..20 {
            let s = gen.sample(i);
            assert!(s.image.iter().all(|&v| (0.0..=1.0).contains(&v)));
            // A digit must actually draw something bright.
            assert!(s.image.iter().filter(|&&v| v > 0.5).count() > 20);
        }
    }

    #[test]
    fn different_digits_differ() {
        let gen = SynthDigits::new(5);
        // Same index modulo noise/jitter would be unusual across classes.
        let one = gen.sample(1);
        let eight = gen.sample(8);
        assert!(one.image.max_abs_diff(&eight.image) > 0.5);
    }

    #[test]
    fn intra_class_variation_exists() {
        let gen = SynthDigits::new(5);
        let a = gen.sample(3);
        let b = gen.sample(13);
        assert_eq!(a.label, b.label);
        assert!(a.image.max_abs_diff(&b.image) > 0.1);
    }

    #[test]
    fn arbitrary_shapes_render_digits() {
        let gen = SynthDigits::with_shape(9, Shape::new(3, 16, 16));
        let s = gen.sample(7);
        assert_eq!(s.image.shape(), Shape::new(3, 16, 16));
        assert_eq!(s.label, 7);
        // All channels carry the (jittered) digit.
        for ch in 0..3 {
            let bright = s.image.channel(ch).iter().filter(|&&v| v > 0.5).count();
            assert!(bright > 5, "channel {ch} nearly empty ({bright} bright px)");
        }
        // Bigger canvases scale the digit up.
        let big = SynthDigits::with_shape(9, Shape::new(1, 56, 56)).sample(7);
        let small_bright = s.image.channel(0).iter().filter(|&&v| v > 0.5).count();
        let big_bright = big.image.channel(0).iter().filter(|&&v| v > 0.5).count();
        assert!(big_bright > 2 * small_bright);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_canvas_rejected() {
        let _ = SynthDigits::with_shape(0, Shape::new(1, 8, 8));
    }
}
