//! Procedurally generated datasets.
//!
//! The paper trains on MNIST and CIFAR-100, which are not available in
//! this environment; [`SynthDigits`] is the documented substitution (see
//! DESIGN.md §2): a ten-class digit-recognition task that a LeNet-5 can
//! actually be trained on, giving the accuracy experiments a real
//! classification metric.

mod synthdigits;

pub use synthdigits::{SynthDigits, SynthSample};
