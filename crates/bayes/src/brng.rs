use crate::Lfsr32;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The paper's hardware Bernoulli random number generator (§V-B3).
///
/// Eight [`Lfsr32`]s each contribute one bit per cycle; the combined 8-bit
/// uniform value is compared against the threshold `t = 256 · drop_rate`,
/// and the dropout bit is `1` (dropped) when the value is *below* `t`.
///
/// # Examples
///
/// ```
/// use fbcnn_bayes::Brng;
///
/// let mut brng = Brng::new(0.3, 7);
/// let dropped: usize = (0..1000).filter(|_| brng.next_bit()).count();
/// assert!((200..400).contains(&dropped));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Brng {
    lfsrs: [Lfsr32; 8],
    threshold: u32,
}

impl Brng {
    /// Creates a BRNG for the given drop rate, seeding the eight LFSRs
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= drop_rate <= 1.0`.
    pub fn new(drop_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_rate),
            "drop rate {drop_rate} out of [0, 1]"
        );
        let mut lfsrs = [Lfsr32::new(1); 8];
        let mut mix = seed ^ 0xA5A5_5A5A_DEAD_BEEF;
        for l in &mut lfsrs {
            mix = mix
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *l = Lfsr32::new((mix >> 32) as u32);
        }
        Self {
            lfsrs,
            threshold: (256.0 * drop_rate).round() as u32,
        }
    }

    /// The comparison threshold `t = 256 · drop_rate`.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// The next 8-bit uniform value (one bit per LFSR).
    pub fn next_uniform(&mut self) -> u32 {
        let mut v = 0u32;
        for l in &mut self.lfsrs {
            v = (v << 1) | u32::from(l.step());
        }
        v
    }

    /// The next dropout bit: `true` means *dropped*.
    #[inline]
    pub fn next_bit(&mut self) -> bool {
        self.next_uniform() < self.threshold
    }
}

/// Software reference Bernoulli generator (the "software approach" column
/// of Table III), backed by a seeded [`StdRng`].
#[derive(Debug, Clone)]
pub struct SoftwareBernoulli {
    rng: StdRng,
    drop_rate: f64,
}

impl SoftwareBernoulli {
    /// Creates a generator with the given drop rate and seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= drop_rate <= 1.0`.
    pub fn new(drop_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_rate),
            "drop rate {drop_rate} out of [0, 1]"
        );
        Self {
            rng: StdRng::seed_from_u64(seed),
            drop_rate,
        }
    }

    /// The next dropout bit: `true` means *dropped*.
    pub fn next_bit(&mut self) -> bool {
        self.rng.gen_bool(self.drop_rate)
    }
}

/// Measures the empirical drop rate of `n` bits from any bit source —
/// the quantity Table III reports for 2000 and 4000 cycles.
pub fn measured_drop_rate(mut source: impl FnMut() -> bool, n: usize) -> f64 {
    assert!(n > 0, "cannot measure over zero bits");
    (0..n).filter(|_| source()).count() as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_matches_paper_formula() {
        assert_eq!(Brng::new(0.5, 0).threshold(), 128);
        assert_eq!(Brng::new(0.3, 0).threshold(), 77);
        assert_eq!(Brng::new(0.1, 0).threshold(), 26);
        assert_eq!(Brng::new(0.0, 0).threshold(), 0);
        assert_eq!(Brng::new(1.0, 0).threshold(), 256);
    }

    #[test]
    fn extreme_rates_are_exact() {
        let mut never = Brng::new(0.0, 3);
        assert!((0..500).all(|_| !never.next_bit()));
        let mut always = Brng::new(1.0, 3);
        assert!((0..500).all(|_| always.next_bit()));
    }

    #[test]
    fn uniform_values_span_the_byte_range() {
        let mut brng = Brng::new(0.5, 9);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let v = brng.next_uniform();
            assert!(v < 256);
            seen_low |= v < 32;
            seen_high |= v >= 224;
        }
        assert!(seen_low && seen_high, "uniform output not spanning range");
    }

    #[test]
    fn measured_rate_close_to_nominal_table3() {
        // The Table III experiment: 2000 and 4000 cycles at three rates.
        for &p in &[0.5, 0.2, 0.1] {
            for &n in &[2000usize, 4000] {
                let mut brng = Brng::new(p, 1234);
                let rate = measured_drop_rate(|| brng.next_bit(), n);
                assert!(
                    (rate - p).abs() < 0.03,
                    "LFSR rate {rate} too far from {p} over {n} bits"
                );
                let mut sw = SoftwareBernoulli::new(p, 1234);
                let sw_rate = measured_drop_rate(|| sw.next_bit(), n);
                assert!(
                    (sw_rate - p).abs() < 0.03,
                    "software rate {sw_rate} too far from {p} over {n} bits"
                );
            }
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = Brng::new(0.5, 1);
        let mut b = Brng::new(0.5, 2);
        let va: Vec<u32> = (0..32).map(|_| a.next_uniform()).collect();
        let vb: Vec<u32> = (0..32).map(|_| b.next_uniform()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Brng::new(0.3, 42);
        let mut b = Brng::new(0.3, 42);
        for _ in 0..100 {
            assert_eq!(a.next_bit(), b.next_bit());
        }
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn invalid_rate_rejected() {
        let _ = Brng::new(1.5, 0);
    }
}
