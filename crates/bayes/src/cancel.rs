//! Cooperative cancellation for the MC sample loop.
//!
//! A [`CancelToken`] carries three independent stop conditions — a manual
//! cancel flag, an optional wall-clock deadline and an optional
//! *deterministic sample budget* — and is checked at sample boundaries by
//! [`crate::McDropout::run_cancellable`] (and, through the serving layer,
//! by the robust pipeline). Because MC-dropout samples are i.i.d., a run
//! stopped after `k` of `T` samples still yields a valid posterior
//! estimate: the partial mean over the `k` completed rows is exactly what
//! a `T = k` run with the same seed would have produced (the seed-prefix
//! property pinned by the partial-T proptests).
//!
//! The sample budget exists so deadline behavior can be tested and
//! golden-pinned deterministically: "expire after `k` samples" does not
//! depend on host speed the way a wall-clock deadline does.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// Remaining sample budget; negative means exhausted. `None` = no
    /// budget condition.
    budget: Option<AtomicI64>,
}

/// A cloneable handle for cooperative cancellation; see the module docs.
///
/// Clones share state: cancelling one handle cancels them all, and the
/// sample budget is consumed globally across clones (so a deadline spans
/// retries of the same request).
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::never()
    }
}

impl CancelToken {
    fn build(deadline: Option<Instant>, budget: Option<u64>) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
                budget: budget.map(|b| AtomicI64::new(i64::try_from(b).unwrap_or(i64::MAX))),
            }),
        }
    }

    /// A token that never expires on its own (manual [`CancelToken::cancel`]
    /// still works).
    pub fn never() -> Self {
        Self::build(None, None)
    }

    /// A token that expires `deadline` from now (wall clock).
    pub fn with_deadline(deadline: Duration) -> Self {
        Self::build(Instant::now().checked_add(deadline), None)
    }

    /// A token that expires after `samples` checkpoints — the
    /// deterministic deadline used by tests and the golden chaos
    /// schedule.
    pub fn with_sample_budget(samples: u64) -> Self {
        Self::build(None, Some(samples))
    }

    /// The general constructor: either, both, or neither condition.
    pub fn with_limits(deadline: Option<Duration>, sample_budget: Option<u64>) -> Self {
        Self::build(
            deadline.and_then(|d| Instant::now().checked_add(d)),
            sample_budget,
        )
    }

    /// Requests cancellation; takes effect at the next checkpoint.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] was called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Whether the token is expired *right now* (cancelled, past its
    /// deadline, or out of sample budget). Does not consume budget.
    pub fn expired(&self) -> bool {
        if self.is_cancelled() {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        if let Some(budget) = &self.inner.budget {
            if budget.load(Ordering::Acquire) <= 0 {
                return true;
            }
        }
        false
    }

    /// The per-sample stop check: returns `true` when the caller must
    /// stop *before* running the next sample. Each call that returns
    /// `false` consumes one unit of the sample budget (if one is set);
    /// cancelled/deadline conditions never consume budget.
    pub fn checkpoint(&self) -> bool {
        if self.is_cancelled() {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        if let Some(budget) = &self.inner.budget {
            // fetch_sub returns the previous value: the first `n` calls
            // see a positive remainder and proceed, the (n+1)-th stops.
            if budget.fetch_sub(1, Ordering::AcqRel) <= 0 {
                return true;
            }
        }
        false
    }

    /// Remaining sample budget, if one is set (0 when exhausted).
    pub fn remaining_budget(&self) -> Option<u64> {
        self.inner
            .budget
            .as_ref()
            .map(|b| b.load(Ordering::Acquire).max(0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_stops() {
        let t = CancelToken::never();
        for _ in 0..1000 {
            assert!(!t.checkpoint());
        }
        assert!(!t.expired());
    }

    #[test]
    fn manual_cancel_stops_all_clones() {
        let t = CancelToken::never();
        let clone = t.clone();
        assert!(!clone.checkpoint());
        t.cancel();
        assert!(clone.checkpoint());
        assert!(clone.expired());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn sample_budget_allows_exactly_n_checkpoints() {
        let t = CancelToken::with_sample_budget(3);
        assert!(!t.expired());
        for i in 0..3 {
            assert!(!t.checkpoint(), "checkpoint {i} should pass");
        }
        assert!(t.checkpoint(), "budget exhausted");
        assert!(t.expired());
        assert_eq!(t.remaining_budget(), Some(0));
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let t = CancelToken::with_sample_budget(0);
        assert!(t.expired());
        assert!(t.checkpoint());
    }

    #[test]
    fn budget_is_shared_across_clones() {
        let t = CancelToken::with_sample_budget(2);
        let clone = t.clone();
        assert!(!t.checkpoint());
        assert!(!clone.checkpoint());
        assert!(t.checkpoint());
        assert!(clone.checkpoint());
    }

    #[test]
    fn past_deadline_expires() {
        let t = CancelToken::with_deadline(Duration::from_nanos(1));
        std::thread::sleep(Duration::from_millis(1));
        assert!(t.expired());
        assert!(t.checkpoint());
    }

    #[test]
    fn generous_deadline_does_not_expire() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.expired());
        assert!(!t.checkpoint());
    }

    #[test]
    fn with_limits_combines_conditions() {
        let t = CancelToken::with_limits(Some(Duration::from_secs(3600)), Some(1));
        assert!(!t.checkpoint());
        assert!(t.checkpoint(), "budget binds before the far deadline");
        let loose = CancelToken::with_limits(None, None);
        assert!(!loose.checkpoint());
        assert_eq!(loose.remaining_budget(), None);
    }
}
