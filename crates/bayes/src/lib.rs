#![warn(missing_docs)]

//! Bayesian CNN machinery: Bernoulli random number generation, dropout
//! masks and Monte-Carlo-dropout inference.
//!
//! Following Gal & Ghahramani's Bernoulli variational interpretation
//! (paper §II), a BCNN is a CNN with a dropout layer after every
//! convolutional layer; inference runs `T` stochastic forward passes and
//! averages the outputs. This crate implements:
//!
//! * [`Lfsr32`] / [`Brng`] — the hardware Bernoulli generator (32-bit
//!   LFSR with taps 32/30/26/25, eight of them combined into an 8-bit
//!   uniform, thresholded at `t = 256·p`), plus a software reference
//!   generator for the Table III comparison;
//! * [`DropoutMasks`] and mask pooling (the paper's mask-pooling unit);
//! * [`BayesianNetwork`] — a [`fbcnn_nn::Network`] with dropout attached
//!   to every convolution node;
//! * [`McDropout`] — the T-sample runner producing a
//!   [`Prediction`] with uncertainty metrics.
//!
//! # Examples
//!
//! ```
//! use fbcnn_bayes::{BayesianNetwork, McDropout};
//! use fbcnn_nn::models;
//! use fbcnn_tensor::Tensor;
//!
//! let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
//! let runner = McDropout::new(8, 42);
//! let input = Tensor::full(bnet.network().input_shape(), 0.2);
//! let pred = runner.run(&bnet, &input);
//! assert_eq!(pred.mean.len(), 10);
//! ```

mod bnet;
mod brng;
mod cancel;
mod error;
mod lfsr;
pub mod mask;
mod mc;
pub mod metrics;
mod seed;

pub use bnet::{BayesianNetwork, SampleRun};
pub use brng::{measured_drop_rate, Brng, SoftwareBernoulli};
pub use cancel::CancelToken;
pub use error::BayesError;
pub use lfsr::Lfsr32;
pub use mask::DropoutMasks;
pub use mc::{IsolatedRun, McDropout, McRequest, McTrace, PartialRun, Prediction};
pub use seed::derive_request_seed;
