//! Per-request seed derivation for batched serving.
//!
//! A batched engine runs many requests against one user-visible master
//! seed; each request needs its own mask-seed so that its `T` dropout
//! samples are statistically independent of every other request's. The
//! derivation has to compose safely with the *per-sample* mixing inside
//! [`crate::BayesianNetwork::generate_masks`], which XORs
//! `t · 0x9E37_79B9_7F4A_7C15` into the seed for sample `t`.
//!
//! That composition is where naive derivations alias: deriving request
//! seeds as `user_seed ^ id · K` with the *same* odd constant `K` makes
//! request `i`'s sample `t` use exactly the seed of request `j`'s sample
//! `t'` whenever `i + t == j + t'` — two requests in one batch would
//! replay identical LFSR streams, silently correlating their posteriors.
//! Any affine derivation leaves such lattice collisions reachable from
//! small ids and sample indices.
//!
//! [`derive_request_seed`] therefore runs the id through a SplitMix64
//! finalizer (full avalanche) before combining it with the user seed, and
//! finalizes again afterwards. Every step is a bijection of `u64`, so for
//! a fixed user seed the map `id → derived seed` is *injective*: two
//! distinct request ids can never receive the same derived seed, and the
//! avalanche destroys the affine structure the per-sample XOR could
//! otherwise resonate with. A regression test pins both properties.

/// SplitMix64's output finalizer — a bijection of `u64` with full
/// avalanche (every input bit flips ~half the output bits).
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the mask seed of request `request_id` from the user-visible
/// master seed.
///
/// For a fixed `user_seed` the derivation is injective in `request_id`
/// (every step is a `u64` bijection), so two requests in one batch can
/// never receive identical LFSR streams; the double avalanche keeps the
/// derived seeds free of the affine structure that
/// [`crate::BayesianNetwork::generate_masks`]'s per-sample XOR mixing
/// could alias with (see the module docs).
pub fn derive_request_seed(user_seed: u64, request_id: u64) -> u64 {
    let id = mix64(request_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_0F0F_BA7C_4ED5);
    mix64(user_seed.wrapping_add(id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn distinct_ids_give_distinct_seeds() {
        let user = 0xFB_C0DE;
        let seeds: HashSet<u64> = (0..4096).map(|id| derive_request_seed(user, id)).collect();
        assert_eq!(seeds.len(), 4096, "derived seeds collided");
    }

    #[test]
    fn derivation_is_deterministic_and_seed_sensitive() {
        assert_eq!(derive_request_seed(1, 2), derive_request_seed(1, 2));
        assert_ne!(derive_request_seed(1, 2), derive_request_seed(2, 2));
        assert_ne!(derive_request_seed(1, 2), derive_request_seed(1, 3));
    }

    #[test]
    fn derived_seeds_do_not_alias_the_per_sample_mixing() {
        // generate_masks XORs t·GOLDEN into the seed for sample t. A
        // derivation with affine structure in the id would make
        // (request i, sample t) collide with (request j, sample t') on
        // the lattice i + t == j + t'. Check the full (id, t) cross
        // product of effective per-sample seeds stays collision-free.
        const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
        let user = 7;
        let mut effective = HashSet::new();
        for id in 0..64u64 {
            let derived = derive_request_seed(user, id);
            for t in 0..50u64 {
                assert!(
                    effective.insert(derived ^ t.wrapping_mul(GOLDEN)),
                    "effective sample seed aliased at id {id}, t {t}"
                );
            }
        }
    }
}
