use crate::mask::DropoutMasks;
use crate::{BayesError, Brng};
use fbcnn_nn::{ActivationGuard, Network, NodeId, Workspace};
use fbcnn_tensor::{BitMask, Tensor};
use serde::{Deserialize, Serialize};

/// A Bayesian CNN: a [`Network`] with a dropout layer attached to the
/// output of every convolution node (paper §II: "a BCNN model is
/// implemented by adding a dropout layer after each convolutional layer").
///
/// The dropout layer is represented *implicitly*: masks are generated per
/// sample by [`BayesianNetwork::generate_masks`] and applied to the conv
/// outputs during [`BayesianNetwork::forward_sample`]. Keeping masks
/// first-class (rather than folding them into the forward pass) is what
/// lets the predictor and the accelerator models reason about them.
///
/// # Examples
///
/// ```
/// use fbcnn_bayes::BayesianNetwork;
/// use fbcnn_nn::models;
///
/// let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
/// assert_eq!(bnet.dropout_nodes().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BayesianNetwork {
    net: Network,
    drop_rate: f64,
    dropout_nodes: Vec<NodeId>,
}

/// One forward pass: every node's output tensor, post-dropout where
/// applicable, indexed by node id.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRun {
    /// Per-node outputs (index = node id).
    pub activations: Vec<Tensor>,
}

impl SampleRun {
    /// The final logits.
    pub fn logits(&self) -> &[f32] {
        self.activations
            .last()
            .expect("a built network has nodes")
            .as_slice()
    }
}

impl BayesianNetwork {
    /// Wraps a network, attaching dropout to every convolution node.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= drop_rate < 1.0`.
    pub fn new(net: Network, drop_rate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&drop_rate),
            "drop rate {drop_rate} out of [0, 1)"
        );
        let dropout_nodes = net.conv_nodes();
        Self {
            net,
            drop_rate,
            dropout_nodes,
        }
    }

    /// The wrapped network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the wrapped network's parameters — the injection
    /// point for fault harnesses and weight substitution.
    ///
    /// The graph *structure* must not change through this handle: the
    /// dropout attachment points were resolved at construction and are
    /// not re-derived.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The Bernoulli drop rate `p`.
    pub fn drop_rate(&self) -> f64 {
        self.drop_rate
    }

    /// Nodes whose outputs pass through a dropout layer, in topological
    /// order — the paper's `L` BCNN convolutional layers.
    pub fn dropout_nodes(&self) -> &[NodeId] {
        &self.dropout_nodes
    }

    /// Generates the dropout masks of sample `t` using the hardware BRNG,
    /// deterministically in `(seed, t)`.
    pub fn generate_masks(&self, seed: u64, t: usize) -> DropoutMasks {
        let mut masks = DropoutMasks::empty(self.net.len());
        for &node in &self.dropout_nodes {
            let shape = self.net.shape(node);
            let mut brng = Brng::new(
                self.drop_rate,
                seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (node.0 as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9),
            );
            masks.insert(node, BitMask::from_fn(shape, |_| brng.next_bit()));
        }
        masks
    }

    /// Runs one stochastic forward pass with the given masks, returning
    /// every node's (post-dropout) output.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the network.
    pub fn forward_sample(&self, input: &Tensor, masks: &DropoutMasks) -> SampleRun {
        let activations = self.net.forward_with(input, |net, node, ins| {
            let _layer = fbcnn_telemetry::span_with("layer_forward", || {
                vec![("layer".into(), node.label().to_string())]
            });
            let mut out = net.eval_node(node, ins);
            if let Some(mask) = masks.get(node.id()) {
                out.apply_drop_mask(mask);
            }
            out
        });
        SampleRun { activations }
    }

    /// Like [`BayesianNetwork::forward_sample`], but convolutions run
    /// through the im2col fast path, reusing the scratch buffers in `ws`
    /// across layers — and, when the caller holds the workspace across
    /// samples, across all `T` passes of an MC-dropout run.
    ///
    /// Output equals [`BayesianNetwork::forward_sample`] under `==`.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the network.
    pub fn forward_sample_ws(
        &self,
        input: &Tensor,
        masks: &DropoutMasks,
        ws: &mut Workspace,
    ) -> SampleRun {
        let activations = self.net.forward_with(input, |net, node, ins| {
            let _layer = fbcnn_telemetry::span_with("layer_forward", || {
                vec![("layer".into(), node.label().to_string())]
            });
            let mut out = net.eval_node_ws(node, ins, ws);
            if let Some(mask) = masks.get(node.id()) {
                out.apply_drop_mask(mask);
            }
            out
        });
        SampleRun { activations }
    }

    /// Like [`BayesianNetwork::forward_sample`], but additionally returns
    /// every convolution output *before* its own dropout mask was applied.
    ///
    /// The pre-mask values are the ground truth for the *unaffected
    /// neuron* definition (§III): a neuron is unaffected when its
    /// pre-own-dropout value is still zero under input dropout.
    pub fn forward_sample_recording(
        &self,
        input: &Tensor,
        masks: &DropoutMasks,
    ) -> (SampleRun, Vec<Option<Tensor>>) {
        let mut pre_mask: Vec<Option<Tensor>> = vec![None; self.net.len()];
        let activations = self.net.forward_with(input, |net, node, ins| {
            let mut out = net.eval_node(node, ins);
            if let Some(mask) = masks.get(node.id()) {
                pre_mask[node.id().0] = Some(out.clone());
                out.apply_drop_mask(mask);
            }
            out
        });
        (SampleRun { activations }, pre_mask)
    }

    /// Runs the dropout-free pass — the paper's *pre-inference*, used to
    /// record the zero-neuron locations.
    pub fn forward_deterministic(&self, input: &Tensor) -> SampleRun {
        SampleRun {
            activations: self.net.forward_full(input),
        }
    }

    /// Validates a mask set against this network: every dropout-carrying
    /// node must have a mask of its output shape.
    ///
    /// The panics that malformed masks would otherwise cause deep inside
    /// a forward pass (or inside a worker thread) become typed errors
    /// here, so callers can reject a corrupted set up front.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::MissingMask`] or [`BayesError::MaskShape`]
    /// for the first offending node.
    pub fn validate_masks(&self, masks: &DropoutMasks) -> Result<(), BayesError> {
        for &node in &self.dropout_nodes {
            let Some(mask) = masks.get(node) else {
                return Err(BayesError::MissingMask { node: node.0 });
            };
            let expected = self.net.shape(node);
            if mask.shape() != expected {
                return Err(BayesError::MaskShape {
                    node: node.0,
                    expected: expected.to_string(),
                    actual: mask.shape().to_string(),
                });
            }
        }
        Ok(())
    }

    /// The guarded stochastic forward pass: like
    /// [`BayesianNetwork::forward_sample_ws`], but masks are validated
    /// first, shape violations surface as typed errors instead of
    /// panics, and every node output runs through `guard`.
    ///
    /// Returns the sample run plus the number of values the guard
    /// repaired (non-zero only under
    /// [`fbcnn_nn::GuardPolicy::Saturate`]).
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::MissingMask`] / [`BayesError::MaskShape`]
    /// for malformed masks, [`BayesError::Graph`] for shape violations,
    /// and [`BayesError::Numeric`] when the guard's policy reports a
    /// fault instead of repairing it.
    pub fn forward_sample_checked(
        &self,
        input: &Tensor,
        masks: &DropoutMasks,
        ws: &mut Workspace,
        guard: &ActivationGuard,
    ) -> Result<(SampleRun, usize), BayesError> {
        self.validate_masks(masks)?;
        let mut repaired = 0usize;
        let activations = self.net.try_forward_with(input, |net, node, ins| {
            let mut out = net.eval_node_ws(node, ins, ws);
            if let Some(mask) = masks.get(node.id()) {
                out.apply_drop_mask(mask);
            }
            repaired += guard.screen(node.id().0, &mut out)?;
            Ok::<Tensor, BayesError>(out)
        })?;
        Ok((SampleRun { activations }, repaired))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbcnn_nn::models::{self, ModelScale};
    use fbcnn_tensor::Shape;

    fn input_for(net: &Network) -> Tensor {
        Tensor::from_fn(net.input_shape(), |ch, r, c| {
            ((ch * 7 + r * 3 + c) % 9) as f32 / 9.0
        })
    }

    #[test]
    fn masks_cover_exactly_the_conv_nodes() {
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
        let masks = bnet.generate_masks(5, 0);
        assert_eq!(masks.iter().count(), 3);
        for &node in bnet.dropout_nodes() {
            assert_eq!(masks.get(node).unwrap().shape(), bnet.network().shape(node));
        }
    }

    #[test]
    fn mask_density_tracks_drop_rate() {
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
        let masks = bnet.generate_masks(5, 0);
        let total: usize = masks.iter().map(|(_, m)| m.len()).sum();
        let dropped = masks.total_dropped();
        let rate = dropped as f64 / total as f64;
        assert!(
            (rate - 0.3).abs() < 0.03,
            "mask density {rate} far from 0.3"
        );
    }

    #[test]
    fn different_samples_use_different_masks() {
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
        let a = bnet.generate_masks(5, 0);
        let b = bnet.generate_masks(5, 1);
        assert_ne!(a, b);
        // Same (seed, t) is reproducible.
        assert_eq!(a, bnet.generate_masks(5, 0));
    }

    #[test]
    fn dropout_zeroes_masked_neurons() {
        let bnet = BayesianNetwork::new(models::lenet5(2), 0.5);
        let input = input_for(bnet.network());
        let masks = bnet.generate_masks(1, 0);
        let run = bnet.forward_sample(&input, &masks);
        for (node, mask) in masks.iter() {
            let act = &run.activations[node.0];
            for i in mask.iter_set() {
                assert_eq!(act.at(i), 0.0, "dropped neuron not zero at node {node:?}");
            }
        }
    }

    #[test]
    fn deterministic_pass_equals_zero_rate_sample() {
        let bnet = BayesianNetwork::new(
            models::ModelKind::Vgg16.build_scaled(3, ModelScale::TINY),
            0.0,
        );
        let input = input_for(bnet.network());
        let det = bnet.forward_deterministic(&input);
        let masks = bnet.generate_masks(9, 0);
        let sampled = bnet.forward_sample(&input, &masks);
        // With p = 0 every mask is empty, so the runs agree exactly.
        assert_eq!(det.logits(), sampled.logits());
    }

    #[test]
    fn stochastic_outputs_vary_across_samples() {
        let bnet = BayesianNetwork::new(models::lenet5(4), 0.3);
        let input = input_for(bnet.network());
        let a = bnet.forward_sample(&input, &bnet.generate_masks(7, 0));
        let b = bnet.forward_sample(&input, &bnet.generate_masks(7, 1));
        assert_ne!(a.logits(), b.logits());
    }

    #[test]
    fn recording_exposes_pre_mask_values() {
        let bnet = BayesianNetwork::new(models::lenet5(2), 0.5);
        let input = input_for(bnet.network());
        let masks = bnet.generate_masks(11, 0);
        let (run, pre) = bnet.forward_sample_recording(&input, &masks);
        for (node, mask) in masks.iter() {
            let pre_t = pre[node.0].as_ref().expect("conv node records pre-mask");
            let post_t = &run.activations[node.0];
            for i in 0..pre_t.len() {
                if mask.get(i) {
                    assert_eq!(post_t.at(i), 0.0);
                } else {
                    assert_eq!(post_t.at(i), pre_t.at(i));
                }
            }
        }
        // Non-conv nodes record nothing.
        assert!(pre[0].is_none());
    }

    #[test]
    fn workspace_sample_matches_plain_sample() {
        let bnet = BayesianNetwork::new(models::lenet5(2), 0.4);
        let input = input_for(bnet.network());
        let mut ws = Workspace::new();
        for t in 0..3 {
            let masks = bnet.generate_masks(21, t);
            assert_eq!(
                bnet.forward_sample_ws(&input, &masks, &mut ws),
                bnet.forward_sample(&input, &masks),
                "sample {t} diverged"
            );
        }
    }

    #[test]
    fn validate_masks_accepts_generated_sets() {
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
        assert_eq!(bnet.validate_masks(&bnet.generate_masks(3, 0)), Ok(()));
    }

    #[test]
    fn validate_masks_rejects_missing_and_misshapen() {
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
        let empty = DropoutMasks::empty(bnet.network().len());
        assert!(matches!(
            bnet.validate_masks(&empty),
            Err(BayesError::MissingMask { .. })
        ));
        let mut bad = bnet.generate_masks(3, 0);
        let node = bnet.dropout_nodes()[1];
        bad.insert(node, BitMask::ones(Shape::new(1, 2, 2)));
        assert!(matches!(
            bnet.validate_masks(&bad),
            Err(BayesError::MaskShape { .. })
        ));
    }

    #[test]
    fn checked_forward_matches_plain_on_healthy_networks() {
        let bnet = BayesianNetwork::new(models::lenet5(2), 0.4);
        let input = input_for(bnet.network());
        let masks = bnet.generate_masks(17, 0);
        let mut ws = Workspace::new();
        let (checked, repaired) = bnet
            .forward_sample_checked(&input, &masks, &mut ws, &ActivationGuard::strict())
            .expect("healthy pass");
        assert_eq!(repaired, 0);
        assert_eq!(checked, bnet.forward_sample(&input, &masks));
    }

    #[test]
    fn checked_forward_rejects_bad_input_shape() {
        let bnet = BayesianNetwork::new(models::lenet5(2), 0.4);
        let masks = bnet.generate_masks(17, 0);
        let mut ws = Workspace::new();
        let err = bnet
            .forward_sample_checked(
                &Tensor::zeros(Shape::new(2, 5, 5)),
                &masks,
                &mut ws,
                &ActivationGuard::strict(),
            )
            .unwrap_err();
        assert!(matches!(err, BayesError::Graph(_)));
    }

    #[test]
    fn checked_forward_detects_poisoned_weights() {
        use fbcnn_nn::Layer;
        let mut net = models::lenet5(2);
        for (_, layer) in net.layers_mut() {
            if let Layer::Conv(c) = layer {
                c.weights_mut()[0] = f32::NAN;
                break;
            }
        }
        let bnet = BayesianNetwork::new(net, 0.3);
        let input = input_for(bnet.network());
        let masks = bnet.generate_masks(1, 0);
        let mut ws = Workspace::new();
        let err = bnet
            .forward_sample_checked(&input, &masks, &mut ws, &ActivationGuard::strict())
            .unwrap_err();
        assert!(matches!(err, BayesError::Numeric(_)), "got {err:?}");
    }

    #[test]
    #[should_panic(expected = "out of [0, 1)")]
    fn full_drop_rate_rejected() {
        let _ = BayesianNetwork::new(models::lenet5(0), 1.0);
    }

    #[test]
    fn sample_run_logits_shape() {
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.1);
        let run = bnet.forward_deterministic(&Tensor::zeros(Shape::new(1, 28, 28)));
        assert_eq!(run.logits().len(), 10);
    }
}
