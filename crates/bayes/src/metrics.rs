//! Uncertainty metrics over MC-dropout sample distributions.
//!
//! These are the quantities BCNN applications gate decisions on (paper
//! §I: rejecting uncertain predictions avoided ~80 % of mistakes in
//! Kendall et al.'s scene-understanding work and enabled Leibig et al.'s
//! referral pipeline).

use fbcnn_tensor::stats;

/// Predictive entropy `H[ȳ]` of the mean distribution — total
/// (aleatoric + epistemic) uncertainty, in nats.
///
/// # Panics
///
/// Panics if `mean` is empty or sums to zero.
pub fn predictive_entropy(mean: &[f32]) -> f32 {
    stats::entropy(mean)
}

/// Mutual information `I[y; w] = H[ȳ] − (1/T) Σ H[yₜ]` (BALD) —
/// epistemic uncertainty only.
///
/// # Panics
///
/// Panics if `sample_probs` is empty or rows have differing lengths.
pub fn mutual_information(sample_probs: &[Vec<f32>]) -> f32 {
    assert!(!sample_probs.is_empty(), "no samples");
    let classes = sample_probs[0].len();
    let mut mean = vec![0.0f32; classes];
    let mut avg_entropy = 0.0f32;
    for p in sample_probs {
        assert_eq!(p.len(), classes, "inconsistent class counts");
        for (m, &v) in mean.iter_mut().zip(p) {
            *m += v;
        }
        avg_entropy += stats::entropy(p);
    }
    for m in &mut mean {
        *m /= sample_probs.len() as f32;
    }
    avg_entropy /= sample_probs.len() as f32;
    (stats::entropy(&mean) - avg_entropy).max(0.0)
}

/// An uncertainty-based referral gate — the decision rule behind the
/// paper's motivating applications (Leibig et al.'s diagnostic referral,
/// Kendall et al.'s low-tolerance scene understanding, §I).
///
/// The gate refers a prediction to a human when its uncertainty exceeds
/// a threshold, typically calibrated as a quantile of in-distribution
/// uncertainties.
///
/// # Examples
///
/// ```
/// use fbcnn_bayes::metrics::ReferralGate;
///
/// let gate = ReferralGate::from_quantile(&[0.1, 0.2, 0.3, 0.9], 0.75);
/// assert!(!gate.should_refer(0.25));
/// assert!(gate.should_refer(1.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferralGate {
    threshold: f32,
}

impl ReferralGate {
    /// A gate with an explicit uncertainty threshold (nats).
    pub fn new(threshold: f32) -> Self {
        Self { threshold }
    }

    /// Calibrates the threshold as the `q`-quantile of a set of reference
    /// (in-distribution) uncertainties.
    ///
    /// # Panics
    ///
    /// Panics if `reference` is empty or `q` is outside `[0, 1]`.
    pub fn from_quantile(reference: &[f32], q: f64) -> Self {
        assert!(!reference.is_empty(), "empty reference set");
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0, 1]");
        let mut sorted = reference.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite uncertainties"));
        let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
        Self {
            threshold: sorted[idx],
        }
    }

    /// The gate threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Whether a prediction with this uncertainty should be referred.
    pub fn should_refer(&self, uncertainty: f32) -> bool {
        uncertainty > self.threshold
    }

    /// Splits `(uncertainty, payload)` cases into `(retained, referred)`.
    pub fn partition<T>(&self, cases: Vec<(f32, T)>) -> (Vec<T>, Vec<T>) {
        let mut retained = Vec::new();
        let mut referred = Vec::new();
        for (u, payload) in cases {
            if self.should_refer(u) {
                referred.push(payload);
            } else {
                retained.push(payload);
            }
        }
        (retained, referred)
    }
}

/// Per-class variance of the sample probabilities — the "output
/// distribution" spread the paper's Fig. 1 illustrates.
///
/// # Panics
///
/// Panics if `sample_probs` is empty or rows have differing lengths.
pub fn class_variance(sample_probs: &[Vec<f32>]) -> Vec<f32> {
    assert!(!sample_probs.is_empty(), "no samples");
    let classes = sample_probs[0].len();
    (0..classes)
        .map(|k| {
            let col: Vec<f32> = sample_probs
                .iter()
                .map(|p| {
                    assert_eq!(p.len(), classes, "inconsistent class counts");
                    p[k]
                })
                .collect();
            stats::variance(&col)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_mutual_information() {
        let probs = vec![vec![0.7, 0.2, 0.1]; 5];
        assert!(mutual_information(&probs) < 1e-6);
        assert!(class_variance(&probs).iter().all(|&v| v < 1e-9));
    }

    #[test]
    fn disagreeing_samples_have_positive_mutual_information() {
        let probs = vec![vec![0.9, 0.1], vec![0.1, 0.9]];
        let mi = mutual_information(&probs);
        assert!(mi > 0.2, "expected high epistemic uncertainty, got {mi}");
        let var = class_variance(&probs);
        assert!(var[0] > 0.1);
    }

    #[test]
    fn mutual_information_bounded_by_entropy() {
        let probs = vec![
            vec![0.6, 0.3, 0.1],
            vec![0.2, 0.5, 0.3],
            vec![0.4, 0.4, 0.2],
        ];
        let mean: Vec<f32> = (0..3)
            .map(|k| probs.iter().map(|p| p[k]).sum::<f32>() / 3.0)
            .collect();
        assert!(mutual_information(&probs) <= predictive_entropy(&mean) + 1e-6);
    }

    #[test]
    fn uniform_mean_maximizes_entropy() {
        let e_uniform = predictive_entropy(&[0.25; 4]);
        let e_peaked = predictive_entropy(&[0.97, 0.01, 0.01, 0.01]);
        assert!(e_uniform > e_peaked);
    }

    #[test]
    fn referral_gate_partitions_cases() {
        let gate = ReferralGate::new(0.5);
        let (kept, referred) = gate.partition(vec![(0.1, "a"), (0.9, "b"), (0.4, "c"), (0.6, "d")]);
        assert_eq!(kept, vec!["a", "c"]);
        assert_eq!(referred, vec!["b", "d"]);
    }

    #[test]
    fn quantile_calibration_brackets_the_reference() {
        let gate = ReferralGate::from_quantile(&[0.3, 0.1, 0.2, 0.4], 0.0);
        assert_eq!(gate.threshold(), 0.1);
        let gate = ReferralGate::from_quantile(&[0.3, 0.1, 0.2, 0.4], 1.0);
        assert_eq!(gate.threshold(), 0.4);
    }

    #[test]
    #[should_panic(expected = "empty reference")]
    fn quantile_needs_data() {
        let _ = ReferralGate::from_quantile(&[], 0.5);
    }
}
