use serde::{Deserialize, Serialize};

/// A 32-bit Fibonacci linear feedback shift register with taps at stages
/// 32, 30, 26 and 25 — the maximal-length polynomial the paper's BRNG is
/// built on (§V-B3, Fig. 8b).
///
/// Each [`Lfsr32::step`] shifts the register by one stage and returns the
/// bit read at the head, a uniformly distributed pseudo-random bit.
///
/// # Examples
///
/// ```
/// use fbcnn_bayes::Lfsr32;
///
/// let mut lfsr = Lfsr32::new(0xACE1_u32 as u32);
/// let bits: Vec<bool> = (0..8).map(|_| lfsr.step()).collect();
/// assert_eq!(bits.len(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lfsr32 {
    state: u32,
}

impl Lfsr32 {
    /// Creates an LFSR from a seed. A zero seed is mapped to a fixed
    /// non-zero state (an all-zero LFSR would be stuck forever).
    pub fn new(seed: u32) -> Self {
        Self {
            state: if seed == 0 { 0xDEAD_BEEF } else { seed },
        }
    }

    /// The current register contents.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Advances one cycle and returns the output bit (the bit shifted out
    /// at the head of the register).
    #[inline]
    pub fn step(&mut self) -> bool {
        let s = self.state;
        // Stage k (1-indexed) lives at bit (k - 1): taps 32, 30, 26, 25.
        let feedback = ((s >> 31) ^ (s >> 29) ^ (s >> 25) ^ (s >> 24)) & 1;
        let out = (s >> 31) & 1 == 1;
        self.state = (s << 1) | feedback;
        out
    }

    /// Produces the next `n`-bit value, most significant bit first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn next_bits(&mut self, n: usize) -> u32 {
        assert!(n <= 32, "cannot draw more than 32 bits at once");
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | u32::from(self.step());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut l = Lfsr32::new(0);
        assert_ne!(l.state(), 0);
        // And it still produces varied output.
        let bits: u32 = (0..64).map(|_| u32::from(l.step())).sum();
        assert!(bits > 10 && bits < 54);
    }

    #[test]
    fn state_never_reaches_zero() {
        let mut l = Lfsr32::new(1);
        for _ in 0..100_000 {
            l.step();
            assert_ne!(l.state(), 0);
        }
    }

    #[test]
    fn no_short_period() {
        let start = Lfsr32::new(0x1234_5678);
        let mut l = start;
        for _ in 0..1_000_000u32 {
            l.step();
            assert_ne!(l, start, "LFSR period is unexpectedly short");
        }
    }

    #[test]
    fn output_bits_are_balanced() {
        let mut l = Lfsr32::new(0xCAFE_BABE);
        let n = 100_000;
        let ones: u32 = (0..n).map(|_| u32::from(l.step())).sum();
        let ratio = ones as f64 / n as f64;
        assert!(
            (0.49..0.51).contains(&ratio),
            "bit balance {ratio} too far from 0.5"
        );
    }

    #[test]
    fn serial_correlation_is_low() {
        let mut l = Lfsr32::new(0xBEEF);
        let bits: Vec<bool> = (0..100_000).map(|_| l.step()).collect();
        let agree = bits.windows(2).filter(|w| w[0] == w[1]).count();
        let ratio = agree as f64 / (bits.len() - 1) as f64;
        assert!(
            (0.49..0.51).contains(&ratio),
            "serial correlation {ratio} too far from 0.5"
        );
    }

    #[test]
    fn next_bits_is_msb_first() {
        let mut a = Lfsr32::new(77);
        let mut b = Lfsr32::new(77);
        let v = a.next_bits(8);
        let mut expect = 0u32;
        for _ in 0..8 {
            expect = (expect << 1) | u32::from(b.step());
        }
        assert_eq!(v, expect);
        assert!(v < 256);
    }
}
