//! Typed errors for the Bayesian inference layer.

use fbcnn_nn::{NnError, NumericFault};
use std::fmt;

/// Errors from mask validation, guarded forward passes and isolated
/// MC-dropout runs.
#[derive(Debug, Clone, PartialEq)]
pub enum BayesError {
    /// A dropout-carrying node has no mask in the provided set.
    MissingMask {
        /// Graph node id of the conv node lacking its mask.
        node: usize,
    },
    /// A node's mask shape disagrees with the node's output shape.
    MaskShape {
        /// Graph node id.
        node: usize,
        /// The node's output shape.
        expected: String,
        /// The mask's shape.
        actual: String,
    },
    /// A graph-level violation (input shape, executor output shape).
    Graph(NnError),
    /// An activation failed its numeric health check.
    Numeric(NumericFault),
    /// Every sample of an isolated MC run was lost to worker panics.
    AllSamplesFailed {
        /// Samples requested.
        requested: usize,
    },
    /// A summary was requested over zero surviving samples.
    NoSamples,
    /// A cancellable run's deadline expired before even one sample
    /// completed (partial results require at least one row).
    Expired,
    /// Per-sample probability rows disagree on the class count.
    InconsistentClasses,
}

impl fmt::Display for BayesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BayesError::MissingMask { node } => {
                write!(f, "dropout node {node} has no mask")
            }
            BayesError::MaskShape {
                node,
                expected,
                actual,
            } => write!(
                f,
                "mask for node {node} has shape {actual}, expected {expected}"
            ),
            BayesError::Graph(e) => write!(f, "graph error: {e}"),
            BayesError::Numeric(e) => write!(f, "numeric fault: {e}"),
            BayesError::AllSamplesFailed { requested } => {
                write!(f, "all {requested} MC samples failed")
            }
            BayesError::NoSamples => write!(f, "no samples to summarize"),
            BayesError::Expired => {
                write!(f, "deadline expired before any sample completed")
            }
            BayesError::InconsistentClasses => {
                write!(f, "inconsistent class counts across samples")
            }
        }
    }
}

impl std::error::Error for BayesError {}

impl From<NnError> for BayesError {
    fn from(e: NnError) -> Self {
        BayesError::Graph(e)
    }
}

impl From<NumericFault> for BayesError {
    fn from(e: NumericFault) -> Self {
        BayesError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<BayesError> = vec![
            BayesError::MissingMask { node: 3 },
            BayesError::MaskShape {
                node: 1,
                expected: "6x28x28".into(),
                actual: "6x14x14".into(),
            },
            BayesError::Graph(NnError::EmptyGraph),
            BayesError::Numeric(NumericFault::NotFinite { node: 0, index: 4 }),
            BayesError::AllSamplesFailed { requested: 8 },
            BayesError::NoSamples,
            BayesError::Expired,
            BayesError::InconsistentClasses,
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_wrap() {
        let e: BayesError = NnError::EmptyGraph.into();
        assert_eq!(e, BayesError::Graph(NnError::EmptyGraph));
        let f: BayesError = NumericFault::NotFinite { node: 2, index: 0 }.into();
        assert!(matches!(f, BayesError::Numeric(_)));
    }
}
