//! Dropout masks and the mask-pooling unit.

use fbcnn_nn::{NodeId, Pool2d};
use fbcnn_tensor::BitMask;
use serde::{Deserialize, Serialize};

/// The dropout masks of one sample inference: one [`BitMask`] per
/// dropout-carrying node (convolution outputs), indexed by node id.
///
/// Bit `1` means *dropped* — the convention of the paper's BRNG output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DropoutMasks {
    masks: Vec<Option<BitMask>>,
}

impl DropoutMasks {
    /// An empty mask set covering `n_nodes` graph nodes.
    pub fn empty(n_nodes: usize) -> Self {
        Self {
            masks: vec![None; n_nodes],
        }
    }

    /// Installs the mask for a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn insert(&mut self, node: NodeId, mask: BitMask) {
        self.masks[node.0] = Some(mask);
    }

    /// The mask for a node, if that node carries dropout.
    pub fn get(&self, node: NodeId) -> Option<&BitMask> {
        self.masks.get(node.0).and_then(Option::as_ref)
    }

    /// Number of nodes covered (masked or not).
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether no node carries a mask.
    pub fn is_empty(&self) -> bool {
        self.masks.iter().all(Option::is_none)
    }

    /// Iterates over `(node, mask)` pairs for masked nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &BitMask)> {
        self.masks
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|m| (NodeId(i), m)))
    }

    /// Total dropped neurons across all masks.
    pub fn total_dropped(&self) -> usize {
        self.iter().map(|(_, m)| m.count_ones()).sum()
    }
}

/// Pools a dropout mask through a pooling layer — the paper's
/// *mask pooling* unit (§V-B2): the pooled bit is `1` (dropped) only when
/// **every** in-bounds bit in the window is `1`, because a single
/// surviving non-zero value wins the max.
///
/// The same rule is used for average pooling: an all-dropped window
/// produces an exactly-zero average, anything else generally does not.
///
/// # Examples
///
/// ```
/// use fbcnn_bayes::mask::pool_mask;
/// use fbcnn_nn::{Pool2d, PoolKind};
/// use fbcnn_tensor::{BitMask, Shape};
///
/// let mut m = BitMask::ones(Shape::new(1, 2, 2));
/// m.set_at(0, 0, 0, false);
/// let pool = Pool2d::new(PoolKind::Max, 2, 2);
/// let pooled = pool_mask(&m, &pool);
/// assert!(!pooled.get_at(0, 0, 0)); // one survivor keeps the output
/// ```
pub fn pool_mask(mask: &BitMask, pool: &Pool2d) -> BitMask {
    let in_shape = mask.shape();
    let out_shape = pool.output_shape(in_shape);
    let (in_h, in_w) = (in_shape.height(), in_shape.width());
    let k = pool.window();
    let stride = pool.stride();
    let pad = pool.padding() as isize;
    // Unpack once: byte reads beat per-bit extraction in the window scan.
    let bytes: Vec<u8> = (0..in_shape.len()).map(|i| u8::from(mask.get(i))).collect();
    let in_plane = in_shape.plane();
    let mut out = BitMask::zeros(out_shape);
    for ch in 0..out_shape.channels() {
        let plane = &bytes[ch * in_plane..(ch + 1) * in_plane];
        for r in 0..out_shape.height() {
            'cols: for c in 0..out_shape.width() {
                for i in 0..k {
                    let ri = (r * stride + i) as isize - pad;
                    if ri < 0 || ri as usize >= in_h {
                        continue;
                    }
                    let row = &plane[ri as usize * in_w..(ri as usize + 1) * in_w];
                    for j in 0..k {
                        let ci = (c * stride + j) as isize - pad;
                        if ci < 0 || ci as usize >= in_w {
                            continue;
                        }
                        if row[ci as usize] == 0 {
                            continue 'cols;
                        }
                    }
                }
                out.set_at(ch, r, c, true);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbcnn_nn::PoolKind;
    use fbcnn_tensor::Shape;

    #[test]
    fn all_dropped_window_stays_dropped() {
        let m = BitMask::ones(Shape::new(1, 4, 4));
        let pooled = pool_mask(&m, &Pool2d::new(PoolKind::Max, 2, 2));
        assert_eq!(pooled.count_ones(), pooled.len());
    }

    #[test]
    fn any_survivor_clears_the_bit() {
        let mut m = BitMask::ones(Shape::new(1, 4, 4));
        m.set_at(0, 2, 3, false); // survivor in the (1,1) window
        let pooled = pool_mask(&m, &Pool2d::new(PoolKind::Max, 2, 2));
        assert!(pooled.get_at(0, 0, 0));
        assert!(!pooled.get_at(0, 1, 1));
    }

    #[test]
    fn padded_window_ignores_out_of_bounds() {
        // 3x3/1 pad 1 pooling: the corner window has 4 in-bounds bits.
        let m = BitMask::ones(Shape::new(1, 3, 3));
        let pool = Pool2d::new(PoolKind::Max, 3, 1).with_pad(1);
        let pooled = pool_mask(&m, &pool);
        assert_eq!(pooled.shape(), Shape::new(1, 3, 3));
        assert_eq!(pooled.count_ones(), 9);
    }

    #[test]
    fn masks_serde_round_trip_is_bit_exact() {
        // Masks travel inside serialized model artifacts and sample
        // transcripts; a single flipped bit after the round trip would
        // silently change which neurons a replayed sample drops.
        let mut masks = DropoutMasks::empty(6);
        let mut dense = BitMask::zeros(Shape::new(2, 3, 3));
        for i in 0..dense.len() {
            dense.set(i, i % 3 == 0);
        }
        masks.insert(NodeId(1), dense);
        masks.insert(NodeId(4), BitMask::ones(Shape::new(1, 2, 2)));

        let json = serde_json::to_string(&masks).expect("serialize masks");
        let back: DropoutMasks = serde_json::from_str(&json).expect("reload masks");
        assert_eq!(back, masks, "mask container drifted through serde");
        let original = masks.get(NodeId(1)).expect("mask present");
        let reloaded = back.get(NodeId(1)).expect("mask survives");
        for i in 0..original.len() {
            assert_eq!(original.get(i), reloaded.get(i), "bit {i} flipped");
        }
        assert_eq!(back.total_dropped(), masks.total_dropped());
    }

    #[test]
    fn masks_container_roundtrip() {
        let mut masks = DropoutMasks::empty(5);
        assert!(masks.is_empty());
        let m = BitMask::ones(Shape::new(2, 2, 2));
        masks.insert(NodeId(3), m.clone());
        assert_eq!(masks.get(NodeId(3)), Some(&m));
        assert_eq!(masks.get(NodeId(1)), None);
        assert_eq!(masks.total_dropped(), 8);
        assert_eq!(masks.iter().count(), 1);
        assert!(!masks.is_empty());
        assert_eq!(masks.len(), 5);
    }
}
