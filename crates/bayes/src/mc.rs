use crate::cancel::CancelToken;
use crate::mask::DropoutMasks;
use crate::{metrics, BayesError, BayesianNetwork, SampleRun};
use fbcnn_nn::Workspace;
use fbcnn_tensor::{stats, Tensor};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The Monte-Carlo-dropout runner: `T` stochastic forward passes over the
/// same input (paper §II-B).
///
/// # Examples
///
/// ```
/// use fbcnn_bayes::{BayesianNetwork, McDropout};
/// use fbcnn_nn::models;
/// use fbcnn_tensor::Tensor;
///
/// let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
/// let pred = McDropout::new(4, 0).run(&bnet, &Tensor::zeros(bnet.network().input_shape()));
/// assert_eq!(pred.sample_probs.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct McDropout {
    t: usize,
    seed: u64,
}

/// The outcome of a complete MC-dropout inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Per-sample softmax probabilities (`T` rows).
    pub sample_probs: Vec<Vec<f32>>,
    /// The predictive mean `ȳ = (1/T) Σ yₜ` (paper Eq. 4), over softmax
    /// outputs.
    pub mean: Vec<f32>,
    /// The predicted class (argmax of the mean).
    pub class: usize,
    /// Predictive entropy of the mean distribution (total uncertainty).
    pub predictive_entropy: f32,
    /// Mutual information between prediction and posterior (epistemic
    /// uncertainty, a.k.a. BALD).
    pub mutual_information: f32,
}

/// The outcome of a fault-isolated MC-dropout run
/// ([`McDropout::run_parallel_isolated`]): the summary over surviving
/// samples plus the indices of samples lost to worker panics.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolatedRun {
    /// Summary over the surviving samples.
    pub prediction: Prediction,
    /// Indices of samples whose inference panicked (empty on a clean
    /// run).
    pub failed: Vec<usize>,
}

/// The outcome of a deadline-capped MC-dropout run
/// ([`McDropout::run_cancellable`]): the summary over the samples that
/// completed before the token expired.
///
/// Because samples are i.i.d. and sample `t` always uses
/// `generate_masks(seed, t)`, a run that completed `k < T` samples is
/// *bit-identical* to a `McDropout::new(k, seed).run(..)` — a partial
/// result is a smaller-T result, never a corrupted one.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialRun {
    /// Summary over the completed samples.
    pub prediction: Prediction,
    /// Samples that completed before expiry.
    pub completed: usize,
    /// Whether the token expired before all `T` samples ran.
    pub expired: bool,
}

/// One request of a batched exact MC-dropout run
/// ([`McDropout::run_batch`]): an input plus its private mask seed.
///
/// In a serving layer the seed comes from
/// [`crate::derive_request_seed`], which guarantees two requests in one
/// batch never share an LFSR stream.
#[derive(Debug, Clone, Copy)]
pub struct McRequest<'a> {
    /// The input image.
    pub input: &'a Tensor,
    /// The request's mask seed; sample `t` uses
    /// `generate_masks(seed, t)` exactly as a standalone run would.
    pub seed: u64,
}

/// Everything a complete MC-dropout run produced — the raw material for
/// the characterization, prediction and accelerator experiments.
///
/// Holding the full trace (pre-inference plus every sample's masks and
/// activations) lets each hardware configuration be evaluated without
/// re-running the functional network.
#[derive(Debug, Clone)]
pub struct McTrace {
    /// The dropout-free pre-inference.
    pub pre: SampleRun,
    /// Per-sample `(masks, run)` pairs, `T` of them.
    pub samples: Vec<(DropoutMasks, SampleRun)>,
}

impl McDropout {
    /// Creates a runner performing `t` sample inferences.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`.
    pub fn new(t: usize, seed: u64) -> Self {
        assert!(t > 0, "MC dropout needs at least one sample");
        Self { t, seed }
    }

    /// Number of sample inferences `T`.
    pub fn samples(&self) -> usize {
        self.t
    }

    /// The mask seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Runs `T` stochastic passes and summarizes them.
    ///
    /// All `T` passes share one [`Workspace`], so the im2col scratch
    /// buffer is allocated once and reused for every sample.
    pub fn run(&self, bnet: &BayesianNetwork, input: &Tensor) -> Prediction {
        let _span =
            fbcnn_telemetry::span_with("mc_run", || vec![("mode".into(), "sequential".into())]);
        fbcnn_telemetry::counter_add("mc_samples", &[("path", "exact")], self.t as u64);
        let mut ws = Workspace::new();
        let sample_probs: Vec<Vec<f32>> = (0..self.t)
            .map(|t| {
                let _sample = fbcnn_telemetry::span_with("mc_sample", || {
                    vec![("sample".into(), t.to_string())]
                });
                let masks = bnet.generate_masks(self.seed, t);
                let run = bnet.forward_sample_ws(input, &masks, &mut ws);
                stats::softmax(run.logits())
            })
            .collect();
        Self::summarize(sample_probs)
    }

    /// Like [`McDropout::run`], but checks `cancel` before every sample:
    /// when the token expires mid-run the completed rows are summarized
    /// and returned as a [`PartialRun`] instead of being discarded.
    ///
    /// Rows are produced in the same order with the same masks as
    /// [`McDropout::run`], so a run that completed `k` samples returns a
    /// prediction bit-identical to `McDropout::new(k, seed).run(..)` —
    /// the partial-T proptests pin this.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::Graph`] when the input does not fit the
    /// network and [`BayesError::Expired`] when the token expired before
    /// even one sample completed (there is no partial result to return).
    pub fn run_cancellable(
        &self,
        bnet: &BayesianNetwork,
        input: &Tensor,
        cancel: &CancelToken,
    ) -> Result<PartialRun, BayesError> {
        bnet.network().check_input(input)?;
        let _span =
            fbcnn_telemetry::span_with("mc_run", || vec![("mode".into(), "cancellable".into())]);
        let mut ws = Workspace::new();
        let mut rows: Vec<Vec<f32>> = Vec::with_capacity(self.t);
        let mut expired = false;
        for t in 0..self.t {
            if cancel.checkpoint() {
                expired = true;
                break;
            }
            let _sample =
                fbcnn_telemetry::span_with("mc_sample", || vec![("sample".into(), t.to_string())]);
            fbcnn_telemetry::counter_add("mc_samples", &[("path", "cancellable")], 1);
            let masks = bnet.generate_masks(self.seed, t);
            let run = bnet.forward_sample_ws(input, &masks, &mut ws);
            rows.push(stats::softmax(run.logits()));
        }
        if rows.is_empty() {
            return Err(BayesError::Expired);
        }
        let completed = rows.len();
        Ok(PartialRun {
            prediction: Self::try_summarize(rows)?,
            completed,
            expired,
        })
    }

    /// Like [`McDropout::run`], but distributes the `T` independent
    /// sample inferences over `threads` worker threads (crossbeam scoped
    /// threads; the samples share nothing but the read-only network, and
    /// each worker reuses its own [`Workspace`] across its samples).
    ///
    /// The result is bit-identical to the sequential [`McDropout::run`]:
    /// sample `t` always uses the masks `generate_masks(seed, t)` and the
    /// rows are reassembled in order.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_parallel(
        &self,
        bnet: &BayesianNetwork,
        input: &Tensor,
        threads: usize,
    ) -> Prediction {
        assert!(threads > 0, "need at least one worker thread");
        // The workers run under catch_unwind isolation; a lost sample
        // surfaces as a clean panic here instead of an aborted scope.
        match self.run_parallel_isolated(bnet, input, threads) {
            Ok(run) if run.failed.is_empty() => run.prediction,
            Ok(run) => panic!(
                "{} of {} MC samples panicked (indices {:?})",
                run.failed.len(),
                self.t,
                run.failed
            ),
            Err(e) => panic!("MC-dropout run failed: {e}"),
        }
    }

    /// Dispatches to [`McDropout::run`] (when `threads <= 1`) or
    /// [`McDropout::run_parallel`] — the convenience form call sites use
    /// when the thread count comes from configuration. The result does
    /// not depend on `threads`.
    pub fn run_with_threads(
        &self,
        bnet: &BayesianNetwork,
        input: &Tensor,
        threads: usize,
    ) -> Prediction {
        if threads > 1 {
            self.run_parallel(bnet, input, threads)
        } else {
            self.run(bnet, input)
        }
    }

    /// Fault-isolated parallel run: like [`McDropout::run_parallel`], but
    /// every sample inference executes inside `catch_unwind`, so one
    /// poisoned sample (corrupted mask, malformed tensor, any library
    /// panic) is dropped from the summary instead of aborting the whole
    /// batch — soft-error containment for the T-sample loop.
    ///
    /// Surviving samples are bit-identical to the sequential
    /// [`McDropout::run`]; the indices of lost samples are reported in
    /// [`IsolatedRun::failed`].
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::Graph`] if `input` does not match the
    /// network (nothing could ever succeed) and
    /// [`BayesError::AllSamplesFailed`] when no sample survives.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_parallel_isolated(
        &self,
        bnet: &BayesianNetwork,
        input: &Tensor,
        threads: usize,
    ) -> Result<IsolatedRun, BayesError> {
        self.run_isolated_with_masks(bnet, input, threads, |t| bnet.generate_masks(self.seed, t))
    }

    /// The general form of [`McDropout::run_parallel_isolated`]: sample
    /// `t` uses the masks `masks_for(t)` instead of the built-in
    /// generator. This is the entry point the fault-injection harness
    /// uses to poison individual samples and prove they are contained.
    ///
    /// # Errors
    ///
    /// See [`McDropout::run_parallel_isolated`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_isolated_with_masks(
        &self,
        bnet: &BayesianNetwork,
        input: &Tensor,
        threads: usize,
        masks_for: impl Fn(usize) -> DropoutMasks + Sync,
    ) -> Result<IsolatedRun, BayesError> {
        assert!(threads > 0, "need at least one worker thread");
        bnet.network().check_input(input)?;
        let _span =
            fbcnn_telemetry::span_with("mc_run", || vec![("mode".into(), "isolated".into())]);
        fbcnn_telemetry::counter_add("mc_samples", &[("path", "isolated")], self.t as u64);
        let threads = threads.min(self.t);
        let masks_for = &masks_for;
        let mut rows: Vec<Option<Vec<f32>>> = vec![None; self.t];
        let scope_result = crossbeam::thread::scope(|scope| {
            for (worker, chunk) in rows.chunks_mut(self.t.div_ceil(threads)).enumerate() {
                let base = worker * self.t.div_ceil(threads);
                scope.spawn(move |_| {
                    let mut ws = Workspace::new();
                    for (offset, slot) in chunk.iter_mut().enumerate() {
                        let t = base + offset;
                        let _sample = fbcnn_telemetry::span_with("mc_sample", || {
                            vec![("sample".into(), t.to_string())]
                        });
                        *slot = catch_unwind(AssertUnwindSafe(|| {
                            let masks = masks_for(t);
                            let run = bnet.forward_sample_ws(input, &masks, &mut ws);
                            stats::softmax(run.logits())
                        }))
                        .ok();
                        if slot.is_none() {
                            // The panic may have left the scratch buffers
                            // in a torn state; start the next sample clean.
                            ws = Workspace::new();
                        }
                    }
                });
            }
        });
        // Workers never unwind past catch_unwind, so the scope itself
        // cannot fail; keep a typed path anyway instead of unwrapping.
        if scope_result.is_err() {
            return Err(BayesError::AllSamplesFailed { requested: self.t });
        }
        let failed: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_none().then_some(i))
            .collect();
        if !failed.is_empty() {
            fbcnn_telemetry::counter_add("mc_samples_failed", &[], failed.len() as u64);
        }
        let surviving: Vec<Vec<f32>> = rows.into_iter().flatten().collect();
        if surviving.is_empty() {
            return Err(BayesError::AllSamplesFailed { requested: self.t });
        }
        Ok(IsolatedRun {
            prediction: Self::try_summarize(surviving)?,
            failed,
        })
    }

    /// Batched exact MC-dropout: serves every request's `T` samples from
    /// one flattened work list, interleaving the `(request, sample)`
    /// units across `threads` crossbeam-scoped workers — one worker may
    /// finish request A's tail while another starts request B, so the
    /// batch drains without per-request barriers. Each worker reuses its
    /// own [`Workspace`] across all units it executes.
    ///
    /// **Composition invariance:** request `r`'s result depends only on
    /// `(input_r, seed_r, T)` — sample `t` always uses the masks
    /// `generate_masks(seed_r, t)` and rows are reassembled in order —
    /// so the outcome is bit-identical to a standalone
    /// `McDropout::new(T, seed_r).run(bnet, input_r)` regardless of
    /// batch size, ordering, thread count, or which other requests share
    /// the batch. The runner's own seed is not consulted; each request
    /// carries its own (see [`crate::derive_request_seed`]).
    ///
    /// Every unit executes under `catch_unwind`, so a poisoned request
    /// cannot take its batch-mates down: lost samples are reported per
    /// request in [`IsolatedRun::failed`].
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::Graph`] if any request's input does not fit
    /// the network (checked up front, before any work runs) and
    /// [`BayesError::AllSamplesFailed`] when some request loses every
    /// sample.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_batch(
        &self,
        bnet: &BayesianNetwork,
        requests: &[McRequest<'_>],
        threads: usize,
    ) -> Result<Vec<IsolatedRun>, BayesError> {
        assert!(threads > 0, "need at least one worker thread");
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        for req in requests {
            bnet.network().check_input(req.input)?;
        }
        let _span = fbcnn_telemetry::span_with("mc_run", || {
            vec![
                ("mode".into(), "batch".into()),
                ("requests".into(), requests.len().to_string()),
            ]
        });
        let units = requests.len() * self.t;
        fbcnn_telemetry::counter_add("mc_samples", &[("path", "batch")], units as u64);
        let threads = threads.min(units);
        let mut rows: Vec<Option<Vec<f32>>> = vec![None; units];
        let chunk_len = units.div_ceil(threads);
        let scope_result = crossbeam::thread::scope(|scope| {
            for (worker, chunk) in rows.chunks_mut(chunk_len).enumerate() {
                let base = worker * chunk_len;
                scope.spawn(move |_| {
                    let mut ws = Workspace::new();
                    for (offset, slot) in chunk.iter_mut().enumerate() {
                        let unit = base + offset;
                        let (r, s) = (unit / self.t, unit % self.t);
                        let req = &requests[r];
                        let _sample = fbcnn_telemetry::span_with("mc_sample", || {
                            vec![
                                ("request".into(), r.to_string()),
                                ("sample".into(), s.to_string()),
                            ]
                        });
                        *slot = catch_unwind(AssertUnwindSafe(|| {
                            let masks = bnet.generate_masks(req.seed, s);
                            let run = bnet.forward_sample_ws(req.input, &masks, &mut ws);
                            stats::softmax(run.logits())
                        }))
                        .ok();
                        if slot.is_none() {
                            // The panic may have torn the scratch buffers;
                            // start the next unit clean.
                            ws = Workspace::new();
                        }
                    }
                });
            }
        });
        if scope_result.is_err() {
            return Err(BayesError::AllSamplesFailed { requested: units });
        }
        let mut out = Vec::with_capacity(requests.len());
        for request_rows in rows.chunks(self.t) {
            let failed: Vec<usize> = request_rows
                .iter()
                .enumerate()
                .filter_map(|(i, row)| row.is_none().then_some(i))
                .collect();
            if !failed.is_empty() {
                fbcnn_telemetry::counter_add("mc_samples_failed", &[], failed.len() as u64);
            }
            let surviving: Vec<Vec<f32>> = request_rows.iter().flatten().cloned().collect();
            if surviving.is_empty() {
                return Err(BayesError::AllSamplesFailed { requested: self.t });
            }
            out.push(IsolatedRun {
                prediction: Self::try_summarize(surviving)?,
                failed,
            });
        }
        Ok(out)
    }

    /// Runs `T` stochastic passes plus the pre-inference, keeping the full
    /// trace. Shares one [`Workspace`] across the sample passes, like
    /// [`McDropout::run`].
    pub fn run_trace(&self, bnet: &BayesianNetwork, input: &Tensor) -> McTrace {
        let pre = bnet.forward_deterministic(input);
        let mut ws = Workspace::new();
        let samples = (0..self.t)
            .map(|t| {
                let masks = bnet.generate_masks(self.seed, t);
                let run = bnet.forward_sample_ws(input, &masks, &mut ws);
                (masks, run)
            })
            .collect();
        McTrace { pre, samples }
    }

    /// Builds a [`Prediction`] from per-sample probability rows,
    /// reporting malformed inputs as typed errors.
    ///
    /// # Errors
    ///
    /// Returns [`BayesError::NoSamples`] for an empty row set and
    /// [`BayesError::InconsistentClasses`] when rows disagree on length.
    pub fn try_summarize(sample_probs: Vec<Vec<f32>>) -> Result<Prediction, BayesError> {
        if sample_probs.is_empty() {
            return Err(BayesError::NoSamples);
        }
        let classes = sample_probs[0].len();
        if !sample_probs.iter().all(|p| p.len() == classes) {
            return Err(BayesError::InconsistentClasses);
        }
        Ok(Self::summarize(sample_probs))
    }

    /// Builds a [`Prediction`] from per-sample probability rows.
    ///
    /// # Panics
    ///
    /// Panics if `sample_probs` is empty or rows have differing lengths.
    pub fn summarize(sample_probs: Vec<Vec<f32>>) -> Prediction {
        assert!(!sample_probs.is_empty(), "no samples to summarize");
        let classes = sample_probs[0].len();
        assert!(
            sample_probs.iter().all(|p| p.len() == classes),
            "inconsistent class counts across samples"
        );
        let mut mean = vec![0.0f32; classes];
        for probs in &sample_probs {
            for (m, p) in mean.iter_mut().zip(probs) {
                *m += p;
            }
        }
        for m in &mut mean {
            *m /= sample_probs.len() as f32;
        }
        let class = stats::argmax(&mean);
        let predictive_entropy = stats::entropy(&mean);
        let mutual_information = metrics::mutual_information(&sample_probs);
        Prediction {
            sample_probs,
            mean,
            class,
            predictive_entropy,
            mutual_information,
        }
    }
}

impl McTrace {
    /// Summarizes the trace's samples into a [`Prediction`].
    pub fn prediction(&self) -> Prediction {
        McDropout::summarize(
            self.samples
                .iter()
                .map(|(_, run)| stats::softmax(run.logits()))
                .collect(),
        )
    }

    /// Number of samples `T`.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbcnn_nn::models;
    use fbcnn_tensor::Shape;

    fn setup() -> (BayesianNetwork, Tensor) {
        let bnet = BayesianNetwork::new(models::lenet5(3), 0.3);
        let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
            ((r * 5 + c) % 7) as f32 / 7.0
        });
        (bnet, input)
    }

    #[test]
    fn mean_is_average_of_samples() {
        let (bnet, input) = setup();
        let pred = McDropout::new(6, 1).run(&bnet, &input);
        let classes = pred.mean.len();
        for k in 0..classes {
            let avg: f32 = pred.sample_probs.iter().map(|p| p[k]).sum::<f32>()
                / pred.sample_probs.len() as f32;
            assert!((pred.mean[k] - avg).abs() < 1e-6);
        }
        assert!((pred.mean.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let (bnet, input) = setup();
        let a = McDropout::new(3, 9).run(&bnet, &input);
        let b = McDropout::new(3, 9).run(&bnet, &input);
        assert_eq!(a, b);
        let c = McDropout::new(3, 10).run(&bnet, &input);
        assert_ne!(a.sample_probs, c.sample_probs);
    }

    #[test]
    fn trace_prediction_matches_direct_run() {
        let (bnet, input) = setup();
        let runner = McDropout::new(4, 2);
        let direct = runner.run(&bnet, &input);
        let trace = runner.run_trace(&bnet, &input);
        assert_eq!(trace.len(), 4);
        assert!(!trace.is_empty());
        assert_eq!(trace.prediction(), direct);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        let (bnet, input) = setup();
        let runner = McDropout::new(7, 13);
        let seq = runner.run(&bnet, &input);
        for threads in [1, 2, 3, 16] {
            let par = runner.run_parallel(&bnet, &input, threads);
            assert_eq!(seq, par, "divergence at {threads} threads");
        }
    }

    #[test]
    fn uncertainty_is_nonnegative_and_bounded() {
        let (bnet, input) = setup();
        let pred = McDropout::new(8, 3).run(&bnet, &input);
        assert!(pred.predictive_entropy >= 0.0);
        assert!(pred.mutual_information >= -1e-5);
        assert!(pred.mutual_information <= pred.predictive_entropy + 1e-5);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = McDropout::new(0, 0);
    }

    #[test]
    fn isolated_run_matches_sequential_when_healthy() {
        let (bnet, input) = setup();
        let runner = McDropout::new(5, 21);
        let seq = runner.run(&bnet, &input);
        for threads in [1, 3] {
            let iso = runner
                .run_parallel_isolated(&bnet, &input, threads)
                .unwrap();
            assert!(iso.failed.is_empty());
            assert_eq!(iso.prediction, seq, "divergence at {threads} threads");
        }
    }

    #[test]
    fn isolated_run_contains_poisoned_samples() {
        let (bnet, input) = setup();
        let runner = McDropout::new(6, 21);
        let clean = runner.run(&bnet, &input);
        // Sample 2 gets a mask set with a wrong-shaped mask: its forward
        // pass panics inside the worker, the other five survive.
        let iso = runner
            .run_isolated_with_masks(&bnet, &input, 2, |t| {
                let mut masks = bnet.generate_masks(21, t);
                if t == 2 {
                    let node = bnet.dropout_nodes()[0];
                    masks.insert(node, fbcnn_tensor::BitMask::ones(Shape::new(1, 2, 2)));
                }
                masks
            })
            .expect("five samples survive");
        assert_eq!(iso.failed, vec![2]);
        assert_eq!(iso.prediction.sample_probs.len(), 5);
        // Surviving rows are bit-identical to the clean run's rows.
        for (i, t) in [0usize, 1, 3, 4, 5].into_iter().enumerate() {
            assert_eq!(iso.prediction.sample_probs[i], clean.sample_probs[t]);
        }
    }

    #[test]
    fn isolated_run_reports_total_loss() {
        let (bnet, input) = setup();
        let runner = McDropout::new(3, 21);
        let err = runner
            .run_isolated_with_masks(&bnet, &input, 2, |_| {
                // Every sample carries a wrong-shaped mask: the in-worker
                // apply_drop_mask panic kills all of them.
                let mut masks = DropoutMasks::empty(bnet.network().len());
                masks.insert(
                    bnet.dropout_nodes()[0],
                    fbcnn_tensor::BitMask::ones(Shape::new(1, 2, 2)),
                );
                masks
            })
            .unwrap_err();
        assert_eq!(err, BayesError::AllSamplesFailed { requested: 3 });
    }

    #[test]
    fn isolated_run_rejects_bad_input_shape_as_typed_error() {
        let (bnet, _) = setup();
        let runner = McDropout::new(3, 21);
        let bad = Tensor::zeros(Shape::new(3, 3, 3));
        assert!(matches!(
            runner.run_parallel_isolated(&bnet, &bad, 2),
            Err(BayesError::Graph(_))
        ));
    }

    #[test]
    fn batch_requests_match_standalone_runs_bit_for_bit() {
        let (bnet, input) = setup();
        let mut shifted = input.clone();
        shifted.set(0, 0.9);
        let runner = McDropout::new(5, 0); // runner seed is not consulted
        let requests = [
            McRequest {
                input: &input,
                seed: crate::derive_request_seed(77, 0),
            },
            McRequest {
                input: &shifted,
                seed: crate::derive_request_seed(77, 1),
            },
            McRequest {
                input: &input,
                seed: crate::derive_request_seed(77, 2),
            },
        ];
        for threads in [1, 2, 4] {
            let batch = runner.run_batch(&bnet, &requests, threads).unwrap();
            assert_eq!(batch.len(), 3);
            for (req, run) in requests.iter().zip(&batch) {
                assert!(run.failed.is_empty());
                let standalone = McDropout::new(5, req.seed).run(&bnet, req.input);
                assert_eq!(
                    run.prediction, standalone,
                    "batch diverged from standalone at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn batch_results_are_invariant_under_composition() {
        let (bnet, input) = setup();
        let runner = McDropout::new(3, 0);
        let reqs: Vec<McRequest> = (0..4)
            .map(|id| McRequest {
                input: &input,
                seed: crate::derive_request_seed(9, id),
            })
            .collect();
        let full = runner.run_batch(&bnet, &reqs, 2).unwrap();
        // Reversed ordering: request r's result only moves position.
        let reversed: Vec<McRequest> = reqs.iter().rev().copied().collect();
        let rev = runner.run_batch(&bnet, &reversed, 2).unwrap();
        for (i, run) in full.iter().enumerate() {
            assert_eq!(
                run.prediction,
                rev[3 - i].prediction,
                "order changed result"
            );
        }
        // A sub-batch: different batch-mates, same per-request result.
        let sub = runner.run_batch(&bnet, &reqs[1..3], 2).unwrap();
        assert_eq!(sub[0].prediction, full[1].prediction);
        assert_eq!(sub[1].prediction, full[2].prediction);
    }

    #[test]
    fn derived_request_seeds_yield_distinct_masks() {
        // Regression for the batched-serving seed audit: with one user
        // seed, every request id must draw its own LFSR streams — no two
        // requests' masks may coincide for any (t, t') sample pair.
        let (bnet, _) = setup();
        let user_seed = 0xFB_C0DE;
        let t = 4;
        let mut seen = std::collections::HashSet::new();
        for id in 0..8u64 {
            let seed = crate::derive_request_seed(user_seed, id);
            for s in 0..t {
                let masks = bnet.generate_masks(seed, s);
                let bits: Vec<(usize, Vec<usize>)> = masks
                    .iter()
                    .map(|(node, m)| (node.0, m.iter_set().collect()))
                    .collect();
                assert!(
                    seen.insert(bits),
                    "request {id} sample {s} replayed another request's mask stream"
                );
            }
        }
    }

    #[test]
    fn batch_rejects_bad_input_before_running() {
        let (bnet, input) = setup();
        let bad = Tensor::zeros(Shape::new(3, 3, 3));
        let runner = McDropout::new(3, 0);
        let err = runner
            .run_batch(
                &bnet,
                &[
                    McRequest {
                        input: &input,
                        seed: 1,
                    },
                    McRequest {
                        input: &bad,
                        seed: 2,
                    },
                ],
                2,
            )
            .unwrap_err();
        assert!(matches!(err, BayesError::Graph(_)));
    }

    #[test]
    fn empty_batch_is_ok_and_empty() {
        let (bnet, _) = setup();
        assert!(McDropout::new(3, 0)
            .run_batch(&bnet, &[], 2)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn cancellable_run_without_limits_matches_run() {
        let (bnet, input) = setup();
        let runner = McDropout::new(5, 17);
        let full = runner.run(&bnet, &input);
        let partial = runner
            .run_cancellable(&bnet, &input, &CancelToken::never())
            .unwrap();
        assert!(!partial.expired);
        assert_eq!(partial.completed, 5);
        assert_eq!(partial.prediction, full);
    }

    #[test]
    fn budgeted_run_equals_smaller_t_run_bitwise() {
        let (bnet, input) = setup();
        let t = 6;
        for k in 1..t {
            let partial = McDropout::new(t, 31)
                .run_cancellable(&bnet, &input, &CancelToken::with_sample_budget(k as u64))
                .unwrap();
            assert!(partial.expired, "budget {k} must expire a {t}-sample run");
            assert_eq!(partial.completed, k);
            let reference = McDropout::new(k, 31).run(&bnet, &input);
            assert_eq!(partial.prediction, reference, "k = {k} diverged");
        }
    }

    #[test]
    fn zero_budget_is_a_typed_expiry() {
        let (bnet, input) = setup();
        let err = McDropout::new(4, 2)
            .run_cancellable(&bnet, &input, &CancelToken::with_sample_budget(0))
            .unwrap_err();
        assert_eq!(err, BayesError::Expired);
    }

    #[test]
    fn cancellable_run_rejects_bad_input_shape() {
        let (bnet, _) = setup();
        let bad = Tensor::zeros(Shape::new(3, 3, 3));
        assert!(matches!(
            McDropout::new(4, 2).run_cancellable(&bnet, &bad, &CancelToken::never()),
            Err(BayesError::Graph(_))
        ));
    }

    #[test]
    fn try_summarize_reports_malformed_rows() {
        assert_eq!(
            McDropout::try_summarize(Vec::new()).unwrap_err(),
            BayesError::NoSamples
        );
        assert_eq!(
            McDropout::try_summarize(vec![vec![0.5, 0.5], vec![1.0]]).unwrap_err(),
            BayesError::InconsistentClasses
        );
        let ok = McDropout::try_summarize(vec![vec![0.25, 0.75]]).unwrap();
        assert_eq!(ok.class, 1);
    }
}
