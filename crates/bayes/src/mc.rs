use crate::mask::DropoutMasks;
use crate::{metrics, BayesianNetwork, SampleRun};
use fbcnn_nn::Workspace;
use fbcnn_tensor::{stats, Tensor};
use serde::{Deserialize, Serialize};

/// The Monte-Carlo-dropout runner: `T` stochastic forward passes over the
/// same input (paper §II-B).
///
/// # Examples
///
/// ```
/// use fbcnn_bayes::{BayesianNetwork, McDropout};
/// use fbcnn_nn::models;
/// use fbcnn_tensor::Tensor;
///
/// let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
/// let pred = McDropout::new(4, 0).run(&bnet, &Tensor::zeros(bnet.network().input_shape()));
/// assert_eq!(pred.sample_probs.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct McDropout {
    t: usize,
    seed: u64,
}

/// The outcome of a complete MC-dropout inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Per-sample softmax probabilities (`T` rows).
    pub sample_probs: Vec<Vec<f32>>,
    /// The predictive mean `ȳ = (1/T) Σ yₜ` (paper Eq. 4), over softmax
    /// outputs.
    pub mean: Vec<f32>,
    /// The predicted class (argmax of the mean).
    pub class: usize,
    /// Predictive entropy of the mean distribution (total uncertainty).
    pub predictive_entropy: f32,
    /// Mutual information between prediction and posterior (epistemic
    /// uncertainty, a.k.a. BALD).
    pub mutual_information: f32,
}

/// Everything a complete MC-dropout run produced — the raw material for
/// the characterization, prediction and accelerator experiments.
///
/// Holding the full trace (pre-inference plus every sample's masks and
/// activations) lets each hardware configuration be evaluated without
/// re-running the functional network.
#[derive(Debug, Clone)]
pub struct McTrace {
    /// The dropout-free pre-inference.
    pub pre: SampleRun,
    /// Per-sample `(masks, run)` pairs, `T` of them.
    pub samples: Vec<(DropoutMasks, SampleRun)>,
}

impl McDropout {
    /// Creates a runner performing `t` sample inferences.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`.
    pub fn new(t: usize, seed: u64) -> Self {
        assert!(t > 0, "MC dropout needs at least one sample");
        Self { t, seed }
    }

    /// Number of sample inferences `T`.
    pub fn samples(&self) -> usize {
        self.t
    }

    /// The mask seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Runs `T` stochastic passes and summarizes them.
    ///
    /// All `T` passes share one [`Workspace`], so the im2col scratch
    /// buffer is allocated once and reused for every sample.
    pub fn run(&self, bnet: &BayesianNetwork, input: &Tensor) -> Prediction {
        let mut ws = Workspace::new();
        let sample_probs: Vec<Vec<f32>> = (0..self.t)
            .map(|t| {
                let masks = bnet.generate_masks(self.seed, t);
                let run = bnet.forward_sample_ws(input, &masks, &mut ws);
                stats::softmax(run.logits())
            })
            .collect();
        Self::summarize(sample_probs)
    }

    /// Like [`McDropout::run`], but distributes the `T` independent
    /// sample inferences over `threads` worker threads (crossbeam scoped
    /// threads; the samples share nothing but the read-only network, and
    /// each worker reuses its own [`Workspace`] across its samples).
    ///
    /// The result is bit-identical to the sequential [`McDropout::run`]:
    /// sample `t` always uses the masks `generate_masks(seed, t)` and the
    /// rows are reassembled in order.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_parallel(
        &self,
        bnet: &BayesianNetwork,
        input: &Tensor,
        threads: usize,
    ) -> Prediction {
        assert!(threads > 0, "need at least one worker thread");
        let threads = threads.min(self.t);
        let mut sample_probs: Vec<Vec<f32>> = vec![Vec::new(); self.t];
        crossbeam::thread::scope(|scope| {
            for (worker, chunk) in sample_probs
                .chunks_mut(self.t.div_ceil(threads))
                .enumerate()
            {
                let base = worker * self.t.div_ceil(threads);
                scope.spawn(move |_| {
                    let mut ws = Workspace::new();
                    for (offset, slot) in chunk.iter_mut().enumerate() {
                        let t = base + offset;
                        let masks = bnet.generate_masks(self.seed, t);
                        let run = bnet.forward_sample_ws(input, &masks, &mut ws);
                        *slot = stats::softmax(run.logits());
                    }
                });
            }
        })
        .expect("worker thread panicked");
        Self::summarize(sample_probs)
    }

    /// Dispatches to [`McDropout::run`] (when `threads <= 1`) or
    /// [`McDropout::run_parallel`] — the convenience form call sites use
    /// when the thread count comes from configuration. The result does
    /// not depend on `threads`.
    pub fn run_with_threads(
        &self,
        bnet: &BayesianNetwork,
        input: &Tensor,
        threads: usize,
    ) -> Prediction {
        if threads > 1 {
            self.run_parallel(bnet, input, threads)
        } else {
            self.run(bnet, input)
        }
    }

    /// Runs `T` stochastic passes plus the pre-inference, keeping the full
    /// trace. Shares one [`Workspace`] across the sample passes, like
    /// [`McDropout::run`].
    pub fn run_trace(&self, bnet: &BayesianNetwork, input: &Tensor) -> McTrace {
        let pre = bnet.forward_deterministic(input);
        let mut ws = Workspace::new();
        let samples = (0..self.t)
            .map(|t| {
                let masks = bnet.generate_masks(self.seed, t);
                let run = bnet.forward_sample_ws(input, &masks, &mut ws);
                (masks, run)
            })
            .collect();
        McTrace { pre, samples }
    }

    /// Builds a [`Prediction`] from per-sample probability rows.
    ///
    /// # Panics
    ///
    /// Panics if `sample_probs` is empty or rows have differing lengths.
    pub fn summarize(sample_probs: Vec<Vec<f32>>) -> Prediction {
        assert!(!sample_probs.is_empty(), "no samples to summarize");
        let classes = sample_probs[0].len();
        assert!(
            sample_probs.iter().all(|p| p.len() == classes),
            "inconsistent class counts across samples"
        );
        let mut mean = vec![0.0f32; classes];
        for probs in &sample_probs {
            for (m, p) in mean.iter_mut().zip(probs) {
                *m += p;
            }
        }
        for m in &mut mean {
            *m /= sample_probs.len() as f32;
        }
        let class = stats::argmax(&mean);
        let predictive_entropy = stats::entropy(&mean);
        let mutual_information = metrics::mutual_information(&sample_probs);
        Prediction {
            sample_probs,
            mean,
            class,
            predictive_entropy,
            mutual_information,
        }
    }
}

impl McTrace {
    /// Summarizes the trace's samples into a [`Prediction`].
    pub fn prediction(&self) -> Prediction {
        McDropout::summarize(
            self.samples
                .iter()
                .map(|(_, run)| stats::softmax(run.logits()))
                .collect(),
        )
    }

    /// Number of samples `T`.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbcnn_nn::models;

    fn setup() -> (BayesianNetwork, Tensor) {
        let bnet = BayesianNetwork::new(models::lenet5(3), 0.3);
        let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
            ((r * 5 + c) % 7) as f32 / 7.0
        });
        (bnet, input)
    }

    #[test]
    fn mean_is_average_of_samples() {
        let (bnet, input) = setup();
        let pred = McDropout::new(6, 1).run(&bnet, &input);
        let classes = pred.mean.len();
        for k in 0..classes {
            let avg: f32 = pred.sample_probs.iter().map(|p| p[k]).sum::<f32>()
                / pred.sample_probs.len() as f32;
            assert!((pred.mean[k] - avg).abs() < 1e-6);
        }
        assert!((pred.mean.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let (bnet, input) = setup();
        let a = McDropout::new(3, 9).run(&bnet, &input);
        let b = McDropout::new(3, 9).run(&bnet, &input);
        assert_eq!(a, b);
        let c = McDropout::new(3, 10).run(&bnet, &input);
        assert_ne!(a.sample_probs, c.sample_probs);
    }

    #[test]
    fn trace_prediction_matches_direct_run() {
        let (bnet, input) = setup();
        let runner = McDropout::new(4, 2);
        let direct = runner.run(&bnet, &input);
        let trace = runner.run_trace(&bnet, &input);
        assert_eq!(trace.len(), 4);
        assert!(!trace.is_empty());
        assert_eq!(trace.prediction(), direct);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        let (bnet, input) = setup();
        let runner = McDropout::new(7, 13);
        let seq = runner.run(&bnet, &input);
        for threads in [1, 2, 3, 16] {
            let par = runner.run_parallel(&bnet, &input, threads);
            assert_eq!(seq, par, "divergence at {threads} threads");
        }
    }

    #[test]
    fn uncertainty_is_nonnegative_and_bounded() {
        let (bnet, input) = setup();
        let pred = McDropout::new(8, 3).run(&bnet, &input);
        assert!(pred.predictive_entropy >= 0.0);
        assert!(pred.mutual_information >= -1e-5);
        assert!(pred.mutual_information <= pred.predictive_entropy + 1e-5);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = McDropout::new(0, 0);
    }
}
