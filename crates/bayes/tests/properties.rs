//! Property-based tests for the Bayesian machinery.

use fbcnn_bayes::mask::pool_mask;
use fbcnn_bayes::{measured_drop_rate, Brng, Lfsr32, McDropout};
use fbcnn_nn::{Pool2d, PoolKind};
use fbcnn_tensor::{BitMask, Shape};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lfsr_never_dies(seed in any::<u32>()) {
        let mut l = Lfsr32::new(seed);
        for _ in 0..2048 {
            l.step();
            prop_assert_ne!(l.state(), 0);
        }
    }

    #[test]
    fn brng_rate_tracks_nominal(p in 0.05f64..0.95, seed in any::<u64>()) {
        let mut brng = Brng::new(p, seed);
        let rate = measured_drop_rate(|| brng.next_bit(), 4096);
        // Quantization to t = round(256 p) plus sampling noise.
        prop_assert!((rate - p).abs() < 0.06, "rate {rate} vs nominal {p}");
    }

    #[test]
    fn brng_is_monotone_in_drop_rate(seed in any::<u64>(), p in 0.1f64..0.8) {
        // Same seed => same uniform stream; a higher threshold can only
        // turn more bits on.
        let mut lo = Brng::new(p, seed);
        let mut hi = Brng::new((p + 0.15).min(1.0), seed);
        for _ in 0..512 {
            let (a, b) = (lo.next_bit(), hi.next_bit());
            prop_assert!(!a || b, "lower rate dropped where higher kept");
        }
    }

    #[test]
    fn mask_pooling_never_creates_drops(
        seed in any::<u64>(),
        density in 0.0f64..1.0,
    ) {
        let shape = Shape::new(2, 8, 8);
        let mut state = seed;
        let mask = BitMask::from_fn(shape, |_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / u32::MAX as f64) < density
        });
        let pool = Pool2d::new(PoolKind::Max, 2, 2);
        let pooled = pool_mask(&mask, &pool);
        // A pooled drop requires all four window bits dropped, so the
        // pooled density can never exceed the raw density (for density<1
        // strictly fewer unless degenerate).
        prop_assert!(pooled.density() <= mask.density() + 1e-12);
        // And every pooled drop is witnessed by a fully-dropped window.
        for i in pooled.iter_set() {
            let (c, r, col) = pooled.shape().unravel(i);
            for dy in 0..2 {
                for dx in 0..2 {
                    prop_assert!(mask.get_at(c, 2 * r + dy, 2 * col + dx));
                }
            }
        }
    }

    #[test]
    fn prediction_mean_is_convex_combination(
        rows in proptest::collection::vec(
            proptest::collection::vec(0.01f32..1.0, 5),
            1..6,
        )
    ) {
        // Normalize rows into distributions.
        let probs: Vec<Vec<f32>> = rows
            .into_iter()
            .map(|r| {
                let s: f32 = r.iter().sum();
                r.into_iter().map(|v| v / s).collect()
            })
            .collect();
        let pred = McDropout::summarize(probs.clone());
        prop_assert!((pred.mean.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        for k in 0..5 {
            let lo = probs.iter().map(|p| p[k]).fold(f32::INFINITY, f32::min);
            let hi = probs.iter().map(|p| p[k]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(pred.mean[k] >= lo - 1e-6 && pred.mean[k] <= hi + 1e-6);
        }
        prop_assert!(pred.mutual_information >= 0.0);
        prop_assert!(pred.mutual_information <= pred.predictive_entropy + 1e-5);
    }
}
