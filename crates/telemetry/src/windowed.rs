//! Windowed time-series on top of [`Registry`]: a ring of fixed-width
//! window panes, streaming quantile extraction from fixed-bucket
//! histograms, and an [`SloPolicy`] evaluator that turns windowed
//! request accounting into a typed [`HealthStatus`].
//!
//! The cumulative [`Registry`] answers "how many, ever"; serving health
//! needs "how many, lately". [`WindowedRegistry`] wraps a cumulative
//! registry and additionally folds every event into the pane for the
//! current window, where a window is `clock.now_ns() / width_ns`. The
//! clock is injectable ([`ManualClock`]) so soaks and proptests advance
//! time deterministically.

use crate::{
    CounterSnapshot, HistogramSnapshot, Recorder, Registry, SpanRecord, SPAN_DURATION_METRIC,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Histogram of end-to-end request latency in nanoseconds, labeled
/// `class=<deadline class>`. Recorded by the resilience layer once per
/// served request attempt chain.
pub const REQUEST_LATENCY_METRIC: &str = "request_latency_ns";

/// Counter of finished requests, labeled `class=<deadline class>` and
/// `result=ok|failed`. Every request outcome increments exactly one
/// cell, so windowed sums reconcile exactly against report accounting.
pub const REQUEST_OUTCOME_METRIC: &str = "request_outcomes";

/// The standard quantile set rendered by operator tooling.
pub const STANDARD_QUANTILES: &[(&str, f64)] =
    &[("p50", 0.5), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999)];

/// The documented error bound of [`histogram_quantile`] under the
/// default power-of-four buckets: the estimate is the upper edge of the
/// bucket holding the true quantile, so for values at or above the
/// first bound it over-reports by strictly less than this factor.
pub const QUANTILE_WIDTH_RATIO: f64 = 4.0;

/// Estimates the `q`-quantile of a fixed-bucket histogram using the
/// upper-edge rule: the estimate is the smallest bucket upper bound
/// whose cumulative count reaches `ceil(q * count)`.
///
/// Error bound: the true quantile lies in `(prev_bound, bound]`, so the
/// estimate never under-reports, and over-reports by strictly less than
/// the bucket width ratio (×[`QUANTILE_WIDTH_RATIO`] for
/// [`crate::DEFAULT_BUCKETS`]). Two clamps apply: true quantiles below
/// the first bound report the first bound, and ranks landing in the
/// overflow (`+Inf`) bucket report the largest finite bound — callers
/// sizing buckets should keep the observed range inside the bounds.
///
/// `counts` carries `bounds.len() + 1` non-cumulative entries (last is
/// overflow), the layout of [`HistogramSnapshot::counts`]. Returns
/// `None` for an empty histogram, empty bounds, a `q` outside `(0, 1]`,
/// or a `counts`/`bounds` length mismatch.
pub fn histogram_quantile(bounds: &[f64], counts: &[u64], q: f64) -> Option<f64> {
    if bounds.is_empty() || counts.len() != bounds.len() + 1 || !(q > 0.0 && q <= 1.0) {
        return None;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (i, &c) in counts[..bounds.len()].iter().enumerate() {
        cumulative += c;
        if cumulative >= rank {
            return Some(bounds[i]);
        }
    }
    // Rank falls in the overflow bucket: clamp to the largest bound.
    bounds.last().copied()
}

/// Convenience: [`histogram_quantile`] straight off a snapshot.
pub fn snapshot_quantile(h: &HistogramSnapshot, q: f64) -> Option<f64> {
    histogram_quantile(&h.bounds, &h.counts, q)
}

// ----------------------------------------------------------------- clocks

/// A monotonic nanosecond clock. Injectable so windowed tests and soaks
/// control time; production uses [`MonotonicClock`].
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's epoch. Must be non-decreasing.
    fn now_ns(&self) -> u64;
}

/// Wall clock: nanoseconds since construction.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }
}

/// A hand-cranked clock for deterministic soaks and proptests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: AtomicU64,
}

impl ManualClock {
    /// A clock parked at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Jumps the clock to an absolute nanosecond timestamp.
    pub fn set(&self, ns: u64) {
        self.now_ns.store(ns, Ordering::SeqCst);
    }

    /// Advances the clock by `ns` and returns the new timestamp.
    pub fn advance(&self, ns: u64) -> u64 {
        self.now_ns.fetch_add(ns, Ordering::SeqCst) + ns
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::SeqCst)
    }
}

// --------------------------------------------------------------- windows

/// One window's worth of aggregated telemetry.
#[derive(Debug, Clone)]
pub struct WindowSnapshot {
    /// Window index (`start_ns / width_ns`).
    pub index: u64,
    /// Window start, nanoseconds on the injected clock.
    pub start_ns: u64,
    /// Counter cells observed during the window.
    pub counters: Vec<CounterSnapshot>,
    /// Histogram cells observed during the window.
    pub histograms: Vec<HistogramSnapshot>,
}

struct Pane {
    index: u64,
    registry: Registry,
}

/// A [`Recorder`] that tees every event into a cumulative total
/// [`Registry`] *and* the pane for the current fixed-width window.
///
/// Windows are sparse: a window in which nothing was recorded has no
/// pane (queries treat it as zero). The ring keeps the most recent
/// `capacity` panes; evicting older ones only loses the *windowed* view
/// — the total registry keeps everything.
pub struct WindowedRegistry {
    total: Arc<Registry>,
    clock: Arc<dyn Clock>,
    width_ns: u64,
    capacity: usize,
    ring: Mutex<VecDeque<Pane>>,
    bucket_overrides: Mutex<Vec<(String, Vec<f64>)>>,
    evicted_windows: AtomicU64,
}

impl std::fmt::Debug for WindowedRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedRegistry")
            .field("width_ns", &self.width_ns)
            .field("capacity", &self.capacity)
            .field("windows", &self.lock_ring().len())
            .finish()
    }
}

impl WindowedRegistry {
    /// A windowed registry over a fresh total registry.
    ///
    /// `width_ns` is clamped to at least 1; `capacity` to at least 2
    /// (an SLO needs at least a fast and a slow window).
    pub fn new(width_ns: u64, capacity: usize, clock: Arc<dyn Clock>) -> Self {
        Self::with_total(Arc::new(Registry::new()), width_ns, capacity, clock)
    }

    /// A windowed registry teeing into an existing total registry.
    pub fn with_total(
        total: Arc<Registry>,
        width_ns: u64,
        capacity: usize,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Self {
            total,
            clock,
            width_ns: width_ns.max(1),
            capacity: capacity.max(2),
            ring: Mutex::new(VecDeque::new()),
            bucket_overrides: Mutex::new(Vec::new()),
            evicted_windows: AtomicU64::new(0),
        }
    }

    fn lock_ring(&self) -> MutexGuard<'_, VecDeque<Pane>> {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The cumulative registry (lifetime totals, exporters, spans).
    pub fn total(&self) -> &Arc<Registry> {
        &self.total
    }

    /// The injected clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Window width in nanoseconds.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// The window index the clock currently points into.
    pub fn current_index(&self) -> u64 {
        self.clock.now_ns() / self.width_ns
    }

    /// Panes evicted because the ring was full.
    pub fn evicted_windows(&self) -> u64 {
        self.evicted_windows.load(Ordering::Relaxed)
    }

    /// Registers bucket bounds for histogram `name` on the total
    /// registry and every current and future pane (first observation
    /// per pane wins, as on [`Registry::set_buckets`]).
    pub fn set_buckets(&self, name: &str, bounds: &[f64]) {
        self.total.set_buckets(name, bounds);
        for pane in self.lock_ring().iter() {
            pane.registry.set_buckets(name, bounds);
        }
        let mut overrides = self
            .bucket_overrides
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        overrides.retain(|(n, _)| n != name);
        overrides.push((name.to_string(), bounds.to_vec()));
    }

    /// Runs `f` against the pane for the current window, creating (and
    /// evicting, if over capacity) as needed.
    fn with_current_pane<R>(&self, f: impl FnOnce(&Registry) -> R) -> R {
        let index = self.current_index();
        let mut ring = self.lock_ring();
        let fresh = match ring.back() {
            Some(pane) if pane.index == index => false,
            // The clock never goes backwards, so a mismatched back pane
            // means a new window opened.
            _ => true,
        };
        if fresh {
            let registry = Registry::new();
            {
                let overrides = self
                    .bucket_overrides
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                for (name, bounds) in overrides.iter() {
                    registry.set_buckets(name, bounds);
                }
            }
            ring.push_back(Pane { index, registry });
            while ring.len() > self.capacity {
                ring.pop_front();
                self.evicted_windows.fetch_add(1, Ordering::Relaxed);
            }
        }
        // A pane was just pushed if none matched, so back() is Some.
        let pane = match ring.back() {
            Some(pane) => pane,
            None => unreachable!("pane pushed above"),
        };
        f(&pane.registry)
    }

    /// Every retained window, oldest first.
    pub fn windows(&self) -> Vec<WindowSnapshot> {
        self.lock_ring()
            .iter()
            .map(|pane| WindowSnapshot {
                index: pane.index,
                start_ns: pane.index * self.width_ns,
                counters: pane.registry.counters(),
                histograms: pane.registry.histograms(),
            })
            .collect()
    }

    /// The retained windows whose index lies in the last `n` windows
    /// ending at the current one (`(current - n, current]`), oldest
    /// first. Sparse: silent windows are simply absent.
    pub fn last_windows(&self, n: usize) -> Vec<WindowSnapshot> {
        let current = self.current_index();
        let lo = current.saturating_sub(n.saturating_sub(1) as u64);
        self.windows()
            .into_iter()
            .filter(|w| w.index >= lo && w.index <= current)
            .collect()
    }

    /// Sum of counter `name` under exactly `labels` over the last `n`
    /// windows.
    pub fn windowed_counter(&self, n: usize, name: &str, labels: &[(&str, &str)]) -> u64 {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut sorted = labels.clone();
        sorted.sort();
        self.last_windows(n)
            .iter()
            .flat_map(|w| w.counters.iter())
            .filter(|c| c.name == name && c.labels == sorted)
            .map(|c| c.value)
            .sum()
    }

    /// Sum of counter `name` across all label sets over the last `n`
    /// windows.
    pub fn windowed_counter_total(&self, n: usize, name: &str) -> u64 {
        self.last_windows(n)
            .iter()
            .flat_map(|w| w.counters.iter())
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Merges histogram `name` under exactly `labels` over the last `n`
    /// windows into one snapshot. Returns `None` when no window
    /// observed it. Cells whose bucket bounds disagree with the first
    /// matching cell are skipped (only possible if bounds were
    /// re-registered mid-run).
    pub fn windowed_histogram(
        &self,
        n: usize,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        sorted.sort();
        let mut merged: Option<HistogramSnapshot> = None;
        for w in self.last_windows(n) {
            for h in w.histograms {
                if h.name != name || h.labels != sorted {
                    continue;
                }
                match &mut merged {
                    None => merged = Some(h),
                    Some(m) => {
                        if m.bounds != h.bounds {
                            continue;
                        }
                        for (dst, src) in m.counts.iter_mut().zip(h.counts.iter()) {
                            *dst += src;
                        }
                        m.sum += h.sum;
                        m.count += h.count;
                    }
                }
            }
        }
        merged
    }

    /// Quantile estimates (via [`histogram_quantile`]) for histogram
    /// `name{labels}` over the last `n` windows; `None` when the
    /// histogram is empty or absent.
    pub fn windowed_quantiles(
        &self,
        n: usize,
        name: &str,
        labels: &[(&str, &str)],
        qs: &[f64],
    ) -> Option<Vec<f64>> {
        let h = self.windowed_histogram(n, name, labels)?;
        qs.iter()
            .map(|&q| histogram_quantile(&h.bounds, &h.counts, q))
            .collect()
    }
}

impl Recorder for WindowedRegistry {
    fn counter_add(&self, name: &'static str, labels: &[(&str, &str)], delta: u64) {
        self.total.counter_add(name, labels, delta);
        self.with_current_pane(|pane| pane.counter_add(name, labels, delta));
    }

    fn histogram_record(&self, name: &'static str, labels: &[(&str, &str)], value: f64) {
        self.total.histogram_record(name, labels, value);
        self.with_current_pane(|pane| pane.histogram_record(name, labels, value));
    }

    fn histogram_batch(&self, name: &'static str, labels: &[(&str, &str)], values: &[f64]) {
        self.total.histogram_batch(name, labels, values);
        self.with_current_pane(|pane| pane.histogram_batch(name, labels, values));
    }

    fn span_record(&self, span: &SpanRecord<'_>) {
        // Raw span events (for the JSONL trace) live on the total
        // registry only; panes keep the aggregate duration histogram so
        // windowed span quantiles stay cheap.
        self.total.span_record(span);
        let duration_ns = span.duration.as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut labels: Vec<(&str, &str)> = vec![("span", span.name)];
        labels.extend(span.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())));
        self.with_current_pane(|pane| {
            pane.histogram_record(SPAN_DURATION_METRIC, &labels, duration_ns as f64)
        });
    }

    fn sink(&self) -> Option<&Registry> {
        Some(&self.total)
    }
}

// -------------------------------------------------------------- SLO policy

/// Tri-state serving health verdict, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// All objectives met.
    Ok,
    /// An objective is slipping; not yet page-worthy.
    Warning,
    /// An objective is blown badly enough to page (and, in this
    /// workspace, to auto-emit a flight-recorder postmortem).
    Critical,
}

impl HealthStatus {
    /// Stable lowercase name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Warning => "warning",
            HealthStatus::Critical => "critical",
        }
    }
}

/// A per-deadline-class latency objective: "quantile `quantile` of
/// `request_latency_ns{class}` over the fast window span stays at or
/// under `threshold_ns`".
#[derive(Debug, Clone)]
pub struct LatencyObjective {
    /// Deadline class label value.
    pub class: String,
    /// Quantile in `(0, 1]`, e.g. `0.99`.
    pub quantile: f64,
    /// Objective in nanoseconds (compared against the bucket-edge
    /// estimate, so size it with the documented error bound in mind).
    pub threshold_ns: f64,
}

/// One concrete reason the health verdict is not `Ok`.
#[derive(Debug, Clone)]
pub enum SloViolation {
    /// A latency quantile objective was missed over the fast window
    /// span.
    LatencyAboveObjective {
        /// Deadline class.
        class: String,
        /// The objective's quantile.
        quantile: f64,
        /// The observed (bucket-edge) estimate.
        observed_ns: f64,
        /// The objective.
        threshold_ns: f64,
        /// How many windows the estimate covered.
        windows: usize,
    },
    /// The error-budget burn rate limit was exceeded.
    BurnRateExceeded {
        /// Deadline class.
        class: String,
        /// Observed burn rate (failure fraction / error budget).
        burn: f64,
        /// The limit that was crossed.
        limit: f64,
        /// How many windows the burn covered.
        windows: usize,
        /// Failed requests in those windows.
        failed: u64,
        /// Total requests in those windows.
        total: u64,
    },
}

impl SloViolation {
    /// One-line operator rendering.
    pub fn render(&self) -> String {
        match self {
            SloViolation::LatencyAboveObjective {
                class,
                quantile,
                observed_ns,
                threshold_ns,
                windows,
            } => format!(
                "latency class={class} p{:.4}: observed {observed_ns:.0}ns > objective \
                 {threshold_ns:.0}ns over last {windows} window(s)",
                quantile * 100.0
            ),
            SloViolation::BurnRateExceeded {
                class,
                burn,
                limit,
                windows,
                failed,
                total,
            } => format!(
                "burn class={class}: {burn:.2}x budget (limit {limit:.2}x) over last \
                 {windows} window(s) ({failed}/{total} failed)"
            ),
        }
    }
}

/// Error-budget burn observed for one deadline class.
#[derive(Debug, Clone)]
pub struct ClassBurn {
    /// Deadline class.
    pub class: String,
    /// Burn over the fast window span (failure fraction / budget).
    pub fast_burn: f64,
    /// Burn over the slow window span.
    pub slow_burn: f64,
    /// Failed / total over the fast span.
    pub failed_fast: u64,
    /// Total requests over the fast span.
    pub total_fast: u64,
    /// Failed / total over the slow span.
    pub failed_slow: u64,
    /// Total requests over the slow span.
    pub total_slow: u64,
}

/// The evaluated health verdict with its evidence.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Worst severity across all violations.
    pub status: HealthStatus,
    /// Every violation found, in evaluation order.
    pub violations: Vec<SloViolation>,
    /// Burn accounting per observed deadline class (also for classes
    /// that did not violate).
    pub burns: Vec<ClassBurn>,
}

/// Per-deadline-class latency objectives plus a multi-window
/// error-budget burn-rate alerting rule.
///
/// Semantics (deterministic, pinned by proptests):
/// - **Latency**: each [`LatencyObjective`] is checked against the
///   bucket-edge quantile estimate over the last `fast_windows`
///   windows. A miss is `Warning`; a miss at ≥ 2× the objective is
///   `Critical`. Empty histograms are treated as met.
/// - **Burn**: for every class observed in `request_outcomes`, burn =
///   (failed/total) / `error_budget`. Fast-span burn ≥ `critical_burn`
///   → `Critical`; otherwise slow-span burn ≥ `warning_burn` →
///   `Warning`. Spans with fewer than `min_requests` requests are
///   skipped (no traffic is not an outage).
/// - The report's status is the maximum severity of any violation.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// Latency objectives (may be empty).
    pub objectives: Vec<LatencyObjective>,
    /// Allowed failure fraction, e.g. `0.05` (clamped to a minimum of
    /// 1e-9 at evaluation time to keep the division meaningful).
    pub error_budget: f64,
    /// Short alerting span in windows (the "page fast" view).
    pub fast_windows: usize,
    /// Long alerting span in windows (the "budget trend" view).
    pub slow_windows: usize,
    /// Slow-span burn at or above this is a `Warning`.
    pub warning_burn: f64,
    /// Fast-span burn at or above this is `Critical`.
    pub critical_burn: f64,
    /// Minimum requests in a span before its burn is judged.
    pub min_requests: u64,
    /// Restrict burn evaluation to these deadline classes; `None`
    /// judges every class observed in `request_outcomes`. An explicit
    /// list keeps a policy deterministic when the recorder is shared
    /// with traffic it does not own (e.g. parallel test threads).
    pub classes: Option<Vec<String>>,
}

impl Default for SloPolicy {
    fn default() -> Self {
        Self {
            objectives: Vec::new(),
            error_budget: 0.05,
            fast_windows: 2,
            slow_windows: 8,
            warning_burn: 1.0,
            critical_burn: 4.0,
            min_requests: 1,
            classes: None,
        }
    }
}

impl SloPolicy {
    /// Evaluates the policy against the windowed registry's recent
    /// windows (see the type-level semantics).
    pub fn evaluate(&self, windowed: &WindowedRegistry) -> HealthReport {
        let mut violations = Vec::new();
        let fast = self.fast_windows.max(1);
        let slow = self.slow_windows.max(fast);
        let budget = self.error_budget.max(1e-9);

        for obj in &self.objectives {
            let labels = [("class", obj.class.as_str())];
            let Some(h) = windowed.windowed_histogram(fast, REQUEST_LATENCY_METRIC, &labels) else {
                continue;
            };
            let Some(observed) = histogram_quantile(&h.bounds, &h.counts, obj.quantile) else {
                continue;
            };
            if observed > obj.threshold_ns {
                violations.push(SloViolation::LatencyAboveObjective {
                    class: obj.class.clone(),
                    quantile: obj.quantile,
                    observed_ns: observed,
                    threshold_ns: obj.threshold_ns,
                    windows: fast,
                });
            }
        }

        let mut burns = Vec::new();
        for class in self.observed_classes(windowed, slow) {
            let span_counts = |n: usize| {
                let ok = windowed.windowed_counter(
                    n,
                    REQUEST_OUTCOME_METRIC,
                    &[("class", class.as_str()), ("result", "ok")],
                );
                let failed = windowed.windowed_counter(
                    n,
                    REQUEST_OUTCOME_METRIC,
                    &[("class", class.as_str()), ("result", "failed")],
                );
                (failed, ok + failed)
            };
            let (failed_fast, total_fast) = span_counts(fast);
            let (failed_slow, total_slow) = span_counts(slow);
            let burn = |failed: u64, total: u64| {
                if total == 0 {
                    0.0
                } else {
                    (failed as f64 / total as f64) / budget
                }
            };
            let fast_burn = burn(failed_fast, total_fast);
            let slow_burn = burn(failed_slow, total_slow);
            if total_fast >= self.min_requests && fast_burn >= self.critical_burn {
                violations.push(SloViolation::BurnRateExceeded {
                    class: class.clone(),
                    burn: fast_burn,
                    limit: self.critical_burn,
                    windows: fast,
                    failed: failed_fast,
                    total: total_fast,
                });
            } else if total_slow >= self.min_requests && slow_burn >= self.warning_burn {
                violations.push(SloViolation::BurnRateExceeded {
                    class: class.clone(),
                    burn: slow_burn,
                    limit: self.warning_burn,
                    windows: slow,
                    failed: failed_slow,
                    total: total_slow,
                });
            }
            burns.push(ClassBurn {
                class,
                fast_burn,
                slow_burn,
                failed_fast,
                total_fast,
                failed_slow,
                total_slow,
            });
        }

        let status = violations
            .iter()
            .map(|v| self.severity(v))
            .max()
            .unwrap_or(HealthStatus::Ok);
        HealthReport {
            status,
            violations,
            burns,
        }
    }

    /// The severity this policy assigns to one violation.
    pub fn severity(&self, violation: &SloViolation) -> HealthStatus {
        match violation {
            SloViolation::LatencyAboveObjective {
                observed_ns,
                threshold_ns,
                ..
            } => {
                if *observed_ns >= 2.0 * *threshold_ns {
                    HealthStatus::Critical
                } else {
                    HealthStatus::Warning
                }
            }
            SloViolation::BurnRateExceeded { limit, .. } => {
                if *limit >= self.critical_burn {
                    HealthStatus::Critical
                } else {
                    HealthStatus::Warning
                }
            }
        }
    }

    fn observed_classes(&self, windowed: &WindowedRegistry, slow: usize) -> Vec<String> {
        let mut classes: Vec<String> = windowed
            .last_windows(slow)
            .iter()
            .flat_map(|w| w.counters.iter())
            .filter(|c| c.name == REQUEST_OUTCOME_METRIC)
            .filter_map(|c| {
                c.labels
                    .iter()
                    .find(|(k, _)| k == "class")
                    .map(|(_, v)| v.clone())
            })
            .filter(|class| {
                self.classes
                    .as_ref()
                    .map(|allow| allow.iter().any(|c| c == class))
                    .unwrap_or(true)
            })
            .collect();
        classes.sort();
        classes.dedup();
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_BUCKETS;

    fn windowed(width: u64, cap: usize) -> (Arc<ManualClock>, WindowedRegistry) {
        let clock = Arc::new(ManualClock::new());
        let w = WindowedRegistry::new(width, cap, clock.clone() as Arc<dyn Clock>);
        (clock, w)
    }

    #[test]
    fn quantile_upper_edge_rule() {
        let bounds = [1.0, 4.0, 16.0];
        // counts: 2 in (..1], 1 in (1,4], 1 in (4,16], 0 overflow
        let counts = [2, 1, 1, 0];
        assert_eq!(histogram_quantile(&bounds, &counts, 0.5), Some(1.0));
        assert_eq!(histogram_quantile(&bounds, &counts, 0.75), Some(4.0));
        assert_eq!(histogram_quantile(&bounds, &counts, 1.0), Some(16.0));
        // Overflow rank clamps to the largest bound.
        assert_eq!(histogram_quantile(&bounds, &[0, 0, 0, 5], 0.5), Some(16.0));
        // Degenerate inputs.
        assert_eq!(histogram_quantile(&bounds, &counts, 0.0), None);
        assert_eq!(histogram_quantile(&bounds, &counts, 1.5), None);
        assert_eq!(histogram_quantile(&bounds, &[0, 0, 0, 0], 0.5), None);
        assert_eq!(histogram_quantile(&[], &[1], 0.5), None);
        assert_eq!(histogram_quantile(&bounds, &[1, 2], 0.5), None);
    }

    #[test]
    fn panes_follow_the_clock_and_evict() {
        let (clock, w) = windowed(100, 2);
        w.counter_add("hits", &[], 1);
        clock.set(150);
        w.counter_add("hits", &[], 2);
        clock.set(250);
        w.counter_add("hits", &[], 4);
        // Window 0 evicted (capacity 2); totals survive on the total
        // registry.
        assert_eq!(w.windows().len(), 2);
        assert_eq!(w.evicted_windows(), 1);
        assert_eq!(w.total().counter_total("hits"), 7);
        assert_eq!(w.windowed_counter_total(1, "hits"), 4);
        assert_eq!(w.windowed_counter_total(2, "hits"), 6);
    }

    #[test]
    fn windowed_histogram_merges_and_estimates() {
        let (clock, w) = windowed(100, 8);
        w.histogram_record(REQUEST_LATENCY_METRIC, &[("class", "a")], 3.0);
        clock.set(120);
        w.histogram_record(REQUEST_LATENCY_METRIC, &[("class", "a")], 200.0);
        let h = w
            .windowed_histogram(2, REQUEST_LATENCY_METRIC, &[("class", "a")])
            .unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.bounds, DEFAULT_BUCKETS.to_vec());
        let qs = w
            .windowed_quantiles(2, REQUEST_LATENCY_METRIC, &[("class", "a")], &[0.5, 1.0])
            .unwrap();
        assert_eq!(qs, vec![4.0, 256.0]);
        // Only the newest window.
        let h1 = w
            .windowed_histogram(1, REQUEST_LATENCY_METRIC, &[("class", "a")])
            .unwrap();
        assert_eq!(h1.count, 1);
    }

    #[test]
    fn slo_walks_ok_warning_critical() {
        let (clock, w) = windowed(100, 16);
        let policy = SloPolicy {
            error_budget: 0.1,
            fast_windows: 1,
            slow_windows: 4,
            warning_burn: 1.0,
            critical_burn: 5.0,
            min_requests: 1,
            ..SloPolicy::default()
        };
        let record = |ok: u64, failed: u64| {
            w.counter_add(
                REQUEST_OUTCOME_METRIC,
                &[("class", "default"), ("result", "ok")],
                ok,
            );
            w.counter_add(
                REQUEST_OUTCOME_METRIC,
                &[("class", "default"), ("result", "failed")],
                failed,
            );
        };
        // Healthy window: 0 failures.
        record(100, 0);
        assert_eq!(policy.evaluate(&w).status, HealthStatus::Ok);
        // Mild failure rate: 20% > 10% budget over the slow span but
        // below the 5x fast limit -> Warning.
        clock.set(100);
        record(80, 20);
        let report = policy.evaluate(&w);
        assert_eq!(report.status, HealthStatus::Warning);
        assert_eq!(report.violations.len(), 1);
        // Burst: 60% failures in the fast window -> 6x burn -> Critical.
        clock.set(200);
        record(40, 60);
        assert_eq!(policy.evaluate(&w).status, HealthStatus::Critical);
        // Recovery: clean windows push the burst out of the fast span
        // and dilute the slow span... eventually Ok again.
        for i in 1..=8u64 {
            clock.set(200 + i * 100);
            record(100, 0);
        }
        assert_eq!(policy.evaluate(&w).status, HealthStatus::Ok);
    }

    #[test]
    fn latency_objective_misses_grade_by_margin() {
        let (_clock, w) = windowed(100, 4);
        let policy = SloPolicy {
            objectives: vec![LatencyObjective {
                class: "a".into(),
                quantile: 0.5,
                threshold_ns: 100.0,
            }],
            ..SloPolicy::default()
        };
        w.histogram_record(REQUEST_LATENCY_METRIC, &[("class", "a")], 150.0);
        // Estimate is 256 (bucket edge) -> >= 2x 100 -> Critical.
        let report = policy.evaluate(&w);
        assert_eq!(report.status, HealthStatus::Critical);
        // A miss under 2x is a Warning.
        let warn = SloPolicy {
            objectives: vec![LatencyObjective {
                class: "a".into(),
                quantile: 0.5,
                threshold_ns: 200.0,
            }],
            ..SloPolicy::default()
        };
        assert_eq!(warn.evaluate(&w).status, HealthStatus::Warning);
    }

    #[test]
    fn sink_reports_the_total_registry() {
        let (_clock, w) = windowed(100, 4);
        let total = w.total().clone();
        let arc: Arc<dyn crate::Recorder> = Arc::new(w);
        let _guard = crate::install(arc);
        assert!(crate::installed_sink_is(&total));
        assert!(!crate::installed_sink_is(&Arc::new(Registry::new())));
    }
}
