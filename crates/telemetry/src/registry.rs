//! The in-memory [`Registry`] recorder and its two exporters (JSONL
//! trace events and Prometheus-style text exposition).

use crate::{Recorder, SpanRecord, TRACE_ARTIFACT, TRACE_FORMAT_VERSION};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Default histogram bucket upper bounds (powers of four): wide enough
/// for nanosecond durations and for `N_d` neuron counts alike. The
/// implicit `+Inf` bucket is derived from the total count on export.
pub const DEFAULT_BUCKETS: &[f64] = &[
    1.0,
    4.0,
    16.0,
    64.0,
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    4194304.0,
    16777216.0,
    67108864.0,
    268435456.0,
    1073741824.0,
];

/// Histogram every closed span's duration is folded into, labeled
/// `span=<name>` plus the span's own labels — so the Prometheus dump
/// carries timing distributions without shipping raw span events.
pub const SPAN_DURATION_METRIC: &str = "span_duration_ns";

/// Raw span events kept verbatim for the JSONL trace; beyond this the
/// registry keeps aggregating histograms but drops the raw events (see
/// [`Registry::dropped_spans`]).
const SPAN_CAP: usize = 100_000;

type Key = (String, Vec<(String, String)>);

/// One counter cell at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Label set (sorted by key).
    pub labels: Vec<(String, String)>,
    /// Accumulated value.
    pub value: u64,
}

/// One histogram cell at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Label set (sorted by key).
    pub labels: Vec<(String, String)>,
    /// Finite bucket upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries; the
    /// last is the overflow/`+Inf` bucket), **not** cumulative.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

/// A closed span kept for the JSONL trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Process-unique span id.
    pub id: u64,
    /// Enclosing span id on the same thread, 0 for roots.
    pub parent: u64,
    /// Process-unique id of the recording thread (never 0 for spans).
    pub thread: u64,
    /// Span name.
    pub name: String,
    /// Labels attached at open time.
    pub labels: Vec<(String, String)>,
    /// Open time, nanoseconds since the registry was created.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
}

#[derive(Debug)]
struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        let counts = vec![0; bounds.len() + 1];
        Self {
            bounds,
            counts,
            sum: 0.0,
            count: 0,
        }
    }

    fn record(&mut self, value: f64) {
        // Non-finite observations would poison the sum (and serialize as
        // null); the recorder simply refuses them.
        if !value.is_finite() {
            return;
        }
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.sum += value;
        self.count += 1;
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<Key, u64>,
    histograms: BTreeMap<Key, Histogram>,
    bucket_overrides: BTreeMap<String, Vec<f64>>,
    spans: Vec<SpanEvent>,
    dropped_spans: u64,
}

/// The standard [`Recorder`]: aggregates counters, histograms and span
/// events in memory behind one mutex, with snapshot accessors and the
/// JSONL / Prometheus exporters. Install it with
/// [`crate::install`]`(Arc::new(Registry::new()))`.
#[derive(Debug)]
pub struct Registry {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

impl Registry {
    /// An empty registry; its epoch (the zero point of span start
    /// offsets) is the construction instant.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Overrides the bucket bounds used when histogram `name` is first
    /// observed (non-finite bounds are discarded; the list is sorted and
    /// deduplicated). No effect on histograms that already exist.
    pub fn set_buckets(&self, name: &str, bounds: &[f64]) {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        self.lock()
            .bucket_overrides
            .insert(name.to_string(), bounds);
    }

    // ------------------------------------------------------- snapshots

    /// Every counter cell, sorted by (name, labels).
    pub fn counters(&self) -> Vec<CounterSnapshot> {
        self.lock()
            .counters
            .iter()
            .map(|((name, labels), &value)| CounterSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                value,
            })
            .collect()
    }

    /// Sum of counter `name` across all label sets (0 when absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.lock()
            .counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, &v)| v)
            .sum()
    }

    /// The value of counter `name` under exactly the given labels.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = (name.to_string(), owned_labels(labels));
        self.lock().counters.get(&key).copied()
    }

    /// Every histogram cell, sorted by (name, labels).
    pub fn histograms(&self) -> Vec<HistogramSnapshot> {
        self.lock()
            .histograms
            .iter()
            .map(|((name, labels), h)| HistogramSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                bounds: h.bounds.clone(),
                counts: h.counts.clone(),
                sum: h.sum,
                count: h.count,
            })
            .collect()
    }

    /// The raw span events recorded so far (oldest first).
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.lock().spans.clone()
    }

    /// Span events discarded because the raw-event buffer was full.
    pub fn dropped_spans(&self) -> u64 {
        self.lock().dropped_spans
    }

    // ------------------------------------------------------- exporters

    /// Renders every span, counter and histogram as one JSONL trace
    /// event per line, each wrapped in the workspace's versioned
    /// artifact envelope (`core::io` can read it back as a typed
    /// `TraceEvent`).
    pub fn to_jsonl(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for s in &inner.spans {
            let payload = format!(
                "{{\"kind\":\"span\",\"name\":{},\"labels\":{},\"id\":{},\"parent\":{},\
                 \"thread\":{},\"start_ns\":{},\"duration_ns\":{},\"value\":0.0,\"count\":0,\
                 \"buckets\":[]}}",
                json_str(&s.name),
                json_labels(&s.labels),
                s.id,
                s.parent,
                s.thread,
                s.start_ns,
                s.duration_ns
            );
            push_envelope(&mut out, &payload);
        }
        for ((name, labels), &value) in &inner.counters {
            let payload = format!(
                "{{\"kind\":\"counter\",\"name\":{},\"labels\":{},\"id\":0,\"parent\":0,\
                 \"thread\":0,\"start_ns\":0,\"duration_ns\":0,\"value\":{},\"count\":{value},\
                 \"buckets\":[]}}",
                json_str(name),
                json_labels(labels),
                json_num(value as f64)
            );
            push_envelope(&mut out, &payload);
        }
        for ((name, labels), h) in &inner.histograms {
            let mut buckets = String::from("[");
            let mut cumulative = 0u64;
            for (i, &b) in h.bounds.iter().enumerate() {
                cumulative += h.counts[i];
                if i > 0 {
                    buckets.push(',');
                }
                let _ = write!(buckets, "[{},{cumulative}]", json_num(b));
            }
            buckets.push(']');
            let payload = format!(
                "{{\"kind\":\"histogram\",\"name\":{},\"labels\":{},\"id\":0,\"parent\":0,\
                 \"thread\":0,\"start_ns\":0,\"duration_ns\":0,\"value\":{},\"count\":{},\
                 \"buckets\":{buckets}}}",
                json_str(name),
                json_labels(labels),
                json_num(h.sum),
                h.count
            );
            push_envelope(&mut out, &payload);
        }
        out
    }

    /// Renders the counters and histograms in the Prometheus text
    /// exposition format (`# TYPE` headers, `_bucket`/`_sum`/`_count`
    /// series, `le="+Inf"` derived from the total count).
    pub fn to_prometheus(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        let mut last_name = None::<&str>;
        for ((name, labels), &value) in &inner.counters {
            if last_name != Some(name.as_str()) {
                let _ = writeln!(out, "# TYPE {name} counter");
                last_name = Some(name.as_str());
            }
            let _ = writeln!(out, "{name}{} {value}", prom_labels(labels, None));
        }
        for ((name, labels), h) in &inner.histograms {
            if last_name != Some(name.as_str()) {
                let _ = writeln!(out, "# TYPE {name} histogram");
                last_name = Some(name.as_str());
            }
            let mut cumulative = 0u64;
            for (i, &b) in h.bounds.iter().enumerate() {
                cumulative += h.counts[i];
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    prom_labels(labels, Some(&format!("{b:?}")))
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{} {}",
                prom_labels(labels, Some("+Inf")),
                h.count
            );
            let _ = writeln!(
                out,
                "{name}_sum{} {}",
                prom_labels(labels, None),
                json_num(h.sum)
            );
            let _ = writeln!(out, "{name}_count{} {}", prom_labels(labels, None), h.count);
        }
        out
    }

    /// Writes [`Registry::to_jsonl`] to `path`.
    ///
    /// # Errors
    ///
    /// Any filesystem error.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Writes [`Registry::to_prometheus`] to `path`.
    ///
    /// # Errors
    ///
    /// Any filesystem error.
    pub fn write_prometheus(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_prometheus())
    }
}

impl Recorder for Registry {
    fn counter_add(&self, name: &'static str, labels: &[(&str, &str)], delta: u64) {
        let key = (name.to_string(), owned_labels(labels));
        *self.lock().counters.entry(key).or_insert(0) += delta;
    }

    fn histogram_record(&self, name: &'static str, labels: &[(&str, &str)], value: f64) {
        self.histogram_batch(name, labels, &[value]);
    }

    fn histogram_batch(&self, name: &'static str, labels: &[(&str, &str)], values: &[f64]) {
        let key = (name.to_string(), owned_labels(labels));
        let mut inner = self.lock();
        let bounds = inner
            .bucket_overrides
            .get(name)
            .cloned()
            .unwrap_or_else(|| DEFAULT_BUCKETS.to_vec());
        let h = inner
            .histograms
            .entry(key)
            .or_insert_with(|| Histogram::new(bounds));
        for &v in values {
            h.record(v);
        }
    }

    fn span_record(&self, span: &SpanRecord<'_>) {
        let start_ns = span
            .start
            .saturating_duration_since(self.epoch)
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        let duration_ns = span.duration.as_nanos().min(u128::from(u64::MAX)) as u64;
        {
            let mut inner = self.lock();
            if inner.spans.len() < SPAN_CAP {
                inner.spans.push(SpanEvent {
                    id: span.id,
                    parent: span.parent,
                    thread: span.thread,
                    name: span.name.to_string(),
                    labels: span.labels.to_vec(),
                    start_ns,
                    duration_ns,
                });
            } else {
                inner.dropped_spans += 1;
            }
        }
        // Aggregate view for the Prometheus dump: span=<name> plus the
        // span's own labels.
        let mut labels: Vec<(&str, &str)> = vec![("span", span.name)];
        labels.extend(span.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())));
        self.histogram_record(SPAN_DURATION_METRIC, &labels, duration_ns as f64);
    }

    fn sink(&self) -> Option<&Registry> {
        Some(self)
    }
}

// ------------------------------------------------------------ formatting

fn push_envelope(out: &mut String, payload: &str) {
    let _ = writeln!(
        out,
        "{{\"artifact\":\"{TRACE_ARTIFACT}\",\"version\":{TRACE_FORMAT_VERSION},\"payload\":{payload}}}"
    );
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let mut out = String::from("[");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},{}]", json_str(k), json_str(v));
    }
    out.push(']');
    out
}

/// Non-finite doubles have no JSON representation; `null` matches what
/// the workspace's serde shim emits for them.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let escape = |v: &str| {
        v.replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
    };
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape(v));
        first = false;
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = Registry::new();
        r.counter_add("hits", &[("layer", "conv1")], 2);
        r.counter_add("hits", &[("layer", "conv1")], 3);
        r.counter_add("hits", &[("layer", "conv2")], 1);
        assert_eq!(r.counter_value("hits", &[("layer", "conv1")]), Some(5));
        assert_eq!(r.counter_total("hits"), 6);
        assert_eq!(r.counter_value("hits", &[]), None);
        assert_eq!(r.counters().len(), 2);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let r = Registry::new();
        r.set_buckets("nd", &[1.0, 4.0, 16.0]);
        r.histogram_batch("nd", &[], &[0.5, 1.0, 3.0, 100.0, f64::NAN]);
        let h = &r.histograms()[0];
        assert_eq!(h.bounds, vec![1.0, 4.0, 16.0]);
        assert_eq!(h.counts, vec![2, 1, 0, 1]); // NaN refused
        assert_eq!(h.count, 4);
        assert!((h.sum - 104.5).abs() < 1e-9);
    }

    #[test]
    fn jsonl_lines_wear_the_envelope() {
        let r = Registry::new();
        r.counter_add("c", &[("k", "v\"q")], 7);
        r.histogram_record("h", &[], 2.0);
        let jsonl = r.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert!(line.starts_with("{\"artifact\":\"trace-event\",\"version\":1,\"payload\":"));
        }
        assert!(jsonl.contains("\\\"q")); // escaping survived
    }

    #[test]
    fn prometheus_dump_has_types_buckets_and_inf() {
        let r = Registry::new();
        r.counter_add("requests", &[("kind", "fast")], 3);
        r.set_buckets("lat", &[10.0, 100.0]);
        r.histogram_batch("lat", &[], &[5.0, 50.0, 500.0]);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE requests counter"));
        assert!(text.contains("requests{kind=\"fast\"} 3"));
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"10.0\"} 1"));
        assert!(text.contains("lat_bucket{le=\"100.0\"} 2"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_sum 555.0"));
        assert!(text.contains("lat_count 3"));
    }

    #[test]
    fn span_events_feed_the_duration_histogram() {
        use crate::Recorder as _;
        let r = Registry::new();
        r.span_record(&SpanRecord {
            id: 1,
            parent: 0,
            thread: 1,
            name: "phase",
            labels: &[("stage".to_string(), "conv".to_string())],
            start: r.epoch,
            duration: std::time::Duration::from_nanos(500),
        });
        assert_eq!(r.spans().len(), 1);
        assert_eq!(r.dropped_spans(), 0);
        let h = r.histograms();
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].name, SPAN_DURATION_METRIC);
        assert!(h[0]
            .labels
            .contains(&("span".to_string(), "phase".to_string())));
        assert!(h[0]
            .labels
            .contains(&("stage".to_string(), "conv".to_string())));
        assert_eq!(h[0].count, 1);
    }
}
