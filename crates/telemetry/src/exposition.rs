//! A strict reader for the Prometheus-style text exposition the
//! [`crate::Registry`] writes — used by CI and the tests to prove the
//! dump parses back (well-formed `# TYPE` headers, samples, histogram
//! series consistency).

use std::fmt;

/// One parsed sample line (`name{labels} value`).
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full series name, including any `_bucket`/`_sum`/`_count` suffix.
    pub name: String,
    /// Parsed label pairs, in file order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Why an exposition failed to parse, with its 1-based line number
/// (0 for file-level consistency violations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpositionError {
    /// 1-based offending line, or 0 for whole-file violations.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ExpositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "malformed exposition: {}", self.message)
        } else {
            write!(
                f,
                "malformed exposition line {}: {}",
                self.line, self.message
            )
        }
    }
}

impl std::error::Error for ExpositionError {}

fn err(line: usize, message: impl Into<String>) -> ExpositionError {
    ExpositionError {
        line,
        message: message.into(),
    }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_labels(line_no: usize, block: &str) -> Result<Vec<(String, String)>, ExpositionError> {
    let mut labels = Vec::new();
    let mut chars = block.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        let key = key.trim().to_string();
        if !valid_name(&key) {
            return Err(err(line_no, format!("bad label name `{key}`")));
        }
        if chars.next() != Some('"') {
            return Err(err(line_no, "label value must be quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return Err(err(line_no, "bad escape in label value")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(err(line_no, "unterminated label value")),
            }
        }
        labels.push((key, value));
        match chars.next() {
            Some(',') => continue,
            None => return Ok(labels),
            Some(c) => {
                return Err(err(
                    line_no,
                    format!("expected `,` between labels, got `{c}`"),
                ))
            }
        }
    }
}

fn parse_value(line_no: usize, raw: &str) -> Result<f64, ExpositionError> {
    match raw {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        _ => raw
            .parse()
            .map_err(|_| err(line_no, format!("bad sample value `{raw}`"))),
    }
}

/// Parses (and validates) a Prometheus-style text exposition.
///
/// Checks, beyond per-line syntax: every sample's base metric carries a
/// preceding `# TYPE` declaration; every histogram has `_bucket`, `_sum`
/// and `_count` series; bucket series are cumulative (non-decreasing in
/// `le` order) and the `le="+Inf"` bucket equals the `_count`.
///
/// # Errors
///
/// [`ExpositionError`] naming the first offending line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, ExpositionError> {
    let mut types: Vec<(String, String)> = Vec::new();
    let mut samples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (name, kind) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
                if !valid_name(name) {
                    return Err(err(line_no, format!("bad metric name `{name}` in TYPE")));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(err(line_no, format!("unknown metric type `{kind}`")));
                }
                if parts.next().is_some() {
                    return Err(err(line_no, "trailing tokens after TYPE declaration"));
                }
                types.push((name.to_string(), kind.to_string()));
            }
            continue; // other comments (HELP etc.) are legal and ignored
        }

        // Sample line: name[{labels}] value
        let (series, labels) = match line.find('{') {
            Some(open) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| err(line_no, "unterminated label block"))?;
                (
                    &line[..open],
                    parse_labels(line_no, &line[open + 1..close])?,
                )
            }
            None => {
                let cut = line
                    .find(char::is_whitespace)
                    .ok_or_else(|| err(line_no, "sample line without a value"))?;
                (&line[..cut], Vec::new())
            }
        };
        if !valid_name(series) {
            return Err(err(line_no, format!("bad series name `{series}`")));
        }
        let raw_value = line
            .rsplit(char::is_whitespace)
            .next()
            .ok_or_else(|| err(line_no, "sample line without a value"))?;
        let value = parse_value(line_no, raw_value)?;

        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                series
                    .strip_suffix(suffix)
                    .filter(|base| types.iter().any(|(n, k)| n == base && k == "histogram"))
            })
            .unwrap_or(series);
        if !types.iter().any(|(n, _)| n == base) {
            return Err(err(
                line_no,
                format!("sample `{series}` has no TYPE declaration"),
            ));
        }
        samples.push(Sample {
            name: series.to_string(),
            labels,
            value,
        });
    }

    // Histogram series consistency.
    for (name, kind) in types.iter().filter(|(_, k)| k == "histogram") {
        debug_assert_eq!(kind, "histogram");
        let count_series: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == format!("{name}_count"))
            .collect();
        if count_series.is_empty() {
            return Err(err(0, format!("histogram `{name}` has no _count series")));
        }
        if !samples.iter().any(|s| s.name == format!("{name}_sum")) {
            return Err(err(0, format!("histogram `{name}` has no _sum series")));
        }
        for count in count_series {
            fn non_le(s: &Sample) -> Vec<&(String, String)> {
                s.labels.iter().filter(|(k, _)| k != "le").collect()
            }
            let buckets: Vec<&Sample> = samples
                .iter()
                .filter(|s| s.name == format!("{name}_bucket") && non_le(s) == non_le(count))
                .collect();
            if buckets.is_empty() {
                return Err(err(0, format!("histogram `{name}` has no _bucket series")));
            }
            let mut prev = 0.0f64;
            for b in &buckets {
                if b.value < prev {
                    return Err(err(0, format!("histogram `{name}` buckets not cumulative")));
                }
                prev = b.value;
            }
            let inf = buckets.iter().find(|b| {
                b.labels
                    .iter()
                    .any(|(k, v)| k == "le" && (v == "+Inf" || v == "inf"))
            });
            match inf {
                Some(b) if b.value == count.value => {}
                Some(_) => return Err(err(0, format!("histogram `{name}` +Inf bucket != _count"))),
                None => return Err(err(0, format!("histogram `{name}` lacks a +Inf bucket"))),
            }
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder as _, Registry};

    #[test]
    fn registry_dump_roundtrips() {
        let r = Registry::new();
        r.counter_add("skips", &[("layer", "conv2")], 42);
        r.set_buckets("nd", &[2.0, 8.0]);
        r.histogram_batch("nd", &[("layer", "conv2")], &[1.0, 5.0, 9.0]);
        let samples = parse_exposition(&r.to_prometheus()).unwrap();
        let skip = samples.iter().find(|s| s.name == "skips").unwrap();
        assert_eq!(skip.value, 42.0);
        assert_eq!(skip.labels, vec![("layer".into(), "conv2".into())]);
        assert!(samples
            .iter()
            .any(|s| s.name == "nd_count" && s.value == 3.0));
    }

    #[test]
    fn undeclared_series_is_an_error() {
        let e = parse_exposition("loose_metric 3\n").unwrap_err();
        assert!(e.to_string().contains("no TYPE"), "{e}");
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse_exposition("# TYPE x wat\nx 1\n").is_err());
        assert!(parse_exposition("# TYPE x counter\nx{k=\"v} 1\n").is_err());
        assert!(parse_exposition("# TYPE x counter\nx notanumber\n").is_err());
        assert!(parse_exposition("# TYPE x counter\nx\n").is_err());
    }

    #[test]
    fn histogram_without_inf_bucket_is_an_error() {
        let text = "# TYPE h histogram\nh_bucket{le=\"1.0\"} 1\nh_sum 1.0\nh_count 2\n";
        let e = parse_exposition(text).unwrap_err();
        assert!(e.to_string().contains("+Inf"), "{e}");
    }

    #[test]
    fn histogram_with_mismatched_inf_is_an_error() {
        let text =
            "# TYPE h histogram\nh_bucket{le=\"1.0\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1.0\nh_count 2\n";
        let e = parse_exposition(text).unwrap_err();
        assert!(e.to_string().contains("+Inf bucket != _count"), "{e}");
    }

    #[test]
    fn escaped_label_values_roundtrip() {
        let text = "# TYPE x counter\nx{k=\"a\\\"b\\\\c\\nd\"} 1\n";
        let samples = parse_exposition(text).unwrap();
        assert_eq!(samples[0].labels[0].1, "a\"b\\c\nd");
    }
}
