#![warn(missing_docs)]

//! Telemetry substrate of the Fast-BCNN workspace: spans (scoped
//! wall-clock timers with parent/child nesting), monotonic counters and
//! fixed-bucket histograms, behind a cheap [`Recorder`] trait.
//!
//! The design follows the `log`-crate pattern: instrumented code calls
//! the free functions ([`counter_add`], [`histogram_record`], [`span`]),
//! which consult a process-global recorder slot. When nothing is
//! installed — the default — every call short-circuits on one relaxed
//! atomic load, so the instrumented hot paths cost nothing measurable
//! (the workspace asserts < 5 % MC-dropout overhead in a test). When a
//! [`Registry`] is installed, events aggregate in memory and can be
//! exported as JSONL trace events or a Prometheus-style text exposition.
//!
//! The crate has **zero dependencies** (std only) so that every other
//! workspace crate can depend on it without widening the offline build
//! surface.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//!
//! let registry = Arc::new(fbcnn_telemetry::Registry::new());
//! let _guard = fbcnn_telemetry::install(registry.clone());
//! {
//!     let _span = fbcnn_telemetry::span("work");
//!     fbcnn_telemetry::counter_add("items_processed", &[("kind", "demo")], 3);
//! }
//! assert_eq!(registry.counter_total("items_processed"), 3);
//! assert_eq!(registry.spans().len(), 1);
//! ```

mod exposition;
mod registry;
mod windowed;

pub use exposition::{parse_exposition, ExpositionError, Sample};
pub use registry::{
    CounterSnapshot, HistogramSnapshot, Registry, SpanEvent, DEFAULT_BUCKETS, SPAN_DURATION_METRIC,
};
pub use windowed::{
    histogram_quantile, snapshot_quantile, ClassBurn, Clock, HealthReport, HealthStatus,
    LatencyObjective, ManualClock, MonotonicClock, SloPolicy, SloViolation, WindowSnapshot,
    WindowedRegistry, QUANTILE_WIDTH_RATIO, REQUEST_LATENCY_METRIC, REQUEST_OUTCOME_METRIC,
    STANDARD_QUANTILES,
};

use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Artifact kind written on every JSONL trace line (the `core::io`
/// envelope's `artifact` field).
pub const TRACE_ARTIFACT: &str = "trace-event";

/// Trace line format version; readers refuse other versions.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// A closed span, as delivered to [`Recorder::span_record`].
#[derive(Debug)]
pub struct SpanRecord<'a> {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root.
    pub parent: u64,
    /// Process-unique id (never 0) of the thread that opened and closed
    /// the span — span stacks are thread-local, so nesting invariants
    /// only hold per thread.
    pub thread: u64,
    /// Static span name (e.g. `"mc_run"`).
    pub name: &'static str,
    /// Dynamic labels attached at open time.
    pub labels: &'a [(String, String)],
    /// When the span opened.
    pub start: Instant,
    /// How long it stayed open.
    pub duration: Duration,
}

/// Where telemetry events go. Implementations must be cheap and
/// non-blocking enough to sit inside inference loops.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the counter `name` under the given labels.
    fn counter_add(&self, name: &'static str, labels: &[(&str, &str)], delta: u64);

    /// Records one observation into the histogram `name`.
    fn histogram_record(&self, name: &'static str, labels: &[(&str, &str)], value: f64);

    /// Records a batch of observations; the default loops over
    /// [`Recorder::histogram_record`], implementations may lock once.
    fn histogram_batch(&self, name: &'static str, labels: &[(&str, &str)], values: &[f64]) {
        for &v in values {
            self.histogram_record(name, labels, v);
        }
    }

    /// Receives a span that just closed.
    fn span_record(&self, span: &SpanRecord<'_>);

    /// The cumulative [`Registry`] this recorder ultimately aggregates
    /// into, if it has one. Wrapper recorders (e.g.
    /// [`WindowedRegistry`]) return their inner total registry so that
    /// library code holding an `Arc<Registry>` can recognise — via
    /// [`installed_sink_is`] — that the global slot already feeds it,
    /// instead of trying to re-`install` and deadlocking on the
    /// non-reentrant install lock.
    fn sink(&self) -> Option<&Registry> {
        None
    }
}

/// A recorder that drops everything — the explicit form of the default
/// "nothing installed" state, useful for overhead tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter_add(&self, _: &'static str, _: &[(&str, &str)], _: u64) {}
    fn histogram_record(&self, _: &'static str, _: &[(&str, &str)], _: f64) {}
    fn span_record(&self, _: &SpanRecord<'_>) {}
}

// ------------------------------------------------------------ global slot

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);
// Serializes installs across threads: tests that install a registry hold
// the guard for their whole body, so concurrent test binaries' threads
// never fight over the global slot.
static INSTALL: Mutex<()> = Mutex::new(());
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// A small process-unique id (never 0) for the calling thread, assigned
/// on first use. Stable for the thread's lifetime; stamped on every
/// [`SpanRecord`] so trace consumers can check per-thread ordering.
pub fn thread_id() -> u64 {
    THREAD_ID.with(|&id| id)
}

fn lock_install() -> MutexGuard<'static, ()> {
    // A poisoned install lock only means another test panicked while
    // holding it; the slot itself is always in a consistent state.
    INSTALL.lock().unwrap_or_else(PoisonError::into_inner)
}

fn set_recorder(rec: Option<Arc<dyn Recorder>>) {
    let enabled = rec.is_some();
    {
        let mut slot = RECORDER.write().unwrap_or_else(PoisonError::into_inner);
        *slot = rec;
    }
    ENABLED.store(enabled, Ordering::SeqCst);
}

/// Keeps the installed recorder alive; dropping it uninstalls and
/// releases the install lock.
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub struct InstallGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        set_recorder(None);
    }
}

impl std::fmt::Debug for InstallGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("InstallGuard")
    }
}

/// Installs `recorder` as the process-global telemetry sink.
///
/// The returned guard holds an exclusive install lock — a second
/// `install` (or [`install_none`]) from another thread blocks until the
/// first guard drops, which keeps concurrently running tests from
/// recording into each other's registries.
pub fn install(recorder: Arc<dyn Recorder>) -> InstallGuard {
    let lock = lock_install();
    set_recorder(Some(recorder));
    InstallGuard { _lock: lock }
}

/// Holds the install lock with *no* recorder installed — the state an
/// overhead test wants pinned for its whole measurement.
pub fn install_none() -> InstallGuard {
    let lock = lock_install();
    set_recorder(None);
    InstallGuard { _lock: lock }
}

/// Whether a recorder is currently installed. This is the only cost
/// disabled instrumentation pays.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn current() -> Option<Arc<dyn Recorder>> {
    if !enabled() {
        return None;
    }
    RECORDER
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// A handle to the currently installed recorder, if any.
///
/// This is the `install`-free threading path: a harness that already
/// holds the global slot (e.g. a CLI front end with a [`FileSink`]) can
/// hand its recorder down to library code, and that library code can
/// check — via [`is_installed`] — whether a registry it was given is
/// already the global sink instead of trying to re-`install` it, which
/// would deadlock on the non-reentrant install lock.
pub fn recorder() -> Option<Arc<dyn Recorder>> {
    current()
}

/// Whether `rec` is the recorder currently installed in the global slot
/// (pointer identity, not value equality).
pub fn is_installed(rec: &Arc<dyn Recorder>) -> bool {
    current().is_some_and(|cur| Arc::ptr_eq(&cur, rec))
}

/// Whether the installed recorder ultimately aggregates into `registry`
/// — either because `registry` *is* the installed recorder, or because
/// the installed recorder (e.g. a [`WindowedRegistry`]) reports it as
/// its [`Recorder::sink`]. Library code that is handed an
/// `Arc<Registry>` should use this, not [`is_installed`], before
/// deciding whether it needs to `install` — the install lock is not
/// reentrant.
pub fn installed_sink_is(registry: &Arc<Registry>) -> bool {
    current().is_some_and(|cur| {
        cur.sink()
            .is_some_and(|sink| std::ptr::eq(sink, Arc::as_ptr(registry)))
    })
}

// ---------------------------------------------------------- free functions

/// Adds `delta` to counter `name` on the installed recorder, if any.
#[inline]
pub fn counter_add(name: &'static str, labels: &[(&str, &str)], delta: u64) {
    if let Some(rec) = current() {
        rec.counter_add(name, labels, delta);
    }
}

/// Records one histogram observation on the installed recorder, if any.
#[inline]
pub fn histogram_record(name: &'static str, labels: &[(&str, &str)], value: f64) {
    if let Some(rec) = current() {
        rec.histogram_record(name, labels, value);
    }
}

/// Records a batch of histogram observations on the installed recorder,
/// if any.
#[inline]
pub fn histogram_batch(name: &'static str, labels: &[(&str, &str)], values: &[f64]) {
    if let Some(rec) = current() {
        rec.histogram_batch(name, labels, values);
    }
}

/// Opens an unlabeled span; it closes (and records) when the returned
/// guard drops. Disabled cost: one atomic load.
#[inline]
pub fn span(name: &'static str) -> Span {
    open_span(name, Vec::new)
}

/// Opens a labeled span. `labels` is only invoked when a recorder is
/// installed, so formatting label values costs nothing when disabled.
#[inline]
pub fn span_with(name: &'static str, labels: impl FnOnce() -> Vec<(String, String)>) -> Span {
    open_span(name, labels)
}

fn open_span(name: &'static str, labels: impl FnOnce() -> Vec<(String, String)>) -> Span {
    let Some(recorder) = current() else {
        return Span { active: None };
    };
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    Span {
        active: Some(ActiveSpan {
            id,
            parent,
            name,
            labels: labels(),
            start: Instant::now(),
            recorder,
        }),
    }
}

/// RAII span guard returned by [`span`] / [`span_with`]; recording
/// happens on drop. A span opened while no recorder was installed is
/// inert.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    labels: Vec<(String, String)>,
    start: Instant,
    recorder: Arc<dyn Recorder>,
}

impl Span {
    /// The span id, or 0 when the span is inert (no recorder installed
    /// at open time).
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let duration = active.start.elapsed();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Scoped drops unwind in LIFO order, so the top is ours; be
            // defensive anyway — a leaked span must not corrupt nesting.
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != active.id);
            }
        });
        active.recorder.span_record(&SpanRecord {
            id: active.id,
            parent: active.parent,
            thread: thread_id(),
            name: active.name,
            labels: &active.labels,
            start: active.start,
            duration,
        });
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.active {
            Some(a) => write!(f, "Span({} #{})", a.name, a.id),
            None => f.write_str("Span(inert)"),
        }
    }
}

// ----------------------------------------------------------------- sinks

/// Owns a [`Registry`] installed as the global recorder and writes the
/// requested export files when dropped — the one-liner CLI front ends
/// use to honor `--trace-out` / `--metrics-out`.
#[derive(Debug)]
pub struct FileSink {
    registry: Arc<Registry>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    // Dropped after the files are written (field order!).
    _guard: InstallGuard,
}

impl FileSink {
    /// Installs a fresh registry when at least one output path is given;
    /// returns `None` (and installs nothing) otherwise.
    pub fn new(trace_out: Option<&str>, metrics_out: Option<&str>) -> Option<Self> {
        if trace_out.is_none() && metrics_out.is_none() {
            return None;
        }
        let registry = Arc::new(Registry::new());
        let guard = install(registry.clone());
        Some(Self {
            registry,
            trace_out: trace_out.map(PathBuf::from),
            metrics_out: metrics_out.map(PathBuf::from),
            _guard: guard,
        })
    }

    /// The installed registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        for (path, content) in [
            (self.trace_out.take(), self.registry.to_jsonl()),
            (self.metrics_out.take(), self.registry.to_prometheus()),
        ] {
            let Some(path) = path else { continue };
            match std::fs::write(&path, content) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write {}: {e}", path.display()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_calls_are_inert() {
        let _guard = install_none();
        assert!(!enabled());
        counter_add("nobody_listens", &[], 5);
        histogram_record("nobody_listens", &[], 1.0);
        let s = span("nobody_listens");
        assert_eq!(s.id(), 0);
        drop(s);
    }

    #[test]
    fn install_routes_events_and_uninstalls_on_drop() {
        let registry = Arc::new(Registry::new());
        {
            let _guard = install(registry.clone());
            assert!(enabled());
            counter_add("hits", &[("kind", "a")], 2);
            counter_add("hits", &[("kind", "b")], 1);
            histogram_batch("obs", &[], &[1.0, 3.0]);
            {
                let _outer = span("outer");
                let _inner = span_with("inner", || vec![("k".into(), "v".into())]);
            }
        }
        assert!(!enabled());
        assert_eq!(registry.counter_total("hits"), 3);
        assert_eq!(registry.counter_value("hits", &[("kind", "a")]), Some(2));
        let spans = registry.spans();
        assert_eq!(spans.len(), 2);
        // Inner closed first; its parent is the outer span.
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.labels, vec![("k".to_string(), "v".to_string())]);
    }

    #[test]
    fn spans_opened_before_install_never_record() {
        let registry = Arc::new(Registry::new());
        let orphan = {
            let _g = install_none();
            span("orphan")
        };
        let _guard = install(registry.clone());
        drop(orphan);
        assert!(registry.spans().is_empty());
    }

    #[test]
    fn file_sink_requires_an_output_path() {
        assert!(FileSink::new(None, None).is_none());
    }

    #[test]
    fn file_sink_writes_both_files_on_drop() {
        let dir = std::env::temp_dir();
        let trace = dir.join(format!("fbcnn_tel_sink_{}.jsonl", std::process::id()));
        let metrics = dir.join(format!("fbcnn_tel_sink_{}.prom", std::process::id()));
        {
            let sink = FileSink::new(trace.to_str(), metrics.to_str()).unwrap();
            counter_add("sink_events", &[], 4);
            assert_eq!(sink.registry().counter_total("sink_events"), 4);
        }
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_text.contains("sink_events"));
        let metrics_text = std::fs::read_to_string(&metrics).unwrap();
        assert!(metrics_text.contains("sink_events 4"));
        let _ = std::fs::remove_file(trace);
        let _ = std::fs::remove_file(metrics);
    }
}
