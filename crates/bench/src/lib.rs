#![warn(missing_docs)]

//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see `EXPERIMENTS.md` for the mapping) and supports:
//!
//! * `--quick` — a shrunken configuration for smoke testing;
//! * `--t <N>` / `--seed <N>` — override the sample count / master seed;
//! * `--json <path>` — dump the result record as JSON.

use fast_bcnn::experiments::ExpConfig;

/// Command-line options shared by every harness binary.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// The experiment configuration (quick or full).
    pub cfg: ExpConfig,
    /// Optional JSON output path.
    pub json: Option<String>,
}

/// Parses the common flags from `std::env::args`.
pub fn parse_args() -> HarnessArgs {
    let args: Vec<String> = std::env::args().collect();
    from_arg_list(&args[1..])
}

/// Parses the common flags from a slice (testable form of
/// [`parse_args`]).
pub fn from_arg_list(args: &[String]) -> HarnessArgs {
    let mut cfg = ExpConfig::default();
    let mut json = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = ExpConfig::quick(),
            "--json" => {
                if let Some(path) = args.get(i + 1) {
                    json = Some(path.clone());
                    i += 1;
                }
            }
            "--t" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    cfg.t = v;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    cfg.seed = v;
                    i += 1;
                }
            }
            other => eprintln!("ignoring unknown flag: {other}"),
        }
        i += 1;
    }
    HarnessArgs { cfg, json }
}

/// Writes the JSON record if `--json` was given.
pub fn maybe_dump<T: serde::Serialize>(args: &HarnessArgs, value: &T) {
    if let Some(path) = &args.json {
        if let Err(e) = fast_bcnn::report::save_json(path, value) {
            eprintln!("failed to write {path}: {e}");
        } else {
            eprintln!("wrote {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_args() {
        let a = from_arg_list(&[]);
        assert_eq!(a.cfg, ExpConfig::default());
        assert!(a.json.is_none());
    }

    #[test]
    fn quick_and_json_flags() {
        let a = from_arg_list(&strings(&["--quick", "--json", "/tmp/x.json"]));
        assert_eq!(a.cfg, ExpConfig::quick());
        assert_eq!(a.json.as_deref(), Some("/tmp/x.json"));
    }

    #[test]
    fn t_override() {
        let a = from_arg_list(&strings(&["--t", "12"]));
        assert_eq!(a.cfg.t, 12);
    }

    #[test]
    fn seed_override() {
        let a = from_arg_list(&strings(&["--seed", "99"]));
        assert_eq!(a.cfg.seed, 99);
    }
}
