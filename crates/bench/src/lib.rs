#![warn(missing_docs)]

//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see `EXPERIMENTS.md` for the mapping) and supports:
//!
//! * `--quick` — a shrunken configuration for smoke testing;
//! * `--t <N>` / `--seed <N>` — override the sample count / master seed;
//! * `--threads <N>` — worker threads for exact MC-dropout passes;
//! * `--json <path>` — dump the result record as JSON;
//! * `--trace-out <path>` / `--metrics-out <path>` — install a telemetry
//!   recorder for the run and export it as a JSONL trace / a
//!   Prometheus-style text dump on exit (see `docs/OBSERVABILITY.md`).
//!
//! Unknown flags and malformed values are hard errors: [`parse_args`]
//! prints the problem and exits with status 2.

use fast_bcnn::experiments::ExpConfig;

pub mod baseline;
mod batch_report;
mod chaos_report;
mod serve_report;
mod slo_report;
mod supervise_report;
mod swap_report;
pub mod trace_lint;

pub use batch_report::{BatchBenchReport, BatchPoint};
pub use chaos_report::{ChaosBenchReport, ChaosRound, CHAOS_SCHEMA};
pub use serve_report::{ServeBenchReport, ServeQuantileCell, SERVE_SCHEMA};
pub use slo_report::{
    SloBenchReport, SloChaosCell, SloClassCell, SloQuantileCell, SloWindow, SLO_SCHEMA,
};
pub use supervise_report::{
    SuperviseBenchReport, SuperviseShardCell, SuperviseTransitionCell, SUPERVISE_SCHEMA,
};
pub use swap_report::{SwapBenchReport, SwapBenchRound, SwapVersionCell, SWAP_SCHEMA};

/// Command-line options shared by every harness binary.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// The experiment configuration (quick or full).
    pub cfg: ExpConfig,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Optional JSONL telemetry trace output path.
    pub trace_out: Option<String>,
    /// Optional Prometheus-style metrics output path.
    pub metrics_out: Option<String>,
}

impl HarnessArgs {
    /// Installs a telemetry recorder when `--trace-out` or
    /// `--metrics-out` was given. Keep the returned sink alive for the
    /// whole run: the files are written when it drops.
    pub fn telemetry(&self) -> Option<fast_bcnn::telemetry::FileSink> {
        fast_bcnn::telemetry::FileSink::new(self.trace_out.as_deref(), self.metrics_out.as_deref())
    }
}

/// Parses the common flags from `std::env::args`, exiting with status 2
/// on any unknown flag or malformed value.
pub fn parse_args() -> HarnessArgs {
    let args: Vec<String> = std::env::args().collect();
    match from_arg_list(&args[1..]) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: [--quick] [--t <N>] [--seed <N>] [--threads <N>] [--json <path>] \
                 [--trace-out <path>] [--metrics-out <path>]"
            );
            std::process::exit(2);
        }
    }
}

/// Parses the common flags from a slice (testable form of
/// [`parse_args`]).
///
/// # Errors
///
/// Returns a message for an unknown flag, a flag missing its value, or a
/// value that does not parse (including `--threads 0`).
pub fn from_arg_list(args: &[String]) -> Result<HarnessArgs, String> {
    fn value<'a>(args: &'a [String], i: usize, flag: &str) -> Result<&'a str, String> {
        args.get(i + 1)
            .map(String::as_str)
            .ok_or_else(|| format!("{flag} needs a value"))
    }
    fn number<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, String> {
        let raw = value(args, i, flag)?;
        raw.parse()
            .map_err(|_| format!("{flag} needs a number, got `{raw}`"))
    }

    let mut cfg = ExpConfig::default();
    let mut json = None;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = ExpConfig::quick(),
            "--json" => {
                json = Some(value(args, i, "--json")?.to_string());
                i += 1;
            }
            "--trace-out" => {
                trace_out = Some(value(args, i, "--trace-out")?.to_string());
                i += 1;
            }
            "--metrics-out" => {
                metrics_out = Some(value(args, i, "--metrics-out")?.to_string());
                i += 1;
            }
            "--t" => {
                cfg.t = number(args, i, "--t")?;
                i += 1;
            }
            "--seed" => {
                cfg.seed = number(args, i, "--seed")?;
                i += 1;
            }
            "--threads" => {
                cfg.threads = number(args, i, "--threads")?;
                if cfg.threads == 0 {
                    return Err("--threads needs a value >= 1".to_string());
                }
                i += 1;
            }
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    Ok(HarnessArgs {
        cfg,
        json,
        trace_out,
        metrics_out,
    })
}

/// Writes the JSON record if `--json` was given.
pub fn maybe_dump<T: serde::Serialize>(args: &HarnessArgs, value: &T) {
    if let Some(path) = &args.json {
        if let Err(e) = fast_bcnn::report::save_json(path, value) {
            eprintln!("failed to write {path}: {e}");
        } else {
            eprintln!("wrote {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_args() {
        let a = from_arg_list(&[]).unwrap();
        assert_eq!(a.cfg, ExpConfig::default());
        assert_eq!(a.cfg.threads, 1);
        assert!(a.json.is_none());
    }

    #[test]
    fn quick_and_json_flags() {
        let a = from_arg_list(&strings(&["--quick", "--json", "/tmp/x.json"])).unwrap();
        assert_eq!(a.cfg, ExpConfig::quick());
        assert_eq!(a.json.as_deref(), Some("/tmp/x.json"));
    }

    #[test]
    fn t_override() {
        let a = from_arg_list(&strings(&["--t", "12"])).unwrap();
        assert_eq!(a.cfg.t, 12);
    }

    #[test]
    fn seed_override() {
        let a = from_arg_list(&strings(&["--seed", "99"])).unwrap();
        assert_eq!(a.cfg.seed, 99);
    }

    #[test]
    fn threads_override() {
        let a = from_arg_list(&strings(&["--threads", "4"])).unwrap();
        assert_eq!(a.cfg.threads, 4);
        // --quick resets the config; order matters, last writer wins.
        let b = from_arg_list(&strings(&["--threads", "4", "--quick"])).unwrap();
        assert_eq!(b.cfg.threads, 1);
    }

    #[test]
    fn telemetry_flags_parse_and_gate_the_sink() {
        let a = from_arg_list(&strings(&[
            "--trace-out",
            "/tmp/t.jsonl",
            "--metrics-out",
            "/tmp/m.prom",
        ]))
        .unwrap();
        assert_eq!(a.trace_out.as_deref(), Some("/tmp/t.jsonl"));
        assert_eq!(a.metrics_out.as_deref(), Some("/tmp/m.prom"));
        let none = from_arg_list(&[]).unwrap();
        assert!(none.telemetry().is_none(), "no flags -> no recorder");
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let e = from_arg_list(&strings(&["--bogus"])).unwrap_err();
        assert!(e.contains("--bogus"), "unhelpful message: {e}");
    }

    #[test]
    fn malformed_values_are_errors() {
        assert!(from_arg_list(&strings(&["--t"])).is_err());
        assert!(from_arg_list(&strings(&["--t", "many"])).is_err());
        assert!(from_arg_list(&strings(&["--threads", "0"])).is_err());
        assert!(from_arg_list(&strings(&["--json"])).is_err());
    }
}
