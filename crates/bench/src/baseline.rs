//! Baseline regression diffing for bench records.
//!
//! `bench_check --baseline <file>` compares the *headline ratios* of a
//! freshly produced record against a committed baseline and fails on a
//! regression beyond [`DEFAULT_TOLERANCE`]. Ratios are dimensionless
//! speedups, so they compare meaningfully across hosts in a way raw
//! nanosecond timings never would.
//!
//! The walk is schema-agnostic: any numeric field named `speedup`,
//! `speedup_fast` or `speedup_parallel` anywhere in the JSON tree is a
//! headline ratio, keyed by its path (array elements carrying a
//! `batch_size` field are keyed by it, so reordering or extending the
//! measured sizes never misaligns the comparison). This covers both
//! `BENCH_hotpath.json` (`conv.speedup_fast`, …) and `BENCH_batch.json`
//! (`points[batch_size=8].speedup`, …) without binding the checker to
//! either record's full shape.

use serde::Value;
use std::collections::BTreeMap;

/// Relative regression tolerated before the diff fails: the current
/// ratio must stay at or above `baseline × (1 - tolerance)`.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// Field names treated as headline ratios.
const RATIO_FIELDS: [&str; 3] = ["speedup", "speedup_fast", "speedup_parallel"];

fn as_number(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn walk(v: &Value, path: &str, out: &mut BTreeMap<String, f64>) {
    match v {
        Value::Map(m) => {
            for (k, child) in m {
                let child_path = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                if RATIO_FIELDS.contains(&k.as_str()) {
                    if let Some(x) = as_number(child) {
                        out.insert(child_path, x);
                        continue;
                    }
                }
                walk(child, &child_path, out);
            }
        }
        Value::Array(a) => {
            for (i, child) in a.iter().enumerate() {
                let key = child
                    .as_map()
                    .and_then(|m| m.iter().find(|(k, _)| k == "batch_size"))
                    .and_then(|(_, size)| as_number(size))
                    .map(|b| format!("{path}[batch_size={b}]"))
                    .unwrap_or_else(|| format!("{path}[{i}]"));
                walk(child, &key, out);
            }
        }
        _ => {}
    }
}

/// Every headline ratio in a parsed bench record, keyed by JSON path.
pub fn headline_ratios(record: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    walk(record, "", &mut out);
    out
}

/// One compared ratio of a baseline diff.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioDiff {
    /// JSON path of the ratio.
    pub key: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The freshly measured value.
    pub current: f64,
}

impl RatioDiff {
    /// Relative change, `+` for improvement.
    pub fn relative_change(&self) -> f64 {
        if self.baseline == 0.0 {
            0.0
        } else {
            self.current / self.baseline - 1.0
        }
    }
}

/// Diffs the headline ratios of `current` against `baseline`, failing on
/// the first ratio that regressed by more than `tolerance` (relative).
/// Ratios present in only one record are ignored — a baseline from an
/// older record shape must not spuriously fail — but the two records
/// must share at least one ratio for the diff to mean anything.
///
/// # Errors
///
/// Returns a message naming the regressed ratio (or the absence of any
/// comparable one).
pub fn diff_ratios(
    current: &Value,
    baseline: &Value,
    tolerance: f64,
) -> Result<Vec<RatioDiff>, String> {
    let current = headline_ratios(current);
    let baseline = headline_ratios(baseline);
    let mut compared = Vec::new();
    for (key, &base) in &baseline {
        let Some(&now) = current.get(key) else {
            continue;
        };
        let diff = RatioDiff {
            key: key.clone(),
            baseline: base,
            current: now,
        };
        if now < base * (1.0 - tolerance) {
            return Err(format!(
                "{key} regressed {:.1}%: baseline {base:.3}x, current {now:.3}x \
                 (tolerance {:.0}%)",
                -diff.relative_change() * 100.0,
                tolerance * 100.0
            ));
        }
        compared.push(diff);
    }
    if compared.is_empty() {
        return Err(
            "the records share no headline ratios (speedup/speedup_fast/speedup_parallel)"
                .to_string(),
        );
    }
    Ok(compared)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Value {
        serde_json::from_str(text).unwrap()
    }

    #[test]
    fn ratios_are_keyed_by_path_and_batch_size() {
        let v = parse(
            r#"{"conv": {"speedup_fast": 3.5, "speedup_parallel": 5.0},
                "points": [{"batch_size": 8, "speedup": 1.7},
                           {"batch_size": 1, "speedup": 1.0}],
                "seed": 7, "note": "speedup"}"#,
        );
        let ratios = headline_ratios(&v);
        assert_eq!(ratios.get("conv.speedup_fast"), Some(&3.5));
        assert_eq!(ratios.get("conv.speedup_parallel"), Some(&5.0));
        assert_eq!(ratios.get("points[batch_size=8].speedup"), Some(&1.7));
        assert_eq!(ratios.get("points[batch_size=1].speedup"), Some(&1.0));
        // A *string* field named like a ratio is not a ratio.
        assert_eq!(ratios.len(), 4);
    }

    #[test]
    fn within_tolerance_passes_and_reports() {
        let base = parse(r#"{"conv": {"speedup_fast": 4.0}}"#);
        let now = parse(r#"{"conv": {"speedup_fast": 3.5}}"#);
        let compared = diff_ratios(&now, &base, 0.15).unwrap();
        assert_eq!(compared.len(), 1);
        assert!(compared[0].relative_change() < 0.0);
    }

    #[test]
    fn a_regression_past_tolerance_fails_naming_the_key() {
        let base = parse(r#"{"conv": {"speedup_fast": 4.0}}"#);
        let now = parse(r#"{"conv": {"speedup_fast": 3.0}}"#);
        let err = diff_ratios(&now, &base, 0.15).unwrap_err();
        assert!(err.contains("conv.speedup_fast"), "unhelpful: {err}");
        assert!(err.contains("regressed"), "unhelpful: {err}");
    }

    #[test]
    fn improvements_always_pass() {
        let base = parse(r#"{"points": [{"batch_size": 8, "speedup": 1.5}]}"#);
        let now = parse(r#"{"points": [{"batch_size": 8, "speedup": 2.5}]}"#);
        assert!(diff_ratios(&now, &base, 0.15).is_ok());
    }

    #[test]
    fn disjoint_records_are_an_error() {
        let base = parse(r#"{"conv": {"speedup_fast": 4.0}}"#);
        let now = parse(r#"{"points": []}"#);
        assert!(diff_ratios(&now, &base, 0.15)
            .unwrap_err()
            .contains("share no headline ratios"));
    }

    #[test]
    fn extra_baseline_only_ratios_are_ignored() {
        let base = parse(r#"{"conv": {"speedup_fast": 4.0, "speedup_parallel": 9.0}}"#);
        let now = parse(r#"{"conv": {"speedup_fast": 4.0}}"#);
        let compared = diff_ratios(&now, &base, 0.15).unwrap();
        assert_eq!(compared.len(), 1);
    }
}
