//! The `BENCH_chaos.json` record shared by the `chaos` soak harness
//! (writer) and the `bench_check` CI validator (reader).
//!
//! Unlike `BENCH_batch.json` this record carries a `schema` tag
//! ([`CHAOS_SCHEMA`]) so `bench_check` can tell the two apart from the
//! file contents alone. The record flattens the in-memory
//! `fast_bcnn::chaos::ChaosReport` into plain serializable fields and
//! keeps both halves of the soak's acceptance evidence: the reconciliation
//! verdict computed at run time and the raw quantities a reader needs to
//! re-derive it.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The `schema` tag every chaos record carries.
pub const CHAOS_SCHEMA: &str = "chaos-v1";

/// One fault round of the soak.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosRound {
    /// The fault class applied (`ChaosClass::name`).
    pub class: String,
    /// Requests offered this round.
    pub offered: usize,
    /// Requests that produced a prediction.
    pub ok: usize,
    /// Requests that failed with a typed error.
    pub failed: usize,
    /// Requests whose sample budget expired (flagged partials).
    pub expired: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Retry attempts spent this round.
    pub retries: u64,
}

/// The full `BENCH_chaos.json` record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosBenchReport {
    /// Always [`CHAOS_SCHEMA`]; lets `bench_check` dispatch on content.
    pub schema: String,
    /// The campaign seed — replaying with it reproduces the run.
    pub seed: u64,
    /// Whether the quick (smoke) configuration ran; the full-soak floors
    /// in [`ChaosBenchReport::validate`] only bind when this is false.
    pub quick: bool,
    /// Requests offered across all rounds.
    pub requests_total: usize,
    /// Requests that produced a prediction.
    pub ok_total: usize,
    /// Requests that failed with a typed error.
    pub failed_total: usize,
    /// Distinct fault classes exercised, in roster order.
    pub classes: Vec<String>,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Requests admitted with a reduced sample budget.
    pub degraded: usize,
    /// Requests whose deadline/sample budget expired.
    pub expired: usize,
    /// Retry attempts spent.
    pub retries: u64,
    /// Requests healed by a retry.
    pub retry_successes: u64,
    /// Requests that exhausted their retry budget.
    pub retry_exhausted: u64,
    /// Requests served on the exact path by an open breaker.
    pub forced_exact: u64,
    /// Half-open probes issued.
    pub probes: u64,
    /// Watchdog requeues (0 on the sequential soak path).
    pub requeues: u64,
    /// Units abandoned after exhausting requeues — must be 0.
    pub abandoned: u64,
    /// Failed-request counts bucketed by typed reason.
    pub loss_reasons: BTreeMap<String, u64>,
    /// The breaker's full transition sequence, as `(from, to)` names.
    pub transitions: Vec<(String, String)>,
    /// The breaker state after the campaign.
    pub final_breaker_state: String,
    /// Snapshot of the resilience telemetry counters.
    pub counters: BTreeMap<String, u64>,
    /// Per-round summaries, in order.
    pub rounds: Vec<ChaosRound>,
    /// Whether outcome/total/counter reconciliation passed at run time.
    pub reconciled: bool,
    /// The first reconciliation failure, when `reconciled` is false.
    pub reconcile_error: Option<String>,
    /// Wall-clock of the campaign, nanoseconds.
    pub elapsed_ns: u64,
}

impl ChaosBenchReport {
    /// Flattens an in-memory campaign report into the JSON record,
    /// stamping the reconciliation verdict computed against the live
    /// telemetry snapshot.
    pub fn from_report(report: &fast_bcnn::chaos::ChaosReport, quick: bool) -> Self {
        let reconcile = report.reconcile();
        let t = &report.totals;
        Self {
            schema: CHAOS_SCHEMA.to_string(),
            seed: report.seed,
            quick,
            requests_total: report.requests_total,
            ok_total: report.ok_total,
            failed_total: report.failed_total,
            classes: report.classes.clone(),
            shed: t.shed,
            degraded: t.degraded,
            expired: t.expired,
            retries: t.retries,
            retry_successes: t.retry_successes,
            retry_exhausted: t.retry_exhausted,
            forced_exact: t.forced_exact,
            probes: t.probes,
            requeues: t.requeues,
            abandoned: t.abandoned,
            loss_reasons: report.loss_reasons.clone(),
            transitions: report.transitions.clone(),
            final_breaker_state: report.final_breaker_state.clone(),
            counters: report.counters.clone(),
            rounds: report
                .rounds
                .iter()
                .map(|r| ChaosRound {
                    class: r.class.clone(),
                    offered: r.offered,
                    ok: r.ok,
                    failed: r.failed,
                    expired: r.expired,
                    shed: r.shed,
                    retries: r.retries,
                })
                .collect(),
            reconciled: reconcile.is_ok(),
            reconcile_error: reconcile.err(),
            elapsed_ns: report.elapsed_ns,
        }
    }

    /// Validates the record for CI. Every run must have reconciled
    /// exactly, typed every loss and abandoned nothing; a full (non
    /// `--quick`) soak must additionally have offered ≥ 200 requests over
    /// ≥ 5 fault classes, applied deadline pressure, shed under overload,
    /// healed at least one transient by retry and moved the breaker.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a message.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != CHAOS_SCHEMA {
            return Err(format!(
                "schema `{}`, expected `{CHAOS_SCHEMA}`",
                self.schema
            ));
        }
        if !self.reconciled {
            return Err(format!(
                "accounting did not reconcile: {}",
                self.reconcile_error.as_deref().unwrap_or("unknown")
            ));
        }
        if self.ok_total + self.failed_total != self.requests_total {
            return Err(format!(
                "ok {} + failed {} != offered {}",
                self.ok_total, self.failed_total, self.requests_total
            ));
        }
        let losses: u64 = self.loss_reasons.values().sum();
        if losses != self.failed_total as u64 {
            return Err(format!(
                "loss_reasons sum to {losses}, failed_total is {}",
                self.failed_total
            ));
        }
        if self.abandoned != 0 {
            return Err(format!("{} units were abandoned", self.abandoned));
        }
        if self.rounds.is_empty() {
            return Err("no fault rounds".into());
        }
        if !self.quick {
            if self.requests_total < 200 {
                return Err(format!(
                    "full soak offered {} requests, floor is 200",
                    self.requests_total
                ));
            }
            if self.classes.len() < 5 {
                return Err(format!(
                    "full soak exercised {} fault classes, floor is 5",
                    self.classes.len()
                ));
            }
            if self.expired == 0 {
                return Err("full soak applied no deadline pressure".into());
            }
            if self.shed == 0 && self.degraded == 0 {
                return Err("full soak never triggered admission control".into());
            }
            if self.retry_successes == 0 {
                return Err("full soak healed nothing by retry".into());
            }
            if self.transitions.is_empty() {
                return Err("full soak never moved the breaker".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(quick: bool) -> ChaosBenchReport {
        ChaosBenchReport {
            schema: CHAOS_SCHEMA.to_string(),
            seed: 5,
            quick,
            requests_total: 240,
            ok_total: 200,
            failed_total: 40,
            classes: [
                "calm",
                "latency",
                "sample_panic",
                "threshold_truncate",
                "weight_nan",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            shed: 12,
            degraded: 8,
            expired: 16,
            retries: 30,
            retry_successes: 20,
            retry_exhausted: 4,
            forced_exact: 10,
            probes: 4,
            requeues: 0,
            abandoned: 0,
            loss_reasons: [
                ("thresholds".to_string(), 28u64),
                ("overloaded".to_string(), 12),
            ]
            .into_iter()
            .collect(),
            transitions: vec![("closed".into(), "open".into())],
            final_breaker_state: "closed".into(),
            counters: BTreeMap::new(),
            rounds: vec![ChaosRound {
                class: "calm".into(),
                offered: 240,
                ok: 200,
                failed: 40,
                expired: 16,
                shed: 12,
                retries: 30,
            }],
            reconciled: true,
            reconcile_error: None,
            elapsed_ns: 1,
        }
    }

    #[test]
    fn json_round_trip() {
        let r = record(false);
        let json = serde_json::to_string(&r).unwrap();
        let back: ChaosBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn a_clean_full_soak_passes() {
        assert!(record(false).validate().is_ok());
    }

    #[test]
    fn reconcile_failures_always_fail_validation() {
        let mut r = record(true);
        r.reconciled = false;
        r.reconcile_error = Some("counter shed_requests = 3, totals say 4".into());
        assert!(r.validate().unwrap_err().contains("reconcile"));
    }

    #[test]
    fn untyped_losses_fail_validation() {
        let mut r = record(true);
        r.loss_reasons.clear();
        assert!(r.validate().unwrap_err().contains("loss_reasons"));
    }

    #[test]
    fn full_soak_floors_do_not_bind_quick_runs() {
        let mut r = record(true);
        r.requests_total = 24;
        r.ok_total = 20;
        r.failed_total = 4;
        r.loss_reasons = [("thresholds".to_string(), 4u64)].into_iter().collect();
        r.rounds[0].offered = 24;
        assert!(r.validate().is_ok());
        r.quick = false;
        assert!(r.validate().unwrap_err().contains("floor is 200"));
    }

    #[test]
    fn abandoned_units_fail_everywhere() {
        let mut r = record(true);
        r.abandoned = 1;
        assert!(r.validate().unwrap_err().contains("abandoned"));
    }

    #[test]
    fn wrong_schema_tag_is_rejected() {
        let mut r = record(true);
        r.schema = "batch-v1".into();
        assert!(r.validate().unwrap_err().contains("schema"));
    }
}
