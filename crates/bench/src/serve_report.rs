//! The `BENCH_serve.json` record shared by the `loadgen` harness
//! (writer) and the `bench_check` CI validator (reader).
//!
//! The record flattens a `fast_bcnn::serve::ServeSoakReport` — the
//! three-way loadgen ↔ server ↔ registry ledger — and adds the latency
//! view: per-class p50/p95/p99/p999 computed two ways (the bucket-edge
//! estimate via [`histogram_quantile`] over [`DEFAULT_BUCKETS`], and
//! the exact same-rank value from the raw client-side latencies), plus
//! goodput. Like every other `BENCH_*.json` it carries a `schema` tag
//! ([`SERVE_SCHEMA`]) so `bench_check` can dispatch on content alone.

use fast_bcnn::serve::ServeSoakReport;
use fast_bcnn::telemetry::{histogram_quantile, DEFAULT_BUCKETS, STANDARD_QUANTILES};
use serde::{Deserialize, Serialize};

/// The `schema` tag every serve record carries.
pub const SERVE_SCHEMA: &str = "serve-v1";

/// One per-class latency quantile, estimated and exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeQuantileCell {
    /// SLO class (or `malformed` for injected bad frames).
    pub class: String,
    /// Quantile name (`"p50"` … `"p999"`).
    pub name: String,
    /// The quantile in `(0, 1]`.
    pub q: f64,
    /// Bucket-edge estimate over the default power-of-four buckets,
    /// nanoseconds.
    pub estimate_ns: f64,
    /// Exact same-rank value from the sorted client latencies.
    pub exact_ns: u64,
    /// Whether the estimate honors the documented bucket error bound
    /// (`exact <= estimate < exact * QUANTILE_WIDTH_RATIO`).
    pub within_bound: bool,
}

/// The full `BENCH_serve.json` record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Always [`SERVE_SCHEMA`]; lets `bench_check` dispatch on content.
    pub schema: String,
    /// Campaign seed.
    pub seed: u64,
    /// Whether the quick (smoke) configuration ran.
    pub quick: bool,
    /// Load-generator mode (`"closed"` or `"open"`).
    pub mode: String,
    /// CPUs of the host that produced the record — the goodput floor
    /// scales with it and does not bind below 4
    /// (single-CPU correctness-only acceptance).
    pub cpus: usize,
    /// Concurrent load-generator connections.
    pub connections: usize,
    /// Requests each connection offered.
    pub requests_per_connection: usize,
    /// Frames the load generator sent.
    pub offered: u64,
    /// `ok` responses (including expired partial predictions).
    pub ok: u64,
    /// Typed-engine-error responses.
    pub failed: u64,
    /// Admission-shed responses.
    pub shed: u64,
    /// Responses flagged expired (subset of `ok + failed`).
    pub expired: u64,
    /// `wire_*`-reason responses.
    pub wire_errors: u64,
    /// `unknown_class` responses.
    pub unknown_class: u64,
    /// Client transport failures (must be 0).
    pub transport_errors: u64,
    /// Load-generator workers that died mid-plan (must be 0).
    pub aborted_workers: u64,
    /// Pristine responses spot-checked for bit identity.
    pub bit_checked: u64,
    /// Spot checks that mismatched the reference engine (must be 0).
    pub bit_mismatched: u64,
    /// Connections the server accepted.
    pub server_connections: u64,
    /// Connections the server rejected at the cap.
    pub server_connections_rejected: u64,
    /// Registry requests over the campaign (version-counter delta).
    pub registry_requests: u64,
    /// Registry `ok` outcomes.
    pub registry_ok: u64,
    /// Registry `failed` outcomes.
    pub registry_failed: u64,
    /// Answered (non-shed, non-wire-error) frames per second of wall
    /// clock.
    pub goodput_rps: f64,
    /// Goodput as a multiple of the host-scaled floor
    /// (`goodput_rps / goodput_floor(cpus)`) — the record's headline
    /// ratio, dimensionless so `bench_check --baseline` can diff it
    /// across hosts.
    pub speedup: f64,
    /// Per-class latency quantiles, estimated and exact.
    pub quantiles: Vec<ServeQuantileCell>,
    /// Whether the three-way ledger reconciled exactly at run time.
    pub reconciled: bool,
    /// The first failed invariant, when `reconciled` is false.
    pub reconcile_error: Option<String>,
    /// Wall clock of the whole campaign, nanoseconds.
    pub elapsed_ns: u64,
}

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn quantile_cells(class: &str, latencies: &[u64]) -> Vec<ServeQuantileCell> {
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let mut counts = vec![0u64; DEFAULT_BUCKETS.len() + 1];
    for v in &sorted {
        let idx = DEFAULT_BUCKETS
            .iter()
            .position(|bound| *v as f64 <= *bound)
            .unwrap_or(DEFAULT_BUCKETS.len());
        counts[idx] += 1;
    }
    STANDARD_QUANTILES
        .iter()
        .map(|(name, q)| {
            let estimate_ns = histogram_quantile(DEFAULT_BUCKETS, &counts, *q).unwrap_or(0.0);
            let exact_ns = exact_quantile(&sorted, *q);
            let within_bound = estimate_ns >= exact_ns as f64
                && (exact_ns == 0
                    || estimate_ns < exact_ns as f64 * fast_bcnn::telemetry::QUANTILE_WIDTH_RATIO);
            ServeQuantileCell {
                class: class.to_string(),
                name: name.to_string(),
                q: *q,
                estimate_ns,
                exact_ns,
                within_bound,
            }
        })
        .collect()
}

impl ServeBenchReport {
    /// Flattens an in-memory soak report, stamping the reconciliation
    /// verdict and recomputing the latency quantiles both ways.
    pub fn from_soak(report: &ServeSoakReport, quick: bool, cpus: usize) -> Self {
        let reconcile = report.reconcile();
        let lg = &report.loadgen.totals;
        let answered = lg.ok + lg.failed;
        let secs = (report.elapsed_ns as f64 / 1e9).max(1e-9);
        let quantiles = report
            .loadgen
            .latencies_ns
            .iter()
            .filter(|(_, lat)| !lat.is_empty())
            .flat_map(|(class, lat)| quantile_cells(class, lat))
            .collect();
        Self {
            schema: SERVE_SCHEMA.to_string(),
            seed: report.seed,
            quick,
            mode: report.mode.clone(),
            cpus,
            connections: report.connections,
            requests_per_connection: report.requests_per_connection,
            offered: lg.offered,
            ok: lg.ok,
            failed: lg.failed,
            shed: lg.shed,
            expired: lg.expired,
            wire_errors: lg.wire_error_responses,
            unknown_class: lg.unknown_class,
            transport_errors: lg.transport_errors,
            aborted_workers: report.loadgen.aborted_workers,
            bit_checked: lg.bit_checked,
            bit_mismatched: lg.bit_mismatched,
            server_connections: report.server.connections,
            server_connections_rejected: report.server.connections_rejected,
            registry_requests: report.registry_requests,
            registry_ok: report.registry_ok,
            registry_failed: report.registry_failed,
            goodput_rps: answered as f64 / secs,
            speedup: (answered as f64 / secs) / Self::goodput_floor(cpus).max(1e-9),
            quantiles,
            reconciled: reconcile.is_ok(),
            reconcile_error: reconcile.err(),
            elapsed_ns: report.elapsed_ns,
        }
    }

    /// The full-soak goodput floor for a host with `cpus` CPUs: 1k
    /// answered requests per second at the 4-CPU reference point,
    /// scaled linearly. Below 4 CPUs the floor does not bind
    /// (correctness-only acceptance, as for `BENCH_batch.json`).
    pub fn goodput_floor(cpus: usize) -> f64 {
        1000.0 * cpus as f64 / 4.0
    }

    /// Validates the record for CI. Every run — quick or full — must
    /// have reconciled exactly with zero aborts, zero transport errors
    /// and zero bit mismatches, and must have exercised the shed,
    /// expiry and malformed-frame tiers; a full run on a ≥ 4-CPU host
    /// must additionally sustain the scaled goodput floor.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a message.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SERVE_SCHEMA {
            return Err(format!(
                "schema `{}`, expected `{SERVE_SCHEMA}`",
                self.schema
            ));
        }
        if !self.reconciled {
            return Err(format!(
                "ledger did not reconcile: {}",
                self.reconcile_error.as_deref().unwrap_or("unknown")
            ));
        }
        let accounted = self.ok + self.failed + self.shed + self.wire_errors + self.unknown_class;
        if accounted != self.offered {
            return Err(format!("responses {accounted} != offered {}", self.offered));
        }
        if self.aborted_workers != 0 {
            return Err(format!("{} workers aborted", self.aborted_workers));
        }
        if self.transport_errors != 0 {
            return Err(format!("{} transport errors", self.transport_errors));
        }
        if self.bit_mismatched != 0 {
            return Err(format!(
                "{} of {} bit-identity checks mismatched",
                self.bit_mismatched, self.bit_checked
            ));
        }
        if self.bit_checked == 0 {
            return Err("no bit-identity spot checks ran".into());
        }
        if self.ok == 0 {
            return Err("no ok responses".into());
        }
        if self.shed == 0 {
            return Err("the shed tier was never exercised".into());
        }
        if self.expired == 0 {
            return Err("the expiry tier was never exercised".into());
        }
        if self.wire_errors == 0 {
            return Err("malformed frames were never exercised".into());
        }
        if self.quantiles.is_empty() {
            return Err("no latency quantiles".into());
        }
        if let Some(q) = self.quantiles.iter().find(|q| !q.within_bound) {
            return Err(format!(
                "{} {} estimate {:.0}ns violates the bucket bound of exact {}ns",
                q.class, q.name, q.estimate_ns, q.exact_ns
            ));
        }
        if !self.quick && self.cpus >= 4 {
            let floor = Self::goodput_floor(self.cpus);
            if self.goodput_rps < floor {
                return Err(format!(
                    "goodput {:.0} req/s under the {}-CPU floor of {:.0}",
                    self.goodput_rps, self.cpus, floor
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(quick: bool) -> ServeBenchReport {
        ServeBenchReport {
            schema: SERVE_SCHEMA.to_string(),
            seed: 11,
            quick,
            mode: "closed".into(),
            cpus: 2,
            connections: 2,
            requests_per_connection: 30,
            offered: 60,
            ok: 44,
            failed: 4,
            shed: 6,
            expired: 8,
            wire_errors: 4,
            unknown_class: 2,
            transport_errors: 0,
            aborted_workers: 0,
            bit_checked: 6,
            bit_mismatched: 0,
            server_connections: 2,
            server_connections_rejected: 0,
            registry_requests: 48,
            registry_ok: 44,
            registry_failed: 4,
            goodput_rps: 120.0,
            speedup: 120.0 / ServeBenchReport::goodput_floor(2),
            quantiles: vec![ServeQuantileCell {
                class: "interactive".into(),
                name: "p99".into(),
                q: 0.99,
                estimate_ns: 1024.0,
                exact_ns: 900,
                within_bound: true,
            }],
            reconciled: true,
            reconcile_error: None,
            elapsed_ns: 500_000_000,
        }
    }

    #[test]
    fn json_round_trip() {
        let r = record(true);
        let json = serde_json::to_string(&r).unwrap();
        let back: ServeBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn a_clean_record_passes() {
        assert!(record(true).validate().is_ok());
    }

    #[test]
    fn unreconciled_ledgers_fail() {
        let mut r = record(true);
        r.reconciled = false;
        r.reconcile_error = Some("ok drifted: 3 != 4".into());
        assert!(r.validate().unwrap_err().contains("reconcile"));
    }

    #[test]
    fn aborts_and_bit_mismatches_fail() {
        let mut r = record(true);
        r.aborted_workers = 1;
        assert!(r.validate().unwrap_err().contains("aborted"));
        let mut r = record(true);
        r.bit_mismatched = 1;
        assert!(r.validate().unwrap_err().contains("bit-identity"));
    }

    #[test]
    fn missing_fault_tiers_fail() {
        for (field, msg) in [
            ("shed", "shed"),
            ("expired", "expiry"),
            ("wire", "malformed"),
        ] {
            let mut r = record(true);
            match field {
                "shed" => {
                    r.offered -= r.shed;
                    r.shed = 0;
                }
                "expired" => r.expired = 0,
                _ => {
                    r.offered -= r.wire_errors;
                    r.wire_errors = 0;
                }
            }
            assert!(r.validate().unwrap_err().contains(msg), "{field}");
        }
    }

    #[test]
    fn goodput_floor_binds_only_full_runs_on_big_hosts() {
        let mut r = record(false);
        r.goodput_rps = 10.0;
        assert!(r.validate().is_ok(), "2-CPU host must not bind");
        r.cpus = 8;
        assert!(r.validate().unwrap_err().contains("goodput"));
        r.goodput_rps = ServeBenchReport::goodput_floor(8) + 1.0;
        assert!(r.validate().is_ok());
        let mut r = record(true);
        r.cpus = 8;
        r.goodput_rps = 10.0;
        assert!(r.validate().is_ok(), "quick runs must not bind");
    }

    #[test]
    fn exact_quantiles_use_same_rank() {
        let sorted = [10, 20, 30, 40];
        assert_eq!(exact_quantile(&sorted, 0.5), 20);
        assert_eq!(exact_quantile(&sorted, 0.99), 40);
        assert_eq!(exact_quantile(&[], 0.5), 0);
    }
}
