//! The `BENCH_supervise.json` record shared by the `supervise` harness
//! (writer) and the `bench_check` CI validator (reader).
//!
//! The record flattens a `fast_bcnn::serve::SuperviseSoakReport` — the
//! self-healing campaign that poisons three shards (per-sample panics,
//! watchdog-tripping stalls, a jammed breaker) behind a live TCP server
//! and bursts seeded load until every poisoned shard has walked
//! Suspect → Quarantined → Rebuilding → Healthy. It carries the
//! per-shard supervision ledger, the ordered transition log, the
//! rebuild accounting and the reconciliation verdict. Like every other
//! `BENCH_*.json` it carries a `schema` tag ([`SUPERVISE_SCHEMA`]) so
//! `bench_check` can dispatch on content alone.

use fast_bcnn::serve::{
    SuperviseSoakReport, SUPERVISE_HANG_SHARD, SUPERVISE_JAM_SHARD, SUPERVISE_PANIC_SHARD,
};
use serde::{Deserialize, Serialize};

/// The `schema` tag every supervision record carries.
pub const SUPERVISE_SCHEMA: &str = "supervise-v1";

/// One shard's final standing: its cumulative supervision ledger, the
/// poison it carried (if any) and whether it completed the full healing
/// walk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperviseShardCell {
    /// Shard index.
    pub shard: usize,
    /// Poison injected on this shard (`"panic"`, `"hang"`, `"jam"`), or
    /// `None` for a clean shard.
    pub poison: Option<String>,
    /// Final health name (must be `"healthy"` after the campaign).
    pub health: String,
    /// Whether the shard completed the full Suspect → Quarantined →
    /// Rebuilding → Healthy walk (always `false` for clean shards —
    /// they must never enter it).
    pub full_walk: bool,
    /// Requests this shard served (primaries, failovers and probes).
    pub served: u64,
    /// Served requests that produced a prediction.
    pub ok: u64,
    /// Served requests that ended in a typed error.
    pub failed: u64,
    /// Served requests a deadline/budget expired.
    pub expired: u64,
    /// Served requests the watchdog abandoned.
    pub abandoned: u64,
    /// Probe requests served while Rebuilding.
    pub probes_served: u64,
    /// Requests whose primary was this shard but which served elsewhere.
    pub failovers_out: u64,
    /// Requests served here on behalf of a sick primary.
    pub failovers_in: u64,
    /// Times this shard entered Quarantined.
    pub quarantines: u64,
    /// Times this shard entered Rebuilding.
    pub rebuilds: u64,
}

/// One supervision state transition, in campaign order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperviseTransitionCell {
    /// Shard that moved.
    pub shard: usize,
    /// State it left.
    pub from: String,
    /// State it entered.
    pub to: String,
}

/// The full `BENCH_supervise.json` record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuperviseBenchReport {
    /// Always [`SUPERVISE_SCHEMA`]; lets `bench_check` dispatch on
    /// content.
    pub schema: String,
    /// Campaign seed.
    pub seed: u64,
    /// Whether the quick (smoke) configuration ran.
    pub quick: bool,
    /// CPUs of the host that produced the record.
    pub cpus: usize,
    /// Registry shards.
    pub shards: usize,
    /// Concurrent load-generator connections per burst.
    pub connections: usize,
    /// Load bursts driven across all phases.
    pub bursts: u64,
    /// Frames the load generator sent.
    pub offered: u64,
    /// `ok` responses (including expired partial predictions).
    pub ok: u64,
    /// Typed-engine-error responses.
    pub failed: u64,
    /// Admission-shed responses.
    pub shed: u64,
    /// Responses flagged expired (subset of `ok + failed`).
    pub expired: u64,
    /// `wire_*`-reason responses the load generator read back.
    pub wire_errors: u64,
    /// `unknown_class` responses.
    pub unknown_class: u64,
    /// Client transport failures (must be 0).
    pub transport_errors: u64,
    /// Load-generator workers that died mid-plan (must be 0).
    pub aborted_workers: u64,
    /// Pristine responses spot-checked for bit identity against the
    /// single-engine reference.
    pub bit_checked: u64,
    /// Spot checks that mismatched the reference engine (must be 0).
    pub bit_mismatched: u64,
    /// Adversarial-battery connections driven while the poisons were
    /// armed.
    pub adversarial_connections: u64,
    /// Typed `wire_*` rejects the battery read back.
    pub adversarial_rejects: u64,
    /// Registry requests over the campaign (version-counter delta).
    pub registry_requests: u64,
    /// Registry `ok` outcomes.
    pub registry_ok: u64,
    /// Registry `failed` outcomes.
    pub registry_failed: u64,
    /// Per-shard ledgers, poisons and final health.
    pub shard_cells: Vec<SuperviseShardCell>,
    /// Every supervision transition, in order.
    pub transitions: Vec<SuperviseTransitionCell>,
    /// Shard rebuilds attempted.
    pub rebuild_attempts: u64,
    /// Rebuilds whose probe gate re-admitted the shard.
    pub rebuild_successes: u64,
    /// Rebuilds whose probe gate sent the shard back to quarantine.
    pub rebuild_probe_rejects: u64,
    /// Requests routed around a quarantined or rebuilding primary
    /// (sum of per-shard `failovers_out`).
    pub failovers: u64,
    /// Wall clock until every poisoned shard had been quarantined,
    /// nanoseconds.
    pub quarantine_elapsed_ns: u64,
    /// Wall clock of the whole campaign, nanoseconds.
    pub elapsed_ns: u64,
    /// Whether the three-way ledger and the healing walk reconciled
    /// exactly at run time.
    pub reconciled: bool,
    /// The first failed invariant, when `reconciled` is false.
    pub reconcile_error: Option<String>,
}

fn poison_name(report: &SuperviseSoakReport, shard: usize) -> Option<String> {
    if !report.poisoned.contains(&shard) {
        return None;
    }
    Some(
        match shard {
            SUPERVISE_PANIC_SHARD => "panic",
            SUPERVISE_HANG_SHARD => "hang",
            SUPERVISE_JAM_SHARD => "jam",
            _ => "poisoned",
        }
        .to_string(),
    )
}

impl SuperviseBenchReport {
    /// Flattens an in-memory supervision soak report, stamping the
    /// reconciliation verdict.
    pub fn from_soak(report: &SuperviseSoakReport, quick: bool, cpus: usize) -> Self {
        let reconcile = report.reconcile();
        let lg = &report.loadgen;
        let shard_cells = report
            .ledger
            .iter()
            .enumerate()
            .map(|(shard, l)| SuperviseShardCell {
                shard,
                poison: poison_name(report, shard),
                health: report.health.get(shard).cloned().unwrap_or_default(),
                full_walk: report
                    .poisoned
                    .iter()
                    .position(|&p| p == shard)
                    .and_then(|i| report.full_walks.get(i).copied())
                    .unwrap_or(false),
                served: l.served,
                ok: l.ok,
                failed: l.failed,
                expired: l.expired,
                abandoned: l.abandoned,
                probes_served: l.probes_served,
                failovers_out: l.failovers_out,
                failovers_in: l.failovers_in,
                quarantines: l.quarantines,
                rebuilds: l.rebuilds,
            })
            .collect();
        let transitions = report
            .transitions
            .iter()
            .map(|t| SuperviseTransitionCell {
                shard: t.shard,
                from: t.from.clone(),
                to: t.to.clone(),
            })
            .collect();
        Self {
            schema: SUPERVISE_SCHEMA.to_string(),
            seed: report.seed,
            quick,
            cpus,
            shards: report.shards,
            connections: report.connections,
            bursts: report.bursts,
            offered: lg.offered,
            ok: lg.ok,
            failed: lg.failed,
            shed: lg.shed,
            expired: lg.expired,
            wire_errors: lg.wire_error_responses,
            unknown_class: lg.unknown_class,
            transport_errors: lg.transport_errors,
            aborted_workers: report.aborted_workers,
            bit_checked: lg.bit_checked,
            bit_mismatched: lg.bit_mismatched,
            adversarial_connections: report.adversarial.connections,
            adversarial_rejects: report.adversarial.rejects_received,
            registry_requests: report.registry_requests,
            registry_ok: report.registry_ok,
            registry_failed: report.registry_failed,
            shard_cells,
            transitions,
            rebuild_attempts: report.rebuild_attempts,
            rebuild_successes: report.rebuild_successes,
            rebuild_probe_rejects: report.rebuild_probe_rejects,
            failovers: report.ledger.iter().map(|l| l.failovers_out).sum(),
            quarantine_elapsed_ns: report.quarantine_elapsed_ns,
            elapsed_ns: report.elapsed_ns,
            reconciled: reconcile.is_ok(),
            reconcile_error: reconcile.err(),
        }
    }

    fn poisoned_cell(&self, poison: &str) -> Result<&SuperviseShardCell, String> {
        self.shard_cells
            .iter()
            .find(|c| c.poison.as_deref() == Some(poison))
            .ok_or_else(|| format!("no shard carried the {poison} poison"))
    }

    /// Validates the record for CI. Every run — quick or full — must
    /// have reconciled exactly with zero aborts, zero transport errors
    /// and zero bit mismatches; all three poison classes must have been
    /// injected, bitten (a typed failure for the panic shard, a
    /// watchdog abandonment for the hang shard, a quarantine for all
    /// three), healed through the full quarantine → rebuild →
    /// re-admission walk, and left every shard healthy; and the
    /// failover path must actually have carried traffic.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a message.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SUPERVISE_SCHEMA {
            return Err(format!(
                "schema `{}`, expected `{SUPERVISE_SCHEMA}`",
                self.schema
            ));
        }
        if !self.reconciled {
            return Err(format!(
                "campaign did not reconcile: {}",
                self.reconcile_error.as_deref().unwrap_or("unknown")
            ));
        }
        let accounted = self.ok + self.failed + self.shed + self.wire_errors + self.unknown_class;
        if accounted != self.offered {
            return Err(format!("responses {accounted} != offered {}", self.offered));
        }
        if self.aborted_workers != 0 {
            return Err(format!("{} workers aborted", self.aborted_workers));
        }
        if self.transport_errors != 0 {
            return Err(format!("{} transport errors", self.transport_errors));
        }
        if self.bit_checked == 0 {
            return Err("no bit-identity spot checks ran".into());
        }
        if self.bit_mismatched != 0 {
            return Err(format!(
                "{} of {} bit-identity checks mismatched",
                self.bit_mismatched, self.bit_checked
            ));
        }
        if self.shard_cells.len() != self.shards {
            return Err(format!(
                "{} shard cells for {} shards",
                self.shard_cells.len(),
                self.shards
            ));
        }
        for poison in ["panic", "hang", "jam"] {
            let cell = self.poisoned_cell(poison)?;
            if cell.quarantines == 0 {
                return Err(format!(
                    "the {poison} shard {} was never quarantined",
                    cell.shard
                ));
            }
            if !cell.full_walk {
                return Err(format!(
                    "the {poison} shard {} never completed the healing walk",
                    cell.shard
                ));
            }
        }
        let panic_cell = self.poisoned_cell("panic")?;
        if panic_cell.failed == 0 {
            return Err("the panic poison never produced a typed failure".into());
        }
        let hang_cell = self.poisoned_cell("hang")?;
        if hang_cell.abandoned == 0 {
            return Err("the hang poison never produced a watchdog abandonment".into());
        }
        if let Some(cell) = self.shard_cells.iter().find(|c| c.health != "healthy") {
            return Err(format!(
                "shard {} ended the campaign {}",
                cell.shard, cell.health
            ));
        }
        if self.failovers == 0 {
            return Err("no requests ever failed over".into());
        }
        let folded: u64 = self.shard_cells.iter().map(|c| c.failovers_out).sum();
        if folded != self.failovers {
            return Err(format!(
                "failover fold drifted: {folded} in cells, {} in headline",
                self.failovers
            ));
        }
        if self.rebuild_attempts < 3 {
            return Err(format!(
                "only {} rebuilds attempted for 3 poisoned shards",
                self.rebuild_attempts
            ));
        }
        if self.rebuild_attempts != self.rebuild_successes + self.rebuild_probe_rejects {
            return Err(format!(
                "unresolved rebuilds: {} attempted, {} re-admitted + {} rejected",
                self.rebuild_attempts, self.rebuild_successes, self.rebuild_probe_rejects
            ));
        }
        if self.transitions.is_empty() {
            return Err("no supervision transitions recorded".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(shard: usize, poison: Option<&str>) -> SuperviseShardCell {
        SuperviseShardCell {
            shard,
            poison: poison.map(str::to_string),
            health: "healthy".into(),
            full_walk: poison.is_some(),
            served: 100,
            ok: 90,
            failed: u64::from(poison == Some("panic")) * 6,
            expired: 4,
            abandoned: u64::from(poison == Some("hang")) * 5,
            probes_served: u64::from(poison.is_some()) * 3,
            failovers_out: u64::from(poison.is_some()) * 10,
            failovers_in: 10,
            quarantines: u64::from(poison.is_some()),
            rebuilds: u64::from(poison.is_some()),
        }
    }

    fn record() -> SuperviseBenchReport {
        SuperviseBenchReport {
            schema: SUPERVISE_SCHEMA.to_string(),
            seed: 11,
            quick: true,
            cpus: 4,
            shards: 4,
            connections: 2,
            bursts: 12,
            offered: 624,
            ok: 500,
            failed: 60,
            shed: 30,
            expired: 40,
            wire_errors: 24,
            unknown_class: 10,
            transport_errors: 0,
            aborted_workers: 0,
            bit_checked: 40,
            bit_mismatched: 0,
            adversarial_connections: 4,
            adversarial_rejects: 2,
            registry_requests: 560,
            registry_ok: 500,
            registry_failed: 60,
            shard_cells: vec![
                cell(0, Some("panic")),
                cell(1, Some("hang")),
                cell(2, Some("jam")),
                cell(3, None),
            ],
            transitions: vec![SuperviseTransitionCell {
                shard: 0,
                from: "healthy".into(),
                to: "suspect".into(),
            }],
            rebuild_attempts: 3,
            rebuild_successes: 3,
            rebuild_probe_rejects: 0,
            failovers: 30,
            quarantine_elapsed_ns: 600_000_000,
            elapsed_ns: 2_000_000_000,
            reconciled: true,
            reconcile_error: None,
        }
    }

    #[test]
    fn json_round_trip() {
        let r = record();
        let json = serde_json::to_string(&r).unwrap();
        let back: SuperviseBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn a_clean_record_passes() {
        assert!(record().validate().is_ok());
    }

    #[test]
    fn unreconciled_campaigns_fail() {
        let mut r = record();
        r.reconciled = false;
        r.reconcile_error = Some("ok drifted: 3 != 4".into());
        assert!(r.validate().unwrap_err().contains("reconcile"));
    }

    #[test]
    fn a_missing_or_unhealed_poison_fails() {
        let mut r = record();
        r.shard_cells[1].poison = None;
        assert!(r.validate().unwrap_err().contains("hang"));
        let mut r = record();
        r.shard_cells[2].full_walk = false;
        assert!(r.validate().unwrap_err().contains("healing walk"));
        let mut r = record();
        r.shard_cells[0].quarantines = 0;
        assert!(r.validate().unwrap_err().contains("never quarantined"));
    }

    #[test]
    fn silent_poisons_fail() {
        let mut r = record();
        r.shard_cells[0].failed = 0;
        assert!(r.validate().unwrap_err().contains("typed failure"));
        let mut r = record();
        r.shard_cells[1].abandoned = 0;
        assert!(r.validate().unwrap_err().contains("abandonment"));
    }

    #[test]
    fn lingering_sickness_and_idle_failover_fail() {
        let mut r = record();
        r.shard_cells[3].health = "suspect".into();
        assert!(r.validate().unwrap_err().contains("ended the campaign"));
        let mut r = record();
        r.failovers = 0;
        for c in &mut r.shard_cells {
            c.failovers_out = 0;
        }
        assert!(r.validate().unwrap_err().contains("failed over"));
    }

    #[test]
    fn unresolved_rebuilds_fail() {
        let mut r = record();
        r.rebuild_attempts = 4;
        assert!(r.validate().unwrap_err().contains("unresolved rebuilds"));
    }
}
