//! Structural lint for JSONL telemetry traces, run by `trace_check`.
//!
//! Spans are recorded when they *end*, so two invariants must hold for
//! any well-formed trace:
//!
//! 1. **Per-thread end-time monotonicity** — within one thread, span
//!    end times (`start_ns + duration_ns`) never decrease in recording
//!    order. A regression means events were reordered or a clock ran
//!    backwards.
//! 2. **Parent encloses child** — a child span's `[start, end]`
//!    interval lies inside its parent's. A child escaping its parent
//!    means the span ids were linked wrongly or the timing is corrupt.
//!
//! The raw span buffer is capacity-bounded (`SPAN_CAP`), so a recorded
//! `parent` id may reference an evicted span; those links are counted
//! as skipped, not failed. Violations are typed and name the offending
//! trace line (1-based over the parsed event list).

use fast_bcnn::io::TraceEvent;
use std::collections::HashMap;
use std::fmt;

/// A structural violation found in a trace, naming the offending line.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceLintError {
    /// A span on one thread ended before the previous span recorded on
    /// the same thread — recording order must be end-time order.
    EndTimeRegression {
        /// 1-based line of the offending span event.
        line: usize,
        /// 1-based line of the previously recorded span on the thread.
        prev_line: usize,
        /// Recording thread.
        thread: u64,
        /// Offending span name.
        span: String,
        /// Its end time, ns since the registry epoch.
        end_ns: u64,
        /// The previous span's (larger) end time.
        prev_end_ns: u64,
    },
    /// A child span's interval is not contained in its parent's.
    ChildEscapesParent {
        /// 1-based line of the child span event.
        line: usize,
        /// 1-based line of the parent span event.
        parent_line: usize,
        /// Child span name.
        child: String,
        /// Parent span name.
        parent: String,
        /// Child interval, ns.
        child_span_ns: (u64, u64),
        /// Parent interval, ns.
        parent_span_ns: (u64, u64),
    },
}

impl fmt::Display for TraceLintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceLintError::EndTimeRegression {
                line,
                prev_line,
                thread,
                span,
                end_ns,
                prev_end_ns,
            } => write!(
                f,
                "line {line}: span `{span}` on thread {thread} ends at {end_ns}ns, \
                 before the span recorded at line {prev_line} ended ({prev_end_ns}ns)"
            ),
            TraceLintError::ChildEscapesParent {
                line,
                parent_line,
                child,
                parent,
                child_span_ns,
                parent_span_ns,
            } => write!(
                f,
                "line {line}: span `{child}` [{}, {}]ns escapes its parent `{parent}` \
                 [{}, {}]ns at line {parent_line}",
                child_span_ns.0, child_span_ns.1, parent_span_ns.0, parent_span_ns.1
            ),
        }
    }
}

/// What a clean lint pass covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceLintStats {
    /// Span events checked.
    pub spans: usize,
    /// Distinct recording threads seen.
    pub threads: usize,
    /// Parent-encloses-child links verified.
    pub parent_links: usize,
    /// Parent links skipped because the parent's raw event was evicted
    /// by the span-buffer cap.
    pub missing_parents: usize,
}

/// Verifies both structural invariants over a parsed trace.
///
/// # Errors
///
/// Returns the first violation, typed and naming the offending line.
pub fn lint_spans(events: &[TraceEvent]) -> Result<TraceLintStats, TraceLintError> {
    let spans: Vec<(usize, &TraceEvent)> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind == "span")
        .map(|(i, e)| (i + 1, e))
        .collect();

    // 1. Per-thread end-time monotonicity, in recording order.
    let mut last_end: HashMap<u64, (usize, u64)> = HashMap::new();
    for &(line, e) in &spans {
        let end_ns = e.start_ns.saturating_add(e.duration_ns);
        if let Some(&(prev_line, prev_end_ns)) = last_end.get(&e.thread) {
            if end_ns < prev_end_ns {
                return Err(TraceLintError::EndTimeRegression {
                    line,
                    prev_line,
                    thread: e.thread,
                    span: e.name.clone(),
                    end_ns,
                    prev_end_ns,
                });
            }
        }
        last_end.insert(e.thread, (line, end_ns));
    }

    // 2. Parent encloses child, for every link whose parent survived
    // the span-buffer cap.
    let by_id: HashMap<u64, (usize, &TraceEvent)> =
        spans.iter().map(|&(line, e)| (e.id, (line, e))).collect();
    let mut parent_links = 0;
    let mut missing_parents = 0;
    for &(line, e) in &spans {
        if e.parent == 0 {
            continue;
        }
        let Some(&(parent_line, p)) = by_id.get(&e.parent) else {
            missing_parents += 1;
            continue;
        };
        let child_span_ns = (e.start_ns, e.start_ns.saturating_add(e.duration_ns));
        let parent_span_ns = (p.start_ns, p.start_ns.saturating_add(p.duration_ns));
        if child_span_ns.0 < parent_span_ns.0 || child_span_ns.1 > parent_span_ns.1 {
            return Err(TraceLintError::ChildEscapesParent {
                line,
                parent_line,
                child: e.name.clone(),
                parent: p.name.clone(),
                child_span_ns,
                parent_span_ns,
            });
        }
        parent_links += 1;
    }

    Ok(TraceLintStats {
        spans: spans.len(),
        threads: last_end.len(),
        parent_links,
        missing_parents,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, thread: u64, start_ns: u64, duration_ns: u64) -> TraceEvent {
        TraceEvent {
            kind: "span".into(),
            name: format!("span{id}"),
            labels: Vec::new(),
            id,
            parent,
            thread,
            start_ns,
            duration_ns,
            value: 0.0,
            count: 0,
            buckets: Vec::new(),
        }
    }

    fn counter() -> TraceEvent {
        TraceEvent {
            kind: "counter".into(),
            name: "c".into(),
            labels: Vec::new(),
            id: 0,
            parent: 0,
            thread: 0,
            start_ns: 0,
            duration_ns: 0,
            value: 1.0,
            count: 1,
            buckets: Vec::new(),
        }
    }

    #[test]
    fn a_clean_nested_trace_passes() {
        // Child ends (and records) before its parent; both nested in time.
        let events = vec![
            counter(),
            span(2, 1, 7, 10, 30), // child [10, 40]
            span(1, 0, 7, 0, 50),  // parent [0, 50]
            span(3, 0, 9, 5, 10),  // another thread entirely
        ];
        let stats = lint_spans(&events).unwrap();
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.parent_links, 1);
        assert_eq!(stats.missing_parents, 0);
    }

    #[test]
    fn end_time_regression_names_the_line() {
        let events = vec![
            span(1, 0, 7, 0, 100), // ends at 100
            span(2, 0, 7, 10, 20), // ends at 30 — recorded later, impossible
        ];
        let err = lint_spans(&events).unwrap_err();
        match &err {
            TraceLintError::EndTimeRegression {
                line,
                prev_line,
                thread,
                ..
            } => {
                assert_eq!((*line, *prev_line, *thread), (2, 1, 7));
            }
            other => panic!("wrong error: {other}"),
        }
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn threads_are_independent_timelines() {
        // Interleaved threads each monotone; the merge is not — fine.
        let events = vec![
            span(1, 0, 7, 0, 100),
            span(2, 0, 9, 0, 10),
            span(3, 0, 9, 20, 10),
        ];
        assert!(lint_spans(&events).is_ok());
    }

    #[test]
    fn a_child_escaping_its_parent_names_both_lines() {
        let events = vec![
            span(2, 1, 7, 0, 45), // child [0, 45] starts before parent
            span(1, 0, 7, 5, 50), // parent [5, 55]
        ];
        let err = lint_spans(&events).unwrap_err();
        match &err {
            TraceLintError::ChildEscapesParent {
                line, parent_line, ..
            } => assert_eq!((*line, *parent_line), (1, 2)),
            other => panic!("wrong error: {other}"),
        }
        assert!(err.to_string().contains("escapes"));
    }

    #[test]
    fn evicted_parents_are_skipped_not_failed() {
        let events = vec![span(2, 99, 7, 10, 10)];
        let stats = lint_spans(&events).unwrap();
        assert_eq!(stats.missing_parents, 1);
        assert_eq!(stats.parent_links, 0);
    }
}
