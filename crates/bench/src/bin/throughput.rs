//! Batched-serving throughput harness: sequential `predict_robust_seeded`
//! loop vs [`fast_bcnn::BatchEngine::run_batch`] across batch sizes.
//!
//! Emits `BENCH_batch.json` (override the path with `--json`); `--t`
//! sets the per-request MC sample count, `--threads` the batch engine's
//! worker count and `--quick` the smoke configuration CI runs. Every
//! point re-checks the headline invariant — batched results bit-identical
//! to the sequential ones — and the record carries the host CPU count so
//! `bench_check` can apply the single-CPU correctness-only acceptance
//! (see `EXPERIMENTS.md`).

use fast_bcnn::{synth_input, BatchConfig, BatchEngine, BatchRequest, Engine, EngineConfig};
use fbcnn_bench::{BatchBenchReport, BatchPoint};
use fbcnn_nn::models::ModelKind;
use std::time::Instant;

/// Builds a queue of `n` requests cycling a few distinct inputs, the way
/// a serving queue repeats popular inputs; repeats exercise the
/// pre-inference cache.
fn request_queue(engine: &Engine, n: usize) -> Vec<BatchRequest> {
    let distinct = n.clamp(1, 4);
    (0..n)
        .map(|i| {
            BatchRequest::new(
                i as u64,
                synth_input(engine.network().input_shape(), 11 + (i % distinct) as u64),
            )
        })
        .collect()
}

fn measure(engine: &Engine, threads: usize, n: usize) -> BatchPoint {
    let requests = request_queue(engine, n);

    let sequential_start = Instant::now();
    let sequential: Vec<_> = requests
        .iter()
        .map(|r| engine.predict_robust_seeded(&r.input, r.resolved_seed(engine.config().seed)))
        .collect();
    let sequential_ns = (sequential_start.elapsed().as_nanos() as u64).max(1);

    let batch = BatchEngine::new(
        engine.clone(),
        BatchConfig {
            threads,
            ..BatchConfig::default()
        },
    );
    let report = batch.run_batch(&requests);
    let batch_ns = report.elapsed_ns.max(1);

    let matched = report.outcomes.len() == sequential.len()
        && report
            .outcomes
            .iter()
            .zip(&sequential)
            .all(|(b, s)| match (&b.result, s) {
                (Ok(a), Ok(b)) => a == b,
                (Err(_), Err(_)) => true,
                _ => false,
            });

    BatchPoint {
        batch_size: n,
        sequential_ns,
        batch_ns,
        sequential_rps: n as f64 / (sequential_ns as f64 / 1e9),
        batch_rps: n as f64 / (batch_ns as f64 / 1e9),
        speedup: sequential_ns as f64 / batch_ns as f64,
        cache_hits: report.cache_hits,
        cache_misses: report.cache_misses,
        matched,
    }
}

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    let quick = args.cfg.t <= 4;
    let engine = Engine::new(EngineConfig {
        samples: args.cfg.t,
        seed: args.cfg.seed,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    });
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let sizes: &[usize] = if quick { &[1, 4, 8] } else { &[1, 2, 4, 8, 16] };

    let points: Vec<BatchPoint> = sizes
        .iter()
        .map(|&n| measure(&engine, args.cfg.threads, n))
        .collect();

    let report = BatchBenchReport {
        t: args.cfg.t,
        threads: args.cfg.threads,
        seed: args.cfg.seed,
        quick,
        cpus,
        points,
    };

    println!(
        "== batched serving throughput (B-LeNet-5, T = {}, {} threads, {} CPUs) ==",
        report.t, report.threads, report.cpus
    );
    for p in &report.points {
        println!(
            "batch {:>3}: sequential {:>8.1} req/s | batch {:>8.1} req/s ({:.2}x) | \
             cache {}/{} | bit-identical: {}",
            p.batch_size,
            p.sequential_rps,
            p.batch_rps,
            p.speedup,
            p.cache_hits,
            p.cache_hits + p.cache_misses,
            if p.matched { "yes" } else { "NO" },
        );
    }
    if report.cpus < 4 {
        println!(
            "note: {} CPU(s) — speedup is informational, correctness-only acceptance applies",
            report.cpus
        );
    }

    let path = args
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_batch.json".into());
    match fast_bcnn::report::save_json(&path, &report) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Err(reason) = report.validate(1.5) {
        eprintln!("throughput: FAIL — {reason}");
        std::process::exit(1);
    }
}
