//! Regenerates Fig. 10: cycles, energy and accuracy across the FB-8…FB-64
//! design space for the three networks.

use fast_bcnn::experiments::design_space;
use fast_bcnn::report::{format_table, pct, speedup};

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    let results = design_space::run(&args.cfg);
    for model in &results {
        println!(
            "== {} (T = {}, skip rate {}) ==",
            model.model,
            args.cfg.t,
            pct(model.skip_rate)
        );
        let rows: Vec<Vec<String>> = model
            .points
            .iter()
            .map(|p| {
                vec![
                    p.design.clone(),
                    format!("{:.3}", p.normalized_cycles),
                    format!("{:.3}", p.normalized_energy),
                    speedup(p.speedup),
                    pct(p.cycle_reduction),
                    pct(p.energy_reduction),
                    pct(p.prediction_energy_share),
                    pct(p.central_energy_share),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                &[
                    "design",
                    "norm cycles",
                    "norm energy",
                    "speedup",
                    "cycle red.",
                    "energy red.",
                    "pred. E share",
                    "central E share"
                ],
                &rows
            )
        );
        println!(
            "accuracy loss (class disagreement): {}   mean prob shift: {:.4}\n",
            pct(model.accuracy_loss),
            model.mean_prob_shift
        );
    }
    fbcnn_bench::maybe_dump(&args, &results);
}
