//! Regenerates Table II: FPGA resource usage of the FB-64 design.

use fast_bcnn::experiments::tables;
use fast_bcnn::report::{format_table, pct};

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    let t = tables::table2();
    let r = &t.report;
    let rows = vec![
        vec![
            "LUT".to_string(),
            format!(
                "{} ({})",
                r.convolution_units.luts,
                pct(t.conv_utilization.0)
            ),
            format!(
                "{} ({})",
                r.prediction_units.luts,
                pct(t.prediction_utilization.0)
            ),
            format!(
                "{} ({})",
                r.central_predictor.luts,
                pct(t.central_utilization.0)
            ),
        ],
        vec![
            "FF".to_string(),
            format!(
                "{} ({})",
                r.convolution_units.ffs,
                pct(t.conv_utilization.1)
            ),
            format!(
                "{} ({})",
                r.prediction_units.ffs,
                pct(t.prediction_utilization.1)
            ),
            format!(
                "{} ({})",
                r.central_predictor.ffs,
                pct(t.central_utilization.1)
            ),
        ],
        vec![
            "BRAM".to_string(),
            format!(
                "{} ({})",
                r.convolution_units.brams,
                pct(t.conv_utilization.2)
            ),
            format!(
                "{} ({})",
                r.prediction_units.brams,
                pct(t.prediction_utilization.2)
            ),
            format!(
                "{} ({})",
                r.central_predictor.brams,
                pct(t.central_utilization.2)
            ),
        ],
    ];
    println!("== Table II: resource usage (FB-64, Virtex-7 VC709) ==");
    println!(
        "{}",
        format_table(
            &[
                "resource",
                "convolution units",
                "prediction units",
                "central predictor"
            ],
            &rows
        )
    );
    fbcnn_bench::maybe_dump(&args, &t);
}
