//! Regenerates Fig. 3 as text art: one channel of B-VGG16's second
//! convolutional layer, with and without dropout, plus the affected-
//! neuron map (the paper shows the same triptych as grayscale images).
//!
//! `#` = non-zero neuron, `.` = zero neuron; in the rightmost panel `!`
//! marks affected neurons (zero without dropout, non-zero with).

use fast_bcnn::{synth_input, BayesianNetwork, Tensor};
use fbcnn_nn::models::{ModelKind, ModelScale};

fn render(grid: &[Vec<char>]) -> String {
    grid.iter()
        .map(|row| row.iter().collect::<String>() + "\n")
        .collect()
}

fn zero_map(t: &Tensor, ch: usize) -> Vec<Vec<char>> {
    let s = t.shape();
    (0..s.height())
        .map(|r| {
            (0..s.width())
                .map(|c| if t[(ch, r, c)] == 0.0 { '.' } else { '#' })
                .collect()
        })
        .collect()
}

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    // Half-width keeps the map small enough to read in a terminal.
    let scale = if args.cfg.t <= 8 {
        ModelScale::TINY
    } else {
        ModelScale::BENCH
    };
    let net = ModelKind::Vgg16.build_scaled(args.cfg.seed, scale);
    let bnet = BayesianNetwork::new(net, args.cfg.drop_rate);
    let input = synth_input(bnet.network().input_shape(), args.cfg.seed ^ 0xF1);

    // The "2nd layer" of the paper's Fig. 3.
    let node = bnet.network().conv_nodes()[1];
    let channel = 0usize;

    let pre = bnet.forward_deterministic(&input);
    let masks = bnet.generate_masks(args.cfg.seed, 0);
    let (_, recorded) = bnet.forward_sample_recording(&input, &masks);

    let clean = &pre.activations[node.0];
    let noisy = recorded[node.0].as_ref().expect("conv records pre-mask");

    let a = zero_map(clean, channel);
    let b = zero_map(noisy, channel);
    let mut affected = a.clone();
    let mut n_affected = 0;
    let mut n_zero = 0;
    for (r, row) in a.iter().enumerate() {
        for (c, &ch_a) in row.iter().enumerate() {
            if ch_a == '.' {
                n_zero += 1;
                if b[r][c] == '#' {
                    affected[r][c] = '!';
                    n_affected += 1;
                } else {
                    affected[r][c] = '.';
                }
            } else {
                affected[r][c] = ' ';
            }
        }
    }

    println!(
        "B-VGG16 {} channel {channel} ('#' non-zero, '.' zero, '!' affected)\n",
        bnet.network().node(node).label()
    );
    println!("without dropout:\n{}", render(&a));
    println!("with dropout (before its own mask):\n{}", render(&b));
    println!("affected neurons:\n{}", render(&affected));
    println!(
        "affected: {n_affected} of {n_zero} zero neurons ({:.1}%); the paper \
         reports a very small percentage on trained weights — see the Fig. 4 \
         deviation note in EXPERIMENTS.md",
        100.0 * n_affected as f64 / n_zero.max(1) as f64
    );
}
