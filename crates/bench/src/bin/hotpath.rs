//! Before/after wall-clock measurements for the word-parallel counting
//! lanes and the blocked, multithreaded convolution hot path.
//!
//! Emits `BENCH_hotpath.json` (override the path with `--json`); `--t`
//! sets the MC sample count and `--threads` the worker count used by the
//! parallel variants. The committed reference numbers were produced with
//! `--t 30 --threads 4`.

use fbcnn_bayes::{BayesianNetwork, McDropout};
use fbcnn_nn::models;
use fbcnn_nn::{Conv2d, Workspace};
use fbcnn_predictor::{
    count_dropped_nw_inputs, count_dropped_nw_inputs_scalar, PolarityIndicators,
};
use fbcnn_tensor::{stats, BitMask, Shape, Tensor};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One kernel's before/after timing, nanoseconds per call (minimum over
/// the measurement repetitions). `parallel_ns` is `None` for kernels
/// without a threaded variant — reported honestly as absent instead of
/// echoing the single-threaded number.
#[derive(Debug, Serialize)]
struct Timing {
    reference_ns: u64,
    fast_ns: u64,
    parallel_ns: Option<u64>,
    speedup_fast: f64,
    speedup_parallel: Option<f64>,
}

#[derive(Debug, Serialize)]
struct HotpathReport {
    t: usize,
    threads: usize,
    seed: u64,
    quick: bool,
    /// Dropped-nw-input counting, conv2-of-LeNet-5 geometry. `reference`
    /// is the scalar per-bit kernel, `fast` the packed word-parallel one.
    /// Counting has no threaded variant, so `parallel` is absent.
    counting: Timing,
    /// One Conv2d forward, conv2-of-LeNet-5 geometry. `reference` is the
    /// naive loop, `fast` the im2col + blocked kernel, `parallel` the
    /// channel-parallel variant.
    conv: Timing,
    /// Full MC-dropout inference on B-LeNet-5. `reference` is T naive
    /// dense passes, `fast` the workspace runner, `parallel` the
    /// multithreaded runner.
    mc_end_to_end: Timing,
}

/// Minimum wall-clock of `reps` calls, in nanoseconds (after one warmup).
fn time_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> u64 {
    black_box(f());
    let mut best = u64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

fn timing(reference_ns: u64, fast_ns: u64, parallel_ns: Option<u64>) -> Timing {
    Timing {
        reference_ns,
        fast_ns,
        parallel_ns,
        speedup_fast: reference_ns as f64 / fast_ns.max(1) as f64,
        speedup_parallel: parallel_ns.map(|p| reference_ns as f64 / p.max(1) as f64),
    }
}

fn seeded_conv(in_c: usize, out_c: usize, k: usize) -> Conv2d {
    let mut conv = Conv2d::new(in_c, out_c, k, 1, 0, true);
    let mut state = 3u64;
    for w in conv.weights_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *w = ((state >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0;
    }
    conv
}

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    let quick = args.cfg.t <= 8;
    let (reps_kernel, reps_mc) = if quick { (20, 1) } else { (200, 3) };
    let threads = args.cfg.threads;

    // -- counting: packed vs scalar, conv2-of-LeNet-5 geometry ----------
    let conv = seeded_conv(6, 16, 5);
    let indicators = PolarityIndicators::profile_conv(&conv);
    let mask = BitMask::from_fn(Shape::new(6, 14, 14), |i| i % 3 == 0);
    let scalar_ns = time_ns(reps_kernel, || {
        count_dropped_nw_inputs_scalar(&conv, &indicators, &mask)
    });
    let packed_ns = time_ns(reps_kernel, || {
        count_dropped_nw_inputs(&conv, &indicators, &mask)
    });
    let counting = timing(scalar_ns, packed_ns, None);

    // -- conv forward: naive vs im2col vs channel-parallel --------------
    let input = Tensor::from_fn(Shape::new(6, 14, 14), |ch, r, c| {
        ((ch * 31 + r * 7 + c) % 13) as f32 / 6.0 - 1.0
    });
    let naive_ns = time_ns(reps_kernel, || conv.forward(&input));
    let mut ws = Workspace::new();
    let im2col_ns = time_ns(reps_kernel, || conv.forward_ws(&input, &mut ws));
    let mut ws_par = Workspace::new();
    let par_ns = time_ns(reps_kernel, || {
        conv.forward_parallel(&input, threads, &mut ws_par)
    });
    let conv_timing = timing(naive_ns, im2col_ns, Some(par_ns));

    // -- MC-dropout end to end on B-LeNet-5 ------------------------------
    let t = args.cfg.t;
    let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
    let mc_input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
        ((r * 5 + c) % 7) as f32 / 7.0
    });
    let runner = McDropout::new(t, args.cfg.seed);
    let mc_naive_ns = time_ns(reps_mc, || {
        (0..t)
            .map(|s| {
                let masks = bnet.generate_masks(args.cfg.seed, s);
                stats::softmax(bnet.forward_sample(&mc_input, &masks).logits())
            })
            .collect::<Vec<_>>()
    });
    let mc_ws_ns = time_ns(reps_mc, || runner.run(&bnet, &mc_input));
    let mc_par_ns = time_ns(reps_mc, || runner.run_parallel(&bnet, &mc_input, threads));
    let mc = timing(mc_naive_ns, mc_ws_ns, Some(mc_par_ns));

    let report = HotpathReport {
        t,
        threads,
        seed: args.cfg.seed,
        quick,
        counting,
        conv: conv_timing,
        mc_end_to_end: mc,
    };

    println!("== hot-path before/after (ns per call, min of reps) ==");
    for (name, tm) in [
        ("counting", &report.counting),
        ("conv", &report.conv),
        ("mc_end_to_end", &report.mc_end_to_end),
    ] {
        let (par, par_speedup) = match (tm.parallel_ns, tm.speedup_parallel) {
            (Some(p), Some(s)) => (p.to_string(), format!("{s:.2}x")),
            _ => ("n/a".to_string(), "no threaded variant".to_string()),
        };
        println!(
            "{name:<14} reference {:>12}  fast {:>12} ({:.2}x)  parallel({threads}t) {par:>12} ({par_speedup})",
            tm.reference_ns, tm.fast_ns, tm.speedup_fast
        );
    }

    let path = args.json.as_deref().unwrap_or("BENCH_hotpath.json");
    match fast_bcnn::report::save_json(path, &report) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}
