//! Design-choice ablations: counting-lane provisioning (Eq. 9's δ) and
//! the calibration tolerance.

use fast_bcnn::experiments::ablation;
use fast_bcnn::report::{format_table, pct};
use fbcnn_nn::models::ModelKind;

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();

    for kind in [ModelKind::LeNet5, ModelKind::Vgg16] {
        let sweep = ablation::lane_sweep(kind, 64, &[1, 2, 4, 8], &args.cfg);
        println!(
            "== counting-lane sweep: {} on FB-{} ==",
            sweep.model, sweep.tm
        );
        let rows: Vec<Vec<String>> = sweep
            .points
            .iter()
            .map(|p| {
                vec![
                    p.delta.to_string(),
                    p.lanes.to_string(),
                    pct(p.cycle_reduction),
                    p.stall_cycles.to_string(),
                    pct(p.prediction_energy_share),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                &[
                    "delta",
                    "lanes/PE",
                    "cycle red.",
                    "stall cycles",
                    "pred E share"
                ],
                &rows
            )
        );
    }

    let q = ablation::quantization(ModelKind::LeNet5, &args.cfg);
    println!("== int8 quantization ablation: {} ==", q.model);
    println!(
        "polarity stability {} | skip rate fp32 {} -> int8 {} | FB-64 cycle red. fp32 {} -> int8 {}\n",
        pct(q.polarity_stability),
        pct(q.skip_rate_fp32),
        pct(q.skip_rate_int8),
        pct(q.cycle_reduction_fp32),
        pct(q.cycle_reduction_int8)
    );

    let tols = [0.0f32, 0.1, 0.25, 0.5];
    let pts = ablation::tolerance_sweep(ModelKind::Vgg16, &tols, &args.cfg);
    println!("== calibration-tolerance sweep: B-VGG16 ==");
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.tolerance),
                pct(p.skip_rate),
                pct(p.cycle_reduction),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["tolerance", "skip rate", "cycle red."], &rows)
    );
    fbcnn_bench::maybe_dump(&args, &pts);
}
