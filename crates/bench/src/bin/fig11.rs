//! Regenerates Fig. 11: FB-64 vs Cnvlutin vs ideal vs FB-64-d / FB-64-u.

use fast_bcnn::experiments::comparison;
use fast_bcnn::report::{format_table, pct, speedup};

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    let results = comparison::run(&args.cfg);
    for model in &results {
        println!("== {} (T = {}) ==", model.model, args.cfg.t);
        let rows: Vec<Vec<String>> = model
            .points
            .iter()
            .map(|p| {
                vec![
                    p.design.clone(),
                    format!("{:.3}", p.normalized_cycles),
                    format!("{:.3}", p.normalized_energy),
                    pct(p.cycle_reduction),
                    pct(p.energy_reduction),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                &[
                    "design",
                    "norm cycles",
                    "norm energy",
                    "cycle red.",
                    "energy red."
                ],
                &rows
            )
        );
        println!(
            "FB-64 vs Cnvlutin: {} speedup, {} energy reduction; gap to ideal: {}\n",
            speedup(model.fb_vs_cnvlutin_speedup),
            pct(model.fb_vs_cnvlutin_energy_reduction),
            pct(model.gap_to_ideal)
        );
    }
    fbcnn_bench::maybe_dump(&args, &results);
}
