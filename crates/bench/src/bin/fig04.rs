//! Regenerates Fig. 3 / Fig. 4: zero / unaffected / affected neuron
//! characterization per BCNN layer.

use fast_bcnn::experiments::characterization;
use fast_bcnn::report::{format_table, pct};

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    let results = characterization::run(&args.cfg);
    for model in &results {
        println!("== {} (T = {}) ==", model.model, args.cfg.t);
        let rows: Vec<Vec<String>> = model
            .layers
            .iter()
            .map(|l| {
                vec![
                    l.layer.clone(),
                    pct(l.zero_ratio),
                    pct(l.unaffected_ratio),
                    pct(l.affected_ratio),
                    pct(l.unaffected_share_of_zeros),
                    pct(l.unaffected_share_tolerant),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                &[
                    "layer",
                    "zero",
                    "unaffected",
                    "affected",
                    "unaffected/zero",
                    "tolerant share"
                ],
                &rows
            )
        );
        println!(
            "mean unaffected ratio: {}   mean share of zeros staying zero: {}\n",
            pct(model.mean_unaffected_ratio),
            pct(model.mean_unaffected_share_of_zeros)
        );
    }
    fbcnn_bench::maybe_dump(&args, &results);
}
