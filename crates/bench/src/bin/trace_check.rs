//! CI validator for telemetry artifacts: proves that a `--trace-out`
//! JSONL file round-trips through the versioned envelope reader, passes
//! the structural span lint ([`fbcnn_bench::trace_lint`] — per-thread
//! end-time monotonicity, parent encloses child), and that a
//! `--metrics-out` dump parses back as a well-formed Prometheus-style
//! exposition. Exits non-zero on empty, missing or malformed files.
//!
//! Usage: `trace_check <trace.jsonl> <metrics.prom>`

use fast_bcnn::telemetry::parse_exposition;
use fbcnn_bench::trace_lint::lint_spans;

fn fail(msg: String) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let [_, trace_path, metrics_path] = args.as_slice() else {
        fail(format!(
            "usage: trace_check <trace.jsonl> <metrics.prom> (got {} args)",
            args.len() - 1
        ));
    };

    let events = match fast_bcnn::io::read_trace(trace_path) {
        Ok(events) => events,
        Err(e) => fail(format!("{trace_path}: {e}")),
    };
    if events.is_empty() {
        fail(format!("{trace_path}: trace holds no events"));
    }
    let spans = events.iter().filter(|e| e.kind == "span").count();
    let counters = events.iter().filter(|e| e.kind == "counter").count();
    let histograms = events.iter().filter(|e| e.kind == "histogram").count();
    let lint = match lint_spans(&events) {
        Ok(stats) => stats,
        Err(e) => fail(format!("{trace_path}: {e}")),
    };

    let text = match std::fs::read_to_string(metrics_path) {
        Ok(text) => text,
        Err(e) => fail(format!("{metrics_path}: {e}")),
    };
    let samples = match parse_exposition(&text) {
        Ok(samples) => samples,
        Err(e) => fail(format!("{metrics_path}: {e}")),
    };
    if samples.is_empty() {
        fail(format!("{metrics_path}: exposition holds no samples"));
    }

    println!(
        "trace_check: ok — {} trace events ({spans} spans, {counters} counters, \
         {histograms} histograms), {} exposition samples; span lint: {} thread(s), \
         {} parent link(s) enclosed, {} evicted parent(s) skipped",
        events.len(),
        samples.len(),
        lint.threads,
        lint.parent_links,
        lint.missing_parents
    );
}
