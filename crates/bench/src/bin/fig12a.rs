//! Regenerates Fig. 12(a): accuracy loss and cycle reduction as a
//! function of the confidence level `p_cf` (B-VGG16, FB-64).

use fast_bcnn::experiments::sensitivity;
use fast_bcnn::report::{format_table, pct};
use fbcnn_nn::models::ModelKind;

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    // The paper sweeps 60-90 %; our synthetic-weight substitution moves
    // the knee toward higher confidence (see DESIGN.md §3b), so the sweep
    // extends to 99 %.
    let confidences = [0.60, 0.68, 0.80, 0.90, 0.95, 0.97, 0.99];
    let points = sensitivity::confidence_sweep(ModelKind::Vgg16, &confidences, &args.cfg);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                pct(p.confidence),
                pct(p.accuracy_loss),
                format!("{:.4}", p.mean_prob_shift),
                pct(p.cycle_reduction),
                pct(p.skip_rate),
            ]
        })
        .collect();
    println!(
        "== B-VGG16 / FB-64 confidence sweep (T = {}) ==",
        args.cfg.t
    );
    println!(
        "{}",
        format_table(
            &[
                "p_cf",
                "accuracy loss",
                "prob shift",
                "cycle red.",
                "skip rate"
            ],
            &rows
        )
    );
    fbcnn_bench::maybe_dump(&args, &points);
}
