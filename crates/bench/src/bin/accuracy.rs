//! Trained-LeNet accuracy experiment: exact vs skipping BCNN accuracy on
//! SynthDigits at several confidence levels (the substitution for the
//! paper's MNIST accuracy numbers).

use fast_bcnn::experiments::accuracy::{self, TrainedAccuracyConfig};
use fast_bcnn::report::{format_table, pct};

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    let cfg = if args.cfg.t <= 8 {
        TrainedAccuracyConfig {
            train_size: 150,
            test_size: 40,
            epochs: 3,
            samples: 6,
            threads: args.cfg.threads,
            ..Default::default()
        }
    } else {
        TrainedAccuracyConfig {
            threads: args.cfg.threads,
            ..Default::default()
        }
    };
    let results = accuracy::run(&[0.60, 0.68, 0.80, 0.90], &cfg);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                pct(r.confidence),
                pct(r.deterministic_accuracy),
                pct(r.exact_bcnn_accuracy),
                pct(r.skipping_bcnn_accuracy),
                pct(r.accuracy_loss),
            ]
        })
        .collect();
    println!(
        "== Trained B-LeNet-5 on SynthDigits ({} test images, T = {}) ==",
        cfg.test_size, cfg.samples
    );
    println!(
        "{}",
        format_table(
            &[
                "p_cf",
                "deterministic",
                "exact BCNN",
                "skipping BCNN",
                "accuracy loss"
            ],
            &rows
        )
    );
    fbcnn_bench::maybe_dump(&args, &results);
}
