//! Regenerates Fig. 12(b): FB-64 speedup over the baseline as a function
//! of the drop rate, per network.

use fast_bcnn::experiments::sensitivity;
use fast_bcnn::report::{format_table, speedup};

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    let rates = [0.2, 0.3, 0.5];
    let points = sensitivity::drop_rate_sweep(&rates, &args.cfg);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.model.clone(),
                format!("{:.1}", p.drop_rate),
                speedup(p.speedup),
            ]
        })
        .collect();
    println!("== FB-64 speedup vs drop rate (T = {}) ==", args.cfg.t);
    println!(
        "{}",
        format_table(&["model", "drop rate", "speedup"], &rows)
    );
    fbcnn_bench::maybe_dump(&args, &points);
}
