//! Regenerates the §VI-B1 per-layer cycle breakdown discussion
//! (first-layer boost, depth profile).

use fast_bcnn::experiments::breakdown;
use fast_bcnn::report::{format_table, pct, speedup};

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    let results = breakdown::run(&args.cfg);
    for model in &results {
        println!(
            "== {} on {} (T = {}) ==",
            model.model, model.design, args.cfg.t
        );
        let rows: Vec<Vec<String>> = model
            .layers
            .iter()
            .map(|l| {
                vec![
                    l.layer.clone(),
                    l.baseline_cycles.to_string(),
                    l.fast_cycles.to_string(),
                    speedup(l.speedup),
                    pct(l.baseline_share),
                    l.stall_cycles.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                &[
                    "layer",
                    "baseline cycles",
                    "FB cycles",
                    "speedup",
                    "baseline share",
                    "stall"
                ],
                &rows
            )
        );
    }
    fbcnn_bench::maybe_dump(&args, &results);
}
