//! CI validator for bench records. Dispatches on content:
//!
//! * a record carrying `"schema": "chaos-v1"` parses back through
//!   [`fbcnn_bench::ChaosBenchReport`] and must pass its acceptance rules
//!   — accounting reconciled exactly, every loss typed, nothing
//!   abandoned, and (for full soaks) the ≥ 200-request / ≥ 5-class
//!   coverage floors;
//! * a record carrying `"schema": "swap-v1"` parses back through
//!   [`fbcnn_bench::SwapBenchReport`] — zero lost requests under
//!   hot-swap, every healthy rollout promoted, every crashing rollout
//!   rolled back, and per-version request counters reconciled exactly;
//! * anything else parses as the `throughput` harness's
//!   [`fbcnn_bench::BatchBenchReport`] — every point bit-identical to
//!   sequential, positive timings, and (only on a multi-CPU host running
//!   multiple worker threads) the batch-size ≥ 8 speedup target.
//!
//! Exits non-zero on missing, malformed or failing records.
//!
//! Usage: `bench_check <BENCH_batch.json | BENCH_chaos.json | BENCH_swap.json> [min_speedup]`

use fbcnn_bench::{BatchBenchReport, ChaosBenchReport, SwapBenchReport, CHAOS_SCHEMA, SWAP_SCHEMA};

fn fail(msg: String) -> ! {
    eprintln!("bench_check: {msg}");
    std::process::exit(1);
}

fn check_chaos(path: &str, text: &str) {
    let report: ChaosBenchReport = match serde_json::from_str(text) {
        Ok(report) => report,
        Err(e) => fail(format!("{path}: malformed chaos record: {e}")),
    };
    if let Err(reason) = report.validate() {
        fail(format!("{path}: {reason}"));
    }
    println!(
        "bench_check: ok — chaos soak seed {}: {} requests over {} classes, \
         {} ok / {} failed, {} transitions, reconciled exactly{}",
        report.seed,
        report.requests_total,
        report.classes.len(),
        report.ok_total,
        report.failed_total,
        report.transitions.len(),
        if report.quick { " [quick smoke]" } else { "" },
    );
}

fn check_swap(path: &str, text: &str) {
    let report: SwapBenchReport = match serde_json::from_str(text) {
        Ok(report) => report,
        Err(e) => fail(format!("{path}: malformed swap record: {e}")),
    };
    if let Err(reason) = report.validate() {
        fail(format!("{path}: {reason}"));
    }
    println!(
        "bench_check: ok — swap campaign seed {}: {} requests over {} rounds, \
         {} promotions / {} rollbacks, {} responses bit-checked, reconciled exactly{}",
        report.seed,
        report.requests_total,
        report.rounds.len(),
        report.promotions,
        report.rollbacks,
        report.compared_outputs,
        if report.quick { " [quick smoke]" } else { "" },
    );
}

fn check_batch(path: &str, text: &str, min_speedup: f64) {
    let report: BatchBenchReport = match serde_json::from_str(text) {
        Ok(report) => report,
        Err(e) => fail(format!("{path}: malformed record: {e}")),
    };
    if let Err(reason) = report.validate(min_speedup) {
        fail(format!("{path}: {reason}"));
    }

    let widest = report
        .points
        .iter()
        .max_by_key(|p| p.batch_size)
        .map(|p| format!("batch {} at {:.2}x", p.batch_size, p.speedup))
        .unwrap_or_else(|| "no points".into());
    println!(
        "bench_check: ok — {} points (T = {}, {} threads, {} CPUs), {widest}{}",
        report.points.len(),
        report.t,
        report.threads,
        report.cpus,
        if report.cpus < 4 {
            " [single-CPU correctness-only acceptance]"
        } else {
            ""
        },
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (path, min_speedup) = match args.as_slice() {
        [_, path] => (path.clone(), 1.5),
        [_, path, target] => match target.parse::<f64>() {
            Ok(v) if v > 0.0 => (path.clone(), v),
            _ => fail(format!(
                "min_speedup must be a positive number, got `{target}`"
            )),
        },
        _ => fail(format!(
            "usage: bench_check <BENCH_batch.json | BENCH_chaos.json> [min_speedup] \
             (got {} args)",
            args.len() - 1
        )),
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => fail(format!("{path}: {e}")),
    };
    // Chaos and swap records carry schema tags; their presence in the
    // text decides which parser's errors to surface.
    if text.contains(&format!("\"{CHAOS_SCHEMA}\"")) {
        check_chaos(&path, &text);
    } else if text.contains(&format!("\"{SWAP_SCHEMA}\"")) {
        check_swap(&path, &text);
    } else {
        check_batch(&path, &text, min_speedup);
    }
}
