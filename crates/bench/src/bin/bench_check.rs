//! CI validator for bench records. Dispatches on content:
//!
//! * a record carrying `"schema": "chaos-v1"` parses back through
//!   [`fbcnn_bench::ChaosBenchReport`] and must pass its acceptance rules
//!   — accounting reconciled exactly, every loss typed, nothing
//!   abandoned, and (for full soaks) the ≥ 200-request / ≥ 5-class
//!   coverage floors;
//! * a record carrying `"schema": "swap-v1"` parses back through
//!   [`fbcnn_bench::SwapBenchReport`] — zero lost requests under
//!   hot-swap, every healthy rollout promoted, every crashing rollout
//!   rolled back, and per-version request counters reconciled exactly;
//! * a record carrying `"schema": "slo-v1"` parses back through
//!   [`fbcnn_bench::SloBenchReport`] — the health walk paged on the
//!   fault burst and recovered, the windowed accounting reconciled
//!   exactly, every quantile estimate honored the bucket error bound,
//!   and the postmortem replayed exactly the failed requests;
//! * a record carrying `"schema": "supervise-v1"` parses back through
//!   [`fbcnn_bench::SuperviseBenchReport`] — all three shard poisons
//!   injected, quarantined, rebuilt and re-admitted through the probe
//!   gate, every shard healthy at campaign end, the failover path
//!   actually exercised, bit identity held, and the three-way ledger
//!   reconciled exactly;
//! * a record carrying `"schema": "serve-v1"` parses back through
//!   [`fbcnn_bench::ServeBenchReport`] — the loadgen ↔ server ↔ registry
//!   ledger reconciled exactly, zero aborts and transport errors, the
//!   shed/expiry/malformed tiers exercised, bit identity held, and (on a
//!   ≥ 4-CPU host running a full soak) the scaled goodput floor;
//! * anything else parses as the `throughput` harness's
//!   [`fbcnn_bench::BatchBenchReport`] — every point bit-identical to
//!   sequential, positive timings, and (only on a multi-CPU host running
//!   multiple worker threads) the batch-size ≥ 8 speedup target.
//!
//! With `--baseline <file>` the checker instead diffs the record's
//! *headline ratios* (see [`fbcnn_bench::baseline`]) against a committed
//! baseline and fails on a > 15 % regression — this mode accepts any
//! record shape carrying ratios (`BENCH_hotpath.json`,
//! `BENCH_batch.json`), so no schema validation runs.
//!
//! Exits non-zero on missing, malformed or failing records.
//!
//! Usage: `bench_check <BENCH_*.json> [min_speedup] [--baseline <file>]`

use fbcnn_bench::{
    baseline, BatchBenchReport, ChaosBenchReport, ServeBenchReport, SloBenchReport,
    SuperviseBenchReport, SwapBenchReport, CHAOS_SCHEMA, SERVE_SCHEMA, SLO_SCHEMA,
    SUPERVISE_SCHEMA, SWAP_SCHEMA,
};

fn fail(msg: String) -> ! {
    eprintln!("bench_check: {msg}");
    std::process::exit(1);
}

fn check_chaos(path: &str, text: &str) {
    let report: ChaosBenchReport = match serde_json::from_str(text) {
        Ok(report) => report,
        Err(e) => fail(format!("{path}: malformed chaos record: {e}")),
    };
    if let Err(reason) = report.validate() {
        fail(format!("{path}: {reason}"));
    }
    println!(
        "bench_check: ok — chaos soak seed {}: {} requests over {} classes, \
         {} ok / {} failed, {} transitions, reconciled exactly{}",
        report.seed,
        report.requests_total,
        report.classes.len(),
        report.ok_total,
        report.failed_total,
        report.transitions.len(),
        if report.quick { " [quick smoke]" } else { "" },
    );
}

fn check_swap(path: &str, text: &str) {
    let report: SwapBenchReport = match serde_json::from_str(text) {
        Ok(report) => report,
        Err(e) => fail(format!("{path}: malformed swap record: {e}")),
    };
    if let Err(reason) = report.validate() {
        fail(format!("{path}: {reason}"));
    }
    println!(
        "bench_check: ok — swap campaign seed {}: {} requests over {} rounds, \
         {} promotions / {} rollbacks, {} responses bit-checked, reconciled exactly{}",
        report.seed,
        report.requests_total,
        report.rounds.len(),
        report.promotions,
        report.rollbacks,
        report.compared_outputs,
        if report.quick { " [quick smoke]" } else { "" },
    );
}

fn check_slo(path: &str, text: &str) {
    let report: SloBenchReport = match serde_json::from_str(text) {
        Ok(report) => report,
        Err(e) => fail(format!("{path}: malformed slo record: {e}")),
    };
    if let Err(reason) = report.validate() {
        fail(format!("{path}: {reason}"));
    }
    println!(
        "bench_check: ok — slo soak seed {}: {} windows, {} requests ({} failed), \
         {} quantile checks in bound, postmortem `{}` replays {} failed ids, \
         reconciled exactly{}",
        report.seed,
        report.windows,
        report.registry_requests,
        report.registry_failed,
        report.quantiles.len(),
        report.postmortem_trigger,
        report.postmortem_failed_ids.len(),
        if report.quick { " [quick smoke]" } else { "" },
    );
}

fn check_serve(path: &str, text: &str) {
    let report: ServeBenchReport = match serde_json::from_str(text) {
        Ok(report) => report,
        Err(e) => fail(format!("{path}: malformed serve record: {e}")),
    };
    if let Err(reason) = report.validate() {
        fail(format!("{path}: {reason}"));
    }
    println!(
        "bench_check: ok — serve soak seed {}: {} frames over {} connections \
         ({} ok / {} failed / {} shed / {} wire errors), {:.0} req/s goodput, \
         {} bit checks held, ledger reconciled exactly{}{}",
        report.seed,
        report.offered,
        report.server_connections,
        report.ok,
        report.failed,
        report.shed,
        report.wire_errors,
        report.goodput_rps,
        report.bit_checked,
        if report.cpus < 4 {
            " [single-CPU correctness-only acceptance]"
        } else {
            ""
        },
        if report.quick { " [quick smoke]" } else { "" },
    );
}

fn check_supervise(path: &str, text: &str) {
    let report: SuperviseBenchReport = match serde_json::from_str(text) {
        Ok(report) => report,
        Err(e) => fail(format!("{path}: malformed supervise record: {e}")),
    };
    if let Err(reason) = report.validate() {
        fail(format!("{path}: {reason}"));
    }
    println!(
        "bench_check: ok — supervision soak seed {}: {} frames over {} bursts, \
         3 poisons healed ({} rebuilds, {} failovers, {} transitions), \
         {} bit checks held, ledger reconciled exactly{}",
        report.seed,
        report.offered,
        report.bursts,
        report.rebuild_attempts,
        report.failovers,
        report.transitions.len(),
        report.bit_checked,
        if report.quick { " [quick smoke]" } else { "" },
    );
}

fn check_baseline(path: &str, text: &str, baseline_path: &str) {
    let base_text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => fail(format!("{baseline_path}: {e}")),
    };
    let current: serde::Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => fail(format!("{path}: malformed JSON: {e}")),
    };
    let base: serde::Value = match serde_json::from_str(&base_text) {
        Ok(v) => v,
        Err(e) => fail(format!("{baseline_path}: malformed JSON: {e}")),
    };
    let compared = match baseline::diff_ratios(&current, &base, baseline::DEFAULT_TOLERANCE) {
        Ok(compared) => compared,
        Err(reason) => fail(format!("{path} vs {baseline_path}: {reason}")),
    };
    for d in &compared {
        println!(
            "  {:<40} baseline {:>7.3}x  current {:>7.3}x  ({:+.1}%)",
            d.key,
            d.baseline,
            d.current,
            d.relative_change() * 100.0
        );
    }
    println!(
        "bench_check: ok — {} headline ratio(s) within {:.0}% of {baseline_path}",
        compared.len(),
        baseline::DEFAULT_TOLERANCE * 100.0
    );
}

fn check_batch(path: &str, text: &str, min_speedup: f64) {
    let report: BatchBenchReport = match serde_json::from_str(text) {
        Ok(report) => report,
        Err(e) => fail(format!("{path}: malformed record: {e}")),
    };
    if let Err(reason) = report.validate(min_speedup) {
        fail(format!("{path}: {reason}"));
    }

    let widest = report
        .points
        .iter()
        .max_by_key(|p| p.batch_size)
        .map(|p| format!("batch {} at {:.2}x", p.batch_size, p.speedup))
        .unwrap_or_else(|| "no points".into());
    println!(
        "bench_check: ok — {} points (T = {}, {} threads, {} CPUs), {widest}{}",
        report.points.len(),
        report.t,
        report.threads,
        report.cpus,
        if report.cpus < 4 {
            " [single-CPU correctness-only acceptance]"
        } else {
            ""
        },
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut path = None;
    let mut min_speedup = 1.5;
    let mut baseline_path = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                let Some(value) = args.get(i + 1) else {
                    fail("--baseline needs a file".to_string());
                };
                baseline_path = Some(value.clone());
                i += 1;
            }
            other if path.is_none() => path = Some(other.to_string()),
            target => match target.parse::<f64>() {
                Ok(v) if v > 0.0 => min_speedup = v,
                _ => fail(format!(
                    "min_speedup must be a positive number, got `{target}`"
                )),
            },
        }
        i += 1;
    }
    let Some(path) = path else {
        fail(format!(
            "usage: bench_check <BENCH_*.json> [min_speedup] [--baseline <file>] \
             (got {} args)",
            args.len() - 1
        ));
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => fail(format!("{path}: {e}")),
    };
    if let Some(baseline_path) = &baseline_path {
        check_baseline(&path, &text, baseline_path);
        return;
    }
    // Chaos, swap and slo records carry schema tags; their presence in
    // the text decides which parser's errors to surface.
    if text.contains(&format!("\"{CHAOS_SCHEMA}\"")) {
        check_chaos(&path, &text);
    } else if text.contains(&format!("\"{SWAP_SCHEMA}\"")) {
        check_swap(&path, &text);
    } else if text.contains(&format!("\"{SLO_SCHEMA}\"")) {
        check_slo(&path, &text);
    } else if text.contains(&format!("\"{SUPERVISE_SCHEMA}\"")) {
        check_supervise(&path, &text);
    } else if text.contains(&format!("\"{SERVE_SCHEMA}\"")) {
        check_serve(&path, &text);
    } else {
        check_batch(&path, &text, min_speedup);
    }
}
