//! CI validator for `BENCH_batch.json`: proves the record written by the
//! `throughput` harness parses back through the shared
//! [`fbcnn_bench::BatchBenchReport`] schema and passes its acceptance
//! rules — every point bit-identical to sequential, positive timings, and
//! (only on a multi-CPU host running multiple worker threads) the
//! batch-size ≥ 8 speedup target. Exits non-zero on missing, malformed or
//! failing records.
//!
//! Usage: `bench_check <BENCH_batch.json> [min_speedup]`

use fbcnn_bench::BatchBenchReport;

fn fail(msg: String) -> ! {
    eprintln!("bench_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (path, min_speedup) = match args.as_slice() {
        [_, path] => (path.clone(), 1.5),
        [_, path, target] => match target.parse::<f64>() {
            Ok(v) if v > 0.0 => (path.clone(), v),
            _ => fail(format!(
                "min_speedup must be a positive number, got `{target}`"
            )),
        },
        _ => fail(format!(
            "usage: bench_check <BENCH_batch.json> [min_speedup] (got {} args)",
            args.len() - 1
        )),
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => fail(format!("{path}: {e}")),
    };
    let report: BatchBenchReport = match serde_json::from_str(&text) {
        Ok(report) => report,
        Err(e) => fail(format!("{path}: malformed record: {e}")),
    };
    if let Err(reason) = report.validate(min_speedup) {
        fail(format!("{path}: {reason}"));
    }

    let widest = report
        .points
        .iter()
        .max_by_key(|p| p.batch_size)
        .map(|p| format!("batch {} at {:.2}x", p.batch_size, p.speedup))
        .unwrap_or_else(|| "no points".into());
    println!(
        "bench_check: ok — {} points (T = {}, {} threads, {} CPUs), {widest}{}",
        report.points.len(),
        report.t,
        report.threads,
        report.cpus,
        if report.cpus < 4 {
            " [single-CPU correctness-only acceptance]"
        } else {
            ""
        },
    );
}
