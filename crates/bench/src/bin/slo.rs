//! SLO soak harness: drives the versioned registry through calm →
//! fault burst → recovery under a windowed SLO monitor
//! ([`fast_bcnn::slo::run_slo_soak`]) and proves the observability
//! contract — the health walk pages on the burst and recovers, the
//! windowed accounting reconciles *exactly* against the registry fold
//! and the embedded chaos campaign, every latency quantile estimate
//! honors the documented bucket error bound, and the auto-emitted
//! flight-recorder postmortem replays exactly the failed requests.
//!
//! Emits `BENCH_slo.json` (override the path with `--json`); `--seed`
//! sets the soak seed and `--quick` the CI smoke configuration. The
//! soak installs its own windowed recorder globally for the duration,
//! so `--trace-out` / `--metrics-out` are exported from its total
//! registry after the run.

use fast_bcnn::slo::{run_slo_soak_with_registry, SloSoakConfig};
use fbcnn_bench::SloBenchReport;

fn main() {
    let args = fbcnn_bench::parse_args();
    let quick = args.cfg.t <= 4;
    let cfg = if quick {
        SloSoakConfig::quick(args.cfg.seed)
    } else {
        SloSoakConfig::full(args.cfg.seed)
    };

    let (report, windowed) = match run_slo_soak_with_registry(&cfg) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("slo: FAIL — soak could not start: {e}");
            std::process::exit(1);
        }
    };
    let bench = SloBenchReport::from_report(&report, quick);

    println!(
        "== slo soak (seed {}, {} windows of {} ns, fast span {}, slow span {}, budget {:.0}%) ==",
        bench.seed,
        bench.windows,
        bench.window_width_ns,
        bench.fast_windows,
        bench.slow_windows,
        bench.error_budget * 100.0
    );
    for v in &bench.verdicts {
        println!(
            "window {:>2} {:<9} {:>8} | {:>3} requests{}",
            v.window,
            v.phase,
            v.status.to_uppercase(),
            v.requests,
            if v.violations.is_empty() {
                String::new()
            } else {
                format!(" | {}", v.violations.join("; "))
            }
        );
    }
    println!(
        "registry: {} requests, {} ok / {} failed | windowed view agrees cell by cell",
        bench.registry_requests, bench.registry_ok, bench.registry_failed
    );
    if let Some(chaos) = &bench.chaos {
        println!(
            "chaos (class `default`): {} requests, {} ok / {} failed | windowed view agrees",
            chaos.requests, chaos.ok, chaos.failed
        );
    }
    for q in &bench.quantiles {
        println!(
            "quantile {:>4}: estimate {:>12.0} ns vs exact {:>12} ns [{}]",
            q.name,
            q.estimate_ns,
            q.exact_ns,
            if q.within_bound {
                "in bound"
            } else {
                "OUT OF BOUND"
            }
        );
    }
    println!(
        "postmortem: trigger `{}`, {} records ({} degraded), replays failed ids {:?}",
        bench.postmortem_trigger,
        bench.postmortem_records,
        bench.postmortem_degraded,
        bench.postmortem_failed_ids
    );

    // The soak recorded into its own windowed registry; export the
    // artifacts from its total view instead of installing a global
    // FileSink (the install lock is not reentrant across the soak).
    if let Some(p) = &args.trace_out {
        match windowed.total().write_jsonl(p) {
            Ok(()) => eprintln!("wrote {p}"),
            Err(e) => {
                eprintln!("failed to write {p}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(p) = &args.metrics_out {
        match windowed.total().write_prometheus(p) {
            Ok(()) => eprintln!("wrote {p}"),
            Err(e) => {
                eprintln!("failed to write {p}: {e}");
                std::process::exit(1);
            }
        }
    }

    let path = args.json.clone().unwrap_or_else(|| "BENCH_slo.json".into());
    match fast_bcnn::report::save_json(&path, &bench) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Err(reason) = bench.validate() {
        eprintln!("slo: FAIL — {reason}");
        std::process::exit(1);
    }
    // The acceptance dump was read back and verified; don't leave it in
    // the temp directory.
    if let Some(p) = &bench.postmortem_path {
        let _ = std::fs::remove_file(p);
    }
    println!("slo: ok — health walk paged and recovered, accounting reconciled exactly");
}
