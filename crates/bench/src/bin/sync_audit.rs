//! Regenerates the Eq. 8/9 synchronization analysis: required lane
//! factor δ per layer transition and whether the provisioned `4·Tn`
//! counting lanes keep the prediction unit ahead of the convolution
//! unit.

use fast_bcnn::experiments::sync_audit;
use fast_bcnn::report::{format_table, pct};

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    let results = sync_audit::run(&args.cfg);
    for model in &results {
        println!(
            "== {} on {} (skip rate {}) ==",
            model.model,
            model.design,
            pct(model.skip_rate)
        );
        let rows: Vec<Vec<String>> = model
            .transitions
            .iter()
            .map(|t| {
                vec![
                    format!("{} -> {}", t.current, t.next),
                    format!("{:.2}", t.delta_required),
                    if t.eq8_holds { "yes" } else { "no" }.into(),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(&["transition", "delta required", "Eq.8 holds"], &rows)
        );
        println!(
            "Eq.8 per-transition pass rate: {} (the cumulative pipeline absorbs the rest)\n",
            pct(model.eq8_pass_rate)
        );
    }
    fbcnn_bench::maybe_dump(&args, &results);
}
