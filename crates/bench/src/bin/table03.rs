//! Regenerates Table III: empirical drop rates of the LFSR BRNG vs the
//! software Bernoulli generator.

use fast_bcnn::experiments::tables;
use fast_bcnn::report::format_table;

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    let rows_data = tables::table3(args.cfg.seed);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                format!("p = {}", r.nominal),
                format!("{:.4}", r.lfsr_2000),
                format!("{:.4}", r.lfsr_4000),
                format!("{:.4}", r.software_2000),
                format!("{:.4}", r.software_4000),
            ]
        })
        .collect();
    println!("== Table III: measured drop rates ==");
    println!(
        "{}",
        format_table(
            &[
                "drop rate",
                "LFSR 2000",
                "LFSR 4000",
                "software 2000",
                "software 4000"
            ],
            &rows
        )
    );
    fbcnn_bench::maybe_dump(&args, &rows_data);
}
