//! Chaos soak harness: hammers the resilient serving layer
//! ([`fast_bcnn::ResilientBatchEngine`]) with seeded fault rounds and
//! proves the robustness contract — zero hangs, zero aborts, every loss
//! typed, and the breaker/shed/retry/deadline accounting reconciled
//! exactly against the telemetry counters.
//!
//! Emits `BENCH_chaos.json` (override the path with `--json`); `--seed`
//! sets the campaign seed and `--quick` the CI smoke configuration
//! (deterministic fault classes only). The campaign records into its own
//! private telemetry registry, so `--trace-out` / `--metrics-out` are
//! exported from that registry after the run rather than through the
//! global recorder slot.

use fast_bcnn::chaos::{run_chaos_with_registry, ChaosConfig};
use fbcnn_bench::ChaosBenchReport;

fn main() {
    let args = fbcnn_bench::parse_args();
    let quick = args.cfg.t <= 4;
    let cfg = if quick {
        ChaosConfig::quick(args.cfg.seed)
    } else {
        ChaosConfig::full(args.cfg.seed)
    };

    let (report, registry) = run_chaos_with_registry(&cfg);
    let bench = ChaosBenchReport::from_report(&report, quick);

    println!(
        "== chaos soak (seed {}, {} rounds, {} requests, {} fault classes) ==",
        bench.seed,
        bench.rounds.len(),
        bench.requests_total,
        bench.classes.len()
    );
    for r in &bench.rounds {
        println!(
            "round {:<18} offered {:>3} | ok {:>3} | failed {:>3} | expired {:>3} | \
             shed {:>3} | retries {:>3}",
            r.class, r.offered, r.ok, r.failed, r.expired, r.shed, r.retries
        );
    }
    println!(
        "totals: ok {} / failed {} | shed {} | degraded {} | expired {} | \
         retries {} (healed {}, exhausted {}) | forced exact {} | probes {}",
        bench.ok_total,
        bench.failed_total,
        bench.shed,
        bench.degraded,
        bench.expired,
        bench.retries,
        bench.retry_successes,
        bench.retry_exhausted,
        bench.forced_exact,
        bench.probes,
    );
    let path_of = |(from, to): &(String, String)| format!("{from}->{to}");
    println!(
        "breaker: {} (transitions: {})",
        bench.final_breaker_state,
        if bench.transitions.is_empty() {
            "none".to_string()
        } else {
            bench
                .transitions
                .iter()
                .map(path_of)
                .collect::<Vec<_>>()
                .join(", ")
        }
    );
    for (reason, n) in &bench.loss_reasons {
        println!("loss[{reason}] = {n}");
    }

    // The campaign recorded into its own registry; export the artifacts
    // directly from it instead of installing a global FileSink (the
    // install lock is not reentrant across `run_chaos`).
    if let Some(p) = &args.trace_out {
        match registry.write_jsonl(p) {
            Ok(()) => eprintln!("wrote {p}"),
            Err(e) => {
                eprintln!("failed to write {p}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(p) = &args.metrics_out {
        match registry.write_prometheus(p) {
            Ok(()) => eprintln!("wrote {p}"),
            Err(e) => {
                eprintln!("failed to write {p}: {e}");
                std::process::exit(1);
            }
        }
    }

    let path = args
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_chaos.json".into());
    match fast_bcnn::report::save_json(&path, &bench) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Err(reason) = bench.validate() {
        eprintln!("chaos: FAIL — {reason}");
        std::process::exit(1);
    }
    println!("chaos: ok — every loss typed, accounting reconciled exactly");
}
