//! Regenerates Table I: the hardware design space.

use fast_bcnn::experiments::tables;
use fast_bcnn::report::format_table;

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    let rows_data = tables::table1();
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.design.clone(),
                r.total_macs.to_string(),
                r.tm.to_string(),
                r.tn.to_string(),
                r.counting_lanes.to_string(),
            ]
        })
        .collect();
    println!("== Table I: hardware parameters for Fast-BCNN designs ==");
    println!(
        "{}",
        format_table(&["type", "total MACs", "Tm", "Tn", "counting lanes"], &rows)
    );

    // The §IV-B analysis that selects feature-map parallelism (Eq. 6/7).
    use fbcnn_accel::parallelism;
    let overhead_rows: Vec<Vec<String>> = rows_data
        .iter()
        .skip(1) // baseline row has no skipping
        .map(|r| {
            vec![
                format!("<Tm={}, Tn={}>", r.tm, r.tn),
                format!(
                    "{}x",
                    parallelism::neuron_parallelism_buffer_overhead(r.tm, r.tn)
                ),
                format!(
                    "{}x",
                    parallelism::feature_map_parallelism_buffer_overhead(r.tm)
                ),
                format!("{:.1}x", parallelism::overhead_ratio(r.tm, r.tn)),
            ]
        })
        .collect();
    println!("== Eq. 6/7: buffer duplication required for skipping ==");
    println!(
        "{}",
        format_table(
            &[
                "config",
                "neuron par. (Eq.6)",
                "feature-map par. (Eq.7)",
                "ratio"
            ],
            &overhead_rows
        )
    );
    fbcnn_bench::maybe_dump(&args, &rows_data);
}
