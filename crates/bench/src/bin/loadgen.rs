//! Closed/open-loop load generator for the network serving tier.
//!
//! Boots a `fast_bcnn::serve` server over a fresh registry, drives the
//! seeded request mix (healthy tiers, deterministic sheds, expiring
//! deadlines, malformed frames) through real TCP connections, and emits
//! `BENCH_serve.json` (override with `--json`): the three-way
//! loadgen ↔ server ↔ registry ledger, per-class latency quantiles and
//! goodput, validated by `bench_check`.
//!
//! Flags: `--quick` (CI smoke mix), `--seed <N>`, `--connections <N>`,
//! `--requests <N>` (per connection), `--mode closed|open`,
//! `--json <path>`, `--trace-out <path>`, `--metrics-out <path>`.
//! Unknown flags are hard errors (exit 2).

use fast_bcnn::serve::{run_serve_soak_with_registry, LoadMode, ServeSoakConfig};
use fbcnn_bench::ServeBenchReport;

struct Args {
    quick: bool,
    seed: u64,
    connections: Option<usize>,
    requests: Option<usize>,
    mode: Option<LoadMode>,
    json: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--quick] [--seed <N>] [--connections <N>] [--requests <N>] \
         [--mode closed|open] [--json <path>] [--trace-out <path>] [--metrics-out <path>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        quick: false,
        seed: 11,
        connections: None,
        requests: None,
        mode: None,
        json: None,
        trace_out: None,
        metrics_out: None,
    };
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> String {
        argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            usage();
        })
    };
    let number = |argv: &[String], i: usize, flag: &str| -> u64 {
        let raw = value(argv, i, flag);
        raw.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} needs a number, got `{raw}`");
            usage();
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.quick = true,
            "--seed" => {
                args.seed = number(&argv, i, "--seed");
                i += 1;
            }
            "--connections" => {
                args.connections = Some(number(&argv, i, "--connections").max(1) as usize);
                i += 1;
            }
            "--requests" => {
                args.requests = Some(number(&argv, i, "--requests").max(1) as usize);
                i += 1;
            }
            "--mode" => {
                let raw = value(&argv, i, "--mode");
                match LoadMode::parse(&raw) {
                    Some(mode) => args.mode = Some(mode),
                    None => {
                        eprintln!("error: --mode must be `closed` or `open`, got `{raw}`");
                        usage();
                    }
                }
                i += 1;
            }
            "--json" => {
                args.json = Some(value(&argv, i, "--json"));
                i += 1;
            }
            "--trace-out" => {
                args.trace_out = Some(value(&argv, i, "--trace-out"));
                i += 1;
            }
            "--metrics-out" => {
                args.metrics_out = Some(value(&argv, i, "--metrics-out"));
                i += 1;
            }
            other => {
                eprintln!("error: unknown flag: {other}");
                usage();
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let mut cfg = if args.quick {
        ServeSoakConfig::quick(args.seed)
    } else {
        ServeSoakConfig::full(args.seed)
    };
    if let Some(connections) = args.connections {
        cfg.connections = connections;
    }
    if let Some(requests) = args.requests {
        cfg.requests_per_connection = requests;
    }
    if let Some(mode) = args.mode {
        cfg.mode = mode;
    }

    let (report, registry) = match run_serve_soak_with_registry(&cfg) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("loadgen: failed to boot the serve soak: {e}");
            std::process::exit(1);
        }
    };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let bench = ServeBenchReport::from_soak(&report, args.quick, cpus);

    println!(
        "== serve soak (seed {}, {} mode, {} connections x {} requests, {} CPUs) ==",
        bench.seed, bench.mode, bench.connections, bench.requests_per_connection, bench.cpus
    );
    println!(
        "offered {} | ok {} | failed {} | shed {} | expired {} | wire errors {} | \
         unknown class {}",
        bench.offered,
        bench.ok,
        bench.failed,
        bench.shed,
        bench.expired,
        bench.wire_errors,
        bench.unknown_class,
    );
    println!(
        "registry: {} requests ({} ok / {} failed) | connections {} (+{} rejected)",
        bench.registry_requests,
        bench.registry_ok,
        bench.registry_failed,
        bench.server_connections,
        bench.server_connections_rejected,
    );
    println!(
        "goodput {:.0} req/s | bit checks {} ({} mismatched) | aborted workers {}",
        bench.goodput_rps, bench.bit_checked, bench.bit_mismatched, bench.aborted_workers,
    );
    let mut last_class = "";
    for q in &bench.quantiles {
        if q.class != last_class {
            println!("latency[{}]:", q.class);
            last_class = &q.class;
        }
        println!(
            "  {:<5} estimate {:>12.0} ns | exact {:>12} ns",
            q.name, q.estimate_ns, q.exact_ns
        );
    }

    // The soak recorded into its own registry; export directly from it
    // (the global install lock is not reentrant).
    if let Some(p) = &args.trace_out {
        match registry.write_jsonl(p) {
            Ok(()) => eprintln!("wrote {p}"),
            Err(e) => {
                eprintln!("failed to write {p}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(p) = &args.metrics_out {
        match registry.write_prometheus(p) {
            Ok(()) => eprintln!("wrote {p}"),
            Err(e) => {
                eprintln!("failed to write {p}: {e}");
                std::process::exit(1);
            }
        }
    }

    let path = args
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_serve.json".into());
    match fast_bcnn::report::save_json(&path, &bench) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Err(reason) = bench.validate() {
        eprintln!("loadgen: FAIL — {reason}");
        std::process::exit(1);
    }
    println!("loadgen: ok — ledger reconciled exactly, zero aborts, bit identity held");
}
