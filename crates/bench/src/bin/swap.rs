//! Hot-swap-under-fire harness: runs the chaos soak's traffic pattern
//! against a [`fast_bcnn::ModelRegistry`] that deploys a new model
//! version every round — healthy versions promoted mid-traffic,
//! crashing versions auto-rolled back by the canary verdict — and
//! proves zero lost requests, bit-identical intact responses and exact
//! `version_requests{version}` counter reconciliation.
//!
//! Emits `BENCH_swap.json` (override the path with `--json`); `--seed`
//! sets the campaign seed and `--quick` the CI smoke configuration. The
//! campaign records into its own telemetry registry, so `--trace-out` /
//! `--metrics-out` export from that registry after the run.

use fast_bcnn::chaos::{run_swap_chaos_into, SwapChaosConfig};
use fbcnn_bench::SwapBenchReport;
use std::sync::Arc;

fn main() {
    let args = fbcnn_bench::parse_args();
    let quick = args.cfg.t <= 4;
    let cfg = if quick {
        SwapChaosConfig::quick(args.cfg.seed)
    } else {
        SwapChaosConfig::full(args.cfg.seed)
    };

    let registry = Arc::new(fast_bcnn::telemetry::Registry::new());
    let report = match run_swap_chaos_into(&cfg, &registry) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("swap: campaign failed to run: {e}");
            std::process::exit(1);
        }
    };
    let bench = SwapBenchReport::from_report(&report, quick);

    println!(
        "== swap under fire (seed {}, {} rounds, {} requests, {} shards) ==",
        bench.seed,
        bench.rounds.len(),
        bench.requests_total,
        cfg.shards
    );
    for r in &bench.rounds {
        println!(
            "round {:>2} {:<12} v{:<3} offered {:>3} | ok {:>3} | failed {:>3} | {}",
            r.round,
            r.action,
            r.deployed_version,
            r.offered,
            r.ok,
            r.failed,
            if r.promoted {
                "promoted"
            } else if r.rolled_back {
                "rolled back"
            } else {
                "abandoned"
            }
        );
    }
    println!(
        "totals: ok {} / failed {} | deploys {} | promotions {} | rollbacks {} | \
         active v{} | {} responses bit-checked ({} diverged)",
        bench.ok_total,
        bench.failed_total,
        bench.deploys,
        bench.promotions,
        bench.rollbacks,
        bench.final_version,
        bench.compared_outputs,
        bench.mismatched_outputs,
    );
    for (version, cell) in &bench.version_requests {
        println!(
            "version_requests[v{version}] = {} (ok {}, failed {}, canary {})",
            cell.requests, cell.ok, cell.failed, cell.canary
        );
    }

    if let Some(p) = &args.trace_out {
        match registry.write_jsonl(p) {
            Ok(()) => eprintln!("wrote {p}"),
            Err(e) => {
                eprintln!("failed to write {p}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(p) = &args.metrics_out {
        match registry.write_prometheus(p) {
            Ok(()) => eprintln!("wrote {p}"),
            Err(e) => {
                eprintln!("failed to write {p}: {e}");
                std::process::exit(1);
            }
        }
    }

    let path = args
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_swap.json".into());
    match fast_bcnn::report::save_json(&path, &bench) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Err(reason) = bench.validate() {
        eprintln!("swap: FAIL — {reason}");
        std::process::exit(1);
    }
    println!("swap: ok — zero lost requests, version counters reconciled exactly");
}
