//! Self-healing supervision soak harness.
//!
//! Boots a supervised multi-shard registry behind a live TCP server,
//! poisons three shards simultaneously (per-sample panics, watchdog
//! stalls, a jammed breaker), drives seeded closed-loop bursts plus an
//! adversarial client battery, and bursts until every poisoned shard
//! has walked Suspect → Quarantined → Rebuilding → Healthy. Emits
//! `BENCH_supervise.json` (override with `--json`): the three-way
//! ledger, per-shard supervision accounting, the ordered transition
//! log and the reconciliation verdict, validated by `bench_check`.
//!
//! Flags: `--quick` (CI smoke campaign), `--seed <N>`, `--json <path>`,
//! `--trace-out <path>`, `--metrics-out <path>`. Unknown flags are hard
//! errors (exit 2).

use fast_bcnn::serve::{run_supervise_soak_with_registry, SuperviseSoakConfig};
use fbcnn_bench::SuperviseBenchReport;

struct Args {
    quick: bool,
    seed: u64,
    json: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: supervise [--quick] [--seed <N>] [--json <path>] \
         [--trace-out <path>] [--metrics-out <path>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        quick: false,
        seed: 11,
        json: None,
        trace_out: None,
        metrics_out: None,
    };
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> String {
        argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            usage();
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.quick = true,
            "--seed" => {
                let raw = value(&argv, i, "--seed");
                args.seed = raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: --seed needs a number, got `{raw}`");
                    usage();
                });
                i += 1;
            }
            "--json" => {
                args.json = Some(value(&argv, i, "--json"));
                i += 1;
            }
            "--trace-out" => {
                args.trace_out = Some(value(&argv, i, "--trace-out"));
                i += 1;
            }
            "--metrics-out" => {
                args.metrics_out = Some(value(&argv, i, "--metrics-out"));
                i += 1;
            }
            other => {
                eprintln!("error: unknown flag: {other}");
                usage();
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = if args.quick {
        SuperviseSoakConfig::quick(args.seed)
    } else {
        SuperviseSoakConfig::full(args.seed)
    };

    let (report, registry) = match run_supervise_soak_with_registry(&cfg) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("supervise: failed to boot the soak: {e}");
            std::process::exit(1);
        }
    };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let bench = SuperviseBenchReport::from_soak(&report, args.quick, cpus);

    println!(
        "== supervision soak (seed {}, {} shards, {} connections/burst, {} bursts, {} CPUs) ==",
        bench.seed, bench.shards, bench.connections, bench.bursts, bench.cpus
    );
    println!(
        "offered {} | ok {} | failed {} | shed {} | expired {} | wire errors {} | \
         unknown class {}",
        bench.offered,
        bench.ok,
        bench.failed,
        bench.shed,
        bench.expired,
        bench.wire_errors,
        bench.unknown_class,
    );
    println!(
        "registry: {} requests ({} ok / {} failed) | adversarial {} connections \
         ({} rejects read back)",
        bench.registry_requests,
        bench.registry_ok,
        bench.registry_failed,
        bench.adversarial_connections,
        bench.adversarial_rejects,
    );
    println!(
        "healing: {} rebuilds ({} re-admitted / {} probe-rejected) | {} failovers | \
         all quarantined in {:.0} ms, campaign {:.0} ms",
        bench.rebuild_attempts,
        bench.rebuild_successes,
        bench.rebuild_probe_rejects,
        bench.failovers,
        bench.quarantine_elapsed_ns as f64 / 1e6,
        bench.elapsed_ns as f64 / 1e6,
    );
    println!("shard  poison  health    walk  served   ok   failed abandoned  out   in  quar");
    for c in &bench.shard_cells {
        println!(
            "{:>5}  {:<6}  {:<8}  {:<4}  {:>6} {:>5} {:>6} {:>9} {:>5} {:>4} {:>5}",
            c.shard,
            c.poison.as_deref().unwrap_or("-"),
            c.health,
            if c.full_walk { "yes" } else { "-" },
            c.served,
            c.ok,
            c.failed,
            c.abandoned,
            c.failovers_out,
            c.failovers_in,
            c.quarantines,
        );
    }
    print!(
        "{}",
        fast_bcnn::TelemetryReport::from_registry(&registry).render()
    );

    // The soak recorded into its own registry; export directly from it
    // (the global install lock is not reentrant).
    if let Some(p) = &args.trace_out {
        match registry.write_jsonl(p) {
            Ok(()) => eprintln!("wrote {p}"),
            Err(e) => {
                eprintln!("failed to write {p}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(p) = &args.metrics_out {
        match registry.write_prometheus(p) {
            Ok(()) => eprintln!("wrote {p}"),
            Err(e) => {
                eprintln!("failed to write {p}: {e}");
                std::process::exit(1);
            }
        }
    }

    let path = args
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_supervise.json".into());
    match fast_bcnn::report::save_json(&path, &bench) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
    if let Err(reason) = bench.validate() {
        eprintln!("supervise: FAIL — {reason}");
        std::process::exit(1);
    }
    println!(
        "supervise: ok — every poisoned shard quarantined, rebuilt and re-admitted; \
         ledger reconciled exactly, bit identity held"
    );
}
