//! Prints the two-unit pipeline schedule (convolution vs prediction) for
//! the first samples of a Fast-BCNN run — the Eq. 8 overlap made
//! visible.

use fast_bcnn::{synth_input, Engine, EngineConfig, FastBcnnSim, HwConfig, SkipMode};
use fbcnn_nn::models::ModelKind;

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    let engine = Engine::new(EngineConfig {
        model: ModelKind::LeNet5,
        samples: args.cfg.t.min(8),
        ..EngineConfig::for_model(ModelKind::LeNet5)
    });
    let input = synth_input(engine.network().input_shape(), args.cfg.seed);
    let w = engine.workload(&input);
    let sim = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both);
    let tl = sim.timeline(&w);
    println!(
        "B-LeNet-5 on FB-64 — pre-inference {} cycles, total {} cycles",
        tl.pre_inference_cycles, tl.total_cycles
    );
    print!("{}", tl.render_text(2, 72));
    println!(
        "\n('#' spans are busy intervals; a conv row starting after its pred row\n ends is the prediction-unit dependency; gaps are stalls)"
    );
    fbcnn_bench::maybe_dump(&args, &tl);
}
