//! Regenerates the §III motivation numbers: the cost of a complete BCNN
//! inference relative to one CNN inference on skip-oblivious hardware.

use fast_bcnn::experiments::motivation;
use fast_bcnn::report::format_table;

fn main() {
    let args = fbcnn_bench::parse_args();
    let _telemetry = args.telemetry();
    let results = motivation::run(&args.cfg);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.t.to_string(),
                r.cnn_cycles.to_string(),
                r.bcnn_cycles.to_string(),
                format!("{:.1}x", r.slowdown),
                format!("{:.1}x", r.energy_ratio),
            ]
        })
        .collect();
    println!("== BCNN vs CNN cost on the baseline accelerator ==");
    println!(
        "{}",
        format_table(
            &[
                "model",
                "T",
                "CNN cycles",
                "BCNN cycles",
                "slowdown",
                "energy"
            ],
            &rows
        )
    );
    fbcnn_bench::maybe_dump(&args, &results);
}
