//! The `BENCH_slo.json` record shared by the `slo` soak harness
//! (writer) and the `bench_check` CI validator (reader).
//!
//! Like `BENCH_chaos.json` the record carries a `schema` tag
//! ([`SLO_SCHEMA`]) so `bench_check` can dispatch from the file contents
//! alone. It flattens the in-memory `fast_bcnn::slo::SloSoakReport` and
//! keeps both halves of the acceptance evidence: the exact-accounting
//! verdict computed at run time (against the registry fold and the
//! chaos campaign's own report) and the raw quantities — per-window
//! health walk, per-class totals, quantile checks, postmortem replay —
//! a reader needs to re-derive it.

use serde::{Deserialize, Serialize};

/// The `schema` tag every SLO record carries.
pub const SLO_SCHEMA: &str = "slo-v1";

/// One window of the soak's health walk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloWindow {
    /// Window index on the manual clock.
    pub window: u64,
    /// `"calm"`, `"burst"` or `"recovery"`.
    pub phase: String,
    /// Evaluated health (`"ok"`, `"warning"`, `"critical"`).
    pub status: String,
    /// Rendered violations behind the status.
    pub violations: Vec<String>,
    /// Registry requests driven in this window.
    pub requests: usize,
}

/// Per-deadline-class request totals from one view of the accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloClassCell {
    /// Deadline class label.
    pub class: String,
    /// `request_outcomes{class,result="ok"}`.
    pub ok: u64,
    /// `request_outcomes{class,result="failed"}`.
    pub failed: u64,
}

/// One quantile acceptance check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloQuantileCell {
    /// Quantile name (`"p50"` … `"p999"`).
    pub name: String,
    /// The quantile in `(0, 1]`.
    pub q: f64,
    /// The windowed bucket-edge estimate, nanoseconds.
    pub estimate_ns: f64,
    /// The exact same-rank value from the sorted latencies.
    pub exact_ns: u64,
    /// Whether the estimate honors the documented bucket error bound.
    pub within_bound: bool,
}

/// Totals of the chaos campaign embedded in the burst window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloChaosCell {
    /// Requests the campaign offered.
    pub requests: u64,
    /// Requests that produced a prediction.
    pub ok: u64,
    /// Requests that failed with a typed error.
    pub failed: u64,
}

/// The full `BENCH_slo.json` record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloBenchReport {
    /// Always [`SLO_SCHEMA`]; lets `bench_check` dispatch on content.
    pub schema: String,
    /// The soak seed — replaying with it reproduces the walk.
    pub seed: u64,
    /// Whether the quick (smoke) configuration ran.
    pub quick: bool,
    /// Manual-clock window width, nanoseconds.
    pub window_width_ns: u64,
    /// Windows the soak spanned.
    pub windows: usize,
    /// Windows evicted from the ring — must be 0 for exact accounting.
    pub evicted_windows: u64,
    /// Error budget of the judging policy.
    pub error_budget: f64,
    /// Fast alerting span, windows.
    pub fast_windows: usize,
    /// Slow alerting span, windows.
    pub slow_windows: usize,
    /// Registry requests driven across the soak.
    pub registry_requests: u64,
    /// Registry requests that produced a prediction.
    pub registry_ok: u64,
    /// Registry requests that failed.
    pub registry_failed: u64,
    /// Per-class totals as the windowed view summed them.
    pub windowed: Vec<SloClassCell>,
    /// The same classes read from the total (unwindowed) registry.
    pub totals: Vec<SloClassCell>,
    /// Chaos campaign totals, when the burst embedded one.
    pub chaos: Option<SloChaosCell>,
    /// Quantile acceptance checks for the soak class.
    pub quantiles: Vec<SloQuantileCell>,
    /// The per-window health walk, in soak order.
    pub verdicts: Vec<SloWindow>,
    /// Where the auto-emitted postmortem dump landed.
    pub postmortem_path: Option<String>,
    /// The dump's recorded trigger (`"canary_spike"` normally).
    pub postmortem_trigger: String,
    /// Failed request ids the dump replays, in recording order.
    pub postmortem_failed_ids: Vec<u64>,
    /// Failed registry request ids at dump time — what the dump must
    /// replay.
    pub expected_failed_ids: Vec<u64>,
    /// Records in the dump's live ring.
    pub postmortem_records: u64,
    /// Degraded records in the dump.
    pub postmortem_degraded: u64,
    /// Whether every exact-accounting invariant held at run time.
    pub reconciled: bool,
    /// The first failed invariant, when `reconciled` is false.
    pub reconcile_error: Option<String>,
    /// Wall-clock of the soak, nanoseconds.
    pub elapsed_ns: u64,
}

impl SloBenchReport {
    /// Flattens an in-memory soak report into the JSON record, stamping
    /// the reconciliation verdict computed against the live telemetry.
    pub fn from_report(report: &fast_bcnn::slo::SloSoakReport, quick: bool) -> Self {
        let reconcile = report.reconcile();
        Self {
            schema: SLO_SCHEMA.to_string(),
            seed: report.seed,
            quick,
            window_width_ns: report.window_width_ns,
            windows: report.windows,
            evicted_windows: report.evicted_windows,
            error_budget: report.error_budget,
            fast_windows: report.fast_windows,
            slow_windows: report.slow_windows,
            registry_requests: report.registry_requests,
            registry_ok: report.registry_ok,
            registry_failed: report.registry_failed,
            windowed: report
                .windowed
                .iter()
                .map(|c| SloClassCell {
                    class: c.class.clone(),
                    ok: c.ok,
                    failed: c.failed,
                })
                .collect(),
            totals: report
                .totals
                .iter()
                .map(|c| SloClassCell {
                    class: c.class.clone(),
                    ok: c.ok,
                    failed: c.failed,
                })
                .collect(),
            chaos: report.chaos.as_ref().map(|c| SloChaosCell {
                requests: c.requests,
                ok: c.ok,
                failed: c.failed,
            }),
            quantiles: report
                .quantiles
                .iter()
                .map(|q| SloQuantileCell {
                    name: q.name.clone(),
                    q: q.q,
                    estimate_ns: q.estimate_ns,
                    exact_ns: q.exact_ns,
                    within_bound: q.within_bound,
                })
                .collect(),
            verdicts: report
                .verdicts
                .iter()
                .map(|v| SloWindow {
                    window: v.window,
                    phase: v.phase.clone(),
                    status: v.status.name().to_string(),
                    violations: v.violations.clone(),
                    requests: v.requests,
                })
                .collect(),
            postmortem_path: report
                .postmortem_path
                .as_ref()
                .map(|p| p.display().to_string()),
            postmortem_trigger: report.postmortem_trigger.clone(),
            postmortem_failed_ids: report.postmortem_failed_ids.clone(),
            expected_failed_ids: report.expected_failed_ids.clone(),
            postmortem_records: report.postmortem_records,
            postmortem_degraded: report.postmortem_degraded,
            reconciled: reconcile.is_ok(),
            reconcile_error: reconcile.err(),
            elapsed_ns: report.elapsed_ns,
        }
    }

    /// Validates the record for CI. Every run must have reconciled
    /// exactly, walked Ok → Critical → Warning → Ok, kept every
    /// quantile estimate inside the bucket error bound, and emitted a
    /// postmortem that replays exactly the failed requests; a full (non
    /// `--quick`) soak must additionally embed a chaos campaign and
    /// drive ≥ 120 registry requests over ≥ 12 windows.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a message.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SLO_SCHEMA {
            return Err(format!("schema `{}`, expected `{SLO_SCHEMA}`", self.schema));
        }
        if !self.reconciled {
            return Err(format!(
                "accounting did not reconcile: {}",
                self.reconcile_error.as_deref().unwrap_or("unknown")
            ));
        }
        if self.registry_ok + self.registry_failed != self.registry_requests {
            return Err(format!(
                "ok {} + failed {} != offered {}",
                self.registry_ok, self.registry_failed, self.registry_requests
            ));
        }
        if self.evicted_windows != 0 {
            return Err(format!("{} windows were evicted", self.evicted_windows));
        }
        if self.verdicts.is_empty() {
            return Err("no health walk".into());
        }
        if !self.verdicts.iter().any(|v| v.status == "critical") {
            return Err("the fault burst never drove health to critical".into());
        }
        match self.verdicts.last() {
            Some(last) if last.status == "ok" => {}
            Some(last) => {
                return Err(format!(
                    "the soak ended `{}` instead of recovering to ok",
                    last.status
                ));
            }
            None => unreachable!("verdicts checked non-empty above"),
        }
        if self.quantiles.is_empty() {
            return Err("no quantile checks".into());
        }
        if let Some(q) = self.quantiles.iter().find(|q| !q.within_bound) {
            return Err(format!(
                "{} estimate {:.0}ns violates the bucket bound of exact {}ns",
                q.name, q.estimate_ns, q.exact_ns
            ));
        }
        if self.postmortem_path.is_none() || self.postmortem_trigger.is_empty() {
            return Err("no postmortem dump was emitted".into());
        }
        if self.postmortem_failed_ids != self.expected_failed_ids {
            return Err(format!(
                "postmortem replays failed ids {:?}, the soak recorded {:?}",
                self.postmortem_failed_ids, self.expected_failed_ids
            ));
        }
        if !self.quick {
            if self.chaos.is_none() {
                return Err("full soak embedded no chaos campaign".into());
            }
            if self.registry_requests < 120 {
                return Err(format!(
                    "full soak drove {} registry requests, floor is 120",
                    self.registry_requests
                ));
            }
            if self.windows < 12 {
                return Err(format!(
                    "full soak spanned {} windows, floor is 12",
                    self.windows
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(quick: bool) -> SloBenchReport {
        let walk = [
            ("calm", "ok"),
            ("calm", "ok"),
            ("calm", "ok"),
            ("burst", "critical"),
            ("recovery", "critical"),
            ("recovery", "warning"),
            ("recovery", "warning"),
            ("recovery", "warning"),
            ("recovery", "warning"),
            ("recovery", "warning"),
            ("recovery", "ok"),
            ("recovery", "ok"),
        ];
        SloBenchReport {
            schema: SLO_SCHEMA.to_string(),
            seed: 9,
            quick,
            window_width_ns: 1_000_000_000,
            windows: walk.len(),
            evicted_windows: 0,
            error_budget: 0.02,
            fast_windows: 2,
            slow_windows: 8,
            registry_requests: 150,
            registry_ok: 146,
            registry_failed: 4,
            windowed: vec![SloClassCell {
                class: "soak".into(),
                ok: 146,
                failed: 4,
            }],
            totals: vec![SloClassCell {
                class: "soak".into(),
                ok: 146,
                failed: 4,
            }],
            chaos: Some(SloChaosCell {
                requests: 28,
                ok: 16,
                failed: 12,
            }),
            quantiles: vec![SloQuantileCell {
                name: "p99".into(),
                q: 0.99,
                estimate_ns: 1024.0,
                exact_ns: 900,
                within_bound: true,
            }],
            verdicts: walk
                .iter()
                .enumerate()
                .map(|(i, (phase, status))| SloWindow {
                    window: i as u64,
                    phase: phase.to_string(),
                    status: status.to_string(),
                    violations: Vec::new(),
                    requests: 30,
                })
                .collect(),
            postmortem_path: Some("/tmp/pm.json".into()),
            postmortem_trigger: "canary_spike".into(),
            postmortem_failed_ids: vec![500_001, 500_004],
            expected_failed_ids: vec![500_001, 500_004],
            postmortem_records: 40,
            postmortem_degraded: 4,
            reconciled: true,
            reconcile_error: None,
            elapsed_ns: 1,
        }
    }

    #[test]
    fn json_round_trip() {
        let r = record(false);
        let json = serde_json::to_string(&r).unwrap();
        let back: SloBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn a_clean_full_soak_passes() {
        assert!(record(false).validate().is_ok());
    }

    #[test]
    fn reconcile_failures_always_fail_validation() {
        let mut r = record(true);
        r.reconciled = false;
        r.reconcile_error = Some("windowed soak class disagrees".into());
        assert!(r.validate().unwrap_err().contains("reconcile"));
    }

    #[test]
    fn a_walk_without_critical_fails() {
        let mut r = record(true);
        for v in &mut r.verdicts {
            if v.status == "critical" {
                v.status = "warning".into();
            }
        }
        assert!(r.validate().unwrap_err().contains("critical"));
    }

    #[test]
    fn an_unrecovered_walk_fails() {
        let mut r = record(true);
        if let Some(last) = r.verdicts.last_mut() {
            last.status = "warning".into();
        }
        assert!(r.validate().unwrap_err().contains("recovering"));
    }

    #[test]
    fn a_postmortem_replay_mismatch_fails() {
        let mut r = record(true);
        r.postmortem_failed_ids.pop();
        assert!(r.validate().unwrap_err().contains("postmortem"));
    }

    #[test]
    fn out_of_bound_quantiles_fail() {
        let mut r = record(true);
        r.quantiles[0].within_bound = false;
        assert!(r.validate().unwrap_err().contains("bucket bound"));
    }

    #[test]
    fn full_soak_floors_do_not_bind_quick_runs() {
        let mut r = record(true);
        r.registry_requests = 82;
        r.registry_ok = 78;
        r.registry_failed = 4;
        assert!(r.validate().is_ok());
        r.quick = false;
        assert!(r.validate().unwrap_err().contains("floor is 120"));
    }

    #[test]
    fn wrong_schema_tag_is_rejected() {
        let mut r = record(true);
        r.schema = "chaos-v1".into();
        assert!(r.validate().unwrap_err().contains("schema"));
    }
}
