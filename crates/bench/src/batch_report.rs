//! The `BENCH_batch.json` record shared by the `throughput` harness
//! (writer) and the `bench_check` CI validator (reader).
//!
//! The record keeps raw nanosecond measurements alongside the derived
//! throughputs so a reader can re-derive every ratio, and it carries the
//! host's CPU count: on a single-CPU runner the speedup column is
//! informational only and [`BatchBenchReport::validate`] applies the
//! correctness-only acceptance documented in `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

/// One batch-size measurement point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchPoint {
    /// Requests in the batch.
    pub batch_size: usize,
    /// Wall-clock of the sequential `predict_robust_seeded` loop, ns.
    pub sequential_ns: u64,
    /// Wall-clock of the `BatchEngine::run_batch` call, ns.
    pub batch_ns: u64,
    /// Sequential requests per second.
    pub sequential_rps: f64,
    /// Batched requests per second.
    pub batch_rps: f64,
    /// `batch_rps / sequential_rps`.
    pub speedup: f64,
    /// Pre-inference cache hits inside the batch.
    pub cache_hits: usize,
    /// Pre-inference cache misses inside the batch.
    pub cache_misses: usize,
    /// Whether every batched result was bit-identical to its sequential
    /// counterpart — the headline invariant, measured not assumed.
    pub matched: bool,
}

/// The full `BENCH_batch.json` record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchBenchReport {
    /// MC sample count per request.
    pub t: usize,
    /// Worker threads of the batch engine.
    pub threads: usize,
    /// Master seed the per-request seeds were derived from.
    pub seed: u64,
    /// Whether the quick (smoke) configuration ran.
    pub quick: bool,
    /// Logical CPUs available on the measuring host.
    pub cpus: usize,
    /// One point per measured batch size, ascending.
    pub points: Vec<BatchPoint>,
}

impl BatchBenchReport {
    /// Validates the record for CI: every point must be bit-identical to
    /// sequential and carry positive timings; on a multi-CPU host with
    /// multiple worker threads, the largest measured batch must also
    /// reach `min_speedup`. Returns a human-readable failure reason.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a message.
    pub fn validate(&self, min_speedup: f64) -> Result<(), String> {
        if self.points.is_empty() {
            return Err("no measurement points".into());
        }
        for p in &self.points {
            if !p.matched {
                return Err(format!(
                    "batch size {}: results diverged from sequential",
                    p.batch_size
                ));
            }
            if p.sequential_ns == 0 || p.batch_ns == 0 {
                return Err(format!("batch size {}: zero timing", p.batch_size));
            }
        }
        // The throughput target only binds when parallel hardware and a
        // parallel configuration are actually present; a 1-CPU container
        // passes on correctness alone (see EXPERIMENTS.md).
        if self.cpus >= 4 && self.threads >= 4 && !self.quick {
            let Some(widest) = self.points.iter().max_by_key(|p| p.batch_size) else {
                return Err("no measurement points".into());
            };
            if widest.batch_size >= 8 && widest.speedup < min_speedup {
                return Err(format!(
                    "batch size {} reached {:.2}x, target {min_speedup:.2}x",
                    widest.batch_size, widest.speedup
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(batch_size: usize, speedup: f64, matched: bool) -> BatchPoint {
        BatchPoint {
            batch_size,
            sequential_ns: 1_000_000,
            batch_ns: (1_000_000.0 * batch_size as f64 / speedup) as u64,
            sequential_rps: 1000.0,
            batch_rps: 1000.0 * speedup,
            speedup,
            cache_hits: 0,
            cache_misses: batch_size,
            matched,
        }
    }

    fn report(cpus: usize, threads: usize, points: Vec<BatchPoint>) -> BatchBenchReport {
        BatchBenchReport {
            t: 8,
            threads,
            seed: 1,
            quick: false,
            cpus,
            points,
        }
    }

    #[test]
    fn json_round_trip() {
        let r = report(4, 4, vec![point(1, 1.0, true), point(8, 1.7, true)]);
        let json = serde_json::to_string(&r).unwrap();
        let back: BatchBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn divergence_fails_validation_everywhere() {
        let r = report(1, 1, vec![point(8, 1.0, false)]);
        assert!(r.validate(1.5).unwrap_err().contains("diverged"));
    }

    #[test]
    fn single_cpu_passes_on_correctness_alone() {
        let r = report(1, 1, vec![point(1, 1.0, true), point(8, 0.9, true)]);
        assert!(r.validate(1.5).is_ok());
    }

    #[test]
    fn multi_cpu_enforces_the_speedup_target() {
        let slow = report(8, 4, vec![point(8, 1.1, true)]);
        assert!(slow.validate(1.5).unwrap_err().contains("target"));
        let fast = report(8, 4, vec![point(8, 1.8, true)]);
        assert!(fast.validate(1.5).is_ok());
    }

    #[test]
    fn empty_report_is_invalid() {
        assert!(report(1, 1, vec![]).validate(1.5).is_err());
    }
}
