//! The `BENCH_swap.json` record shared by the `swap` hot-swap-under-fire
//! harness (writer) and the `bench_check` CI validator (reader).
//!
//! Like `BENCH_chaos.json` the record carries a `schema` tag
//! ([`SWAP_SCHEMA`]) so `bench_check` can dispatch on file contents
//! alone. It flattens the in-memory
//! `fast_bcnn::chaos::SwapChaosReport` into plain serializable fields
//! and keeps both halves of the acceptance evidence: the reconciliation
//! verdict computed at run time and the per-version request accounting
//! a reader needs to re-derive it.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The `schema` tag every swap record carries.
pub const SWAP_SCHEMA: &str = "swap-v1";

/// One deploy round of the campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapBenchRound {
    /// Round index.
    pub round: usize,
    /// `"rollout_good"` or `"rollout_bad"`.
    pub action: String,
    /// Model version deployed this round.
    pub deployed_version: u64,
    /// Requests offered this round.
    pub offered: usize,
    /// Requests that produced a prediction.
    pub ok: usize,
    /// Requests that failed with a typed error.
    pub failed: usize,
    /// Whether the canary verdict rolled the rollout back.
    pub rolled_back: bool,
    /// Whether the rollout was promoted.
    pub promoted: bool,
}

/// Per-version request accounting, flattened for JSON (keys of the
/// containing map are the decimal version numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapVersionCell {
    /// Requests routed to this version.
    pub requests: u64,
    /// Requests that produced a prediction.
    pub ok: u64,
    /// Requests that ended in a typed error.
    pub failed: u64,
    /// Requests served as canaries of an in-flight rollout.
    pub canary: u64,
}

/// The full `BENCH_swap.json` record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwapBenchReport {
    /// Always [`SWAP_SCHEMA`]; lets `bench_check` dispatch on content.
    pub schema: String,
    /// The campaign seed — replaying with it reproduces the run.
    pub seed: u64,
    /// Whether the quick (smoke) configuration ran; the full-soak
    /// floors in [`SwapBenchReport::validate`] only bind when false.
    pub quick: bool,
    /// Requests offered across all rounds.
    pub requests_total: usize,
    /// Requests that produced a prediction.
    pub ok_total: usize,
    /// Requests that failed with a typed error (crashing canaries only).
    pub failed_total: usize,
    /// Deploys staged.
    pub deploys: u64,
    /// Rollouts promoted.
    pub promotions: u64,
    /// Rollouts rolled back by the canary verdict.
    pub rollbacks: u64,
    /// Model version active after the campaign.
    pub final_version: u64,
    /// Per-version accounting (keys are decimal version numbers).
    pub version_requests: BTreeMap<String, SwapVersionCell>,
    /// The `version_requests{version}` telemetry counter deltas — must
    /// equal the accounting, request for request.
    pub version_request_counters: BTreeMap<String, u64>,
    /// Campaign deltas of the swap lifecycle counters.
    pub counters: BTreeMap<String, u64>,
    /// Intact fast-path responses compared bit-for-bit against a
    /// reference engine.
    pub compared_outputs: usize,
    /// Compared responses that differed — must be zero.
    pub mismatched_outputs: usize,
    /// Per-round summaries, in order.
    pub rounds: Vec<SwapBenchRound>,
    /// Whether outcome/accounting/counter reconciliation passed at run
    /// time.
    pub reconciled: bool,
    /// The first reconciliation failure, when `reconciled` is false.
    pub reconcile_error: Option<String>,
    /// Wall-clock of the campaign, nanoseconds.
    pub elapsed_ns: u64,
}

impl SwapBenchReport {
    /// Flattens an in-memory campaign report into the JSON record,
    /// stamping the reconciliation verdict.
    pub fn from_report(report: &fast_bcnn::chaos::SwapChaosReport, quick: bool) -> Self {
        let reconcile = report.reconcile();
        Self {
            schema: SWAP_SCHEMA.to_string(),
            seed: report.seed,
            quick,
            requests_total: report.requests_total,
            ok_total: report.ok_total,
            failed_total: report.failed_total,
            deploys: report.deploys,
            promotions: report.promotions,
            rollbacks: report.rollbacks,
            final_version: report.final_version,
            version_requests: report
                .version_requests
                .iter()
                .map(|(v, c)| {
                    (
                        v.to_string(),
                        SwapVersionCell {
                            requests: c.requests,
                            ok: c.ok,
                            failed: c.failed,
                            canary: c.canary,
                        },
                    )
                })
                .collect(),
            version_request_counters: report
                .version_request_counters
                .iter()
                .map(|(v, n)| (v.to_string(), *n))
                .collect(),
            counters: report.counters.clone(),
            compared_outputs: report.compared_outputs,
            mismatched_outputs: report.mismatched_outputs,
            rounds: report
                .rounds
                .iter()
                .map(|r| SwapBenchRound {
                    round: r.round,
                    action: r.action.clone(),
                    deployed_version: r.deployed_version,
                    offered: r.offered,
                    ok: r.ok,
                    failed: r.failed,
                    rolled_back: r.rolled_back,
                    promoted: r.promoted,
                })
                .collect(),
            reconciled: reconcile.is_ok(),
            reconcile_error: reconcile.err(),
            elapsed_ns: report.elapsed_ns,
        }
    }

    /// Validates the record for CI. Every run must have reconciled
    /// exactly, lost nothing untyped, kept all compared responses
    /// bit-identical, promoted every healthy rollout and rolled back
    /// every crashing one; a full (non `--quick`) campaign must
    /// additionally have offered ≥ 150 requests and exercised at least
    /// two promotions and two rollbacks.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a message.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SWAP_SCHEMA {
            return Err(format!(
                "schema `{}`, expected `{SWAP_SCHEMA}`",
                self.schema
            ));
        }
        if !self.reconciled {
            return Err(format!(
                "accounting did not reconcile: {}",
                self.reconcile_error.as_deref().unwrap_or("unknown")
            ));
        }
        if self.ok_total + self.failed_total != self.requests_total {
            return Err(format!(
                "ok {} + failed {} != offered {}",
                self.ok_total, self.failed_total, self.requests_total
            ));
        }
        if self.mismatched_outputs != 0 {
            return Err(format!(
                "{} of {} compared responses diverged bit-for-bit",
                self.mismatched_outputs, self.compared_outputs
            ));
        }
        if self.rounds.is_empty() {
            return Err("no deploy rounds".into());
        }
        for r in &self.rounds {
            match r.action.as_str() {
                "rollout_good" if !r.promoted || r.rolled_back => {
                    return Err(format!(
                        "healthy round {} was not promoted cleanly",
                        r.round
                    ));
                }
                "rollout_good" if r.failed != 0 => {
                    return Err(format!(
                        "healthy round {} lost {} requests",
                        r.round, r.failed
                    ));
                }
                "rollout_bad" if !r.rolled_back || r.promoted => {
                    return Err(format!(
                        "crashing round {} was not rolled back automatically",
                        r.round
                    ));
                }
                _ => {}
            }
        }
        if self.promotions + self.rollbacks != self.deploys {
            return Err(format!(
                "{} deploys but {} promotions + {} rollbacks",
                self.deploys, self.promotions, self.rollbacks
            ));
        }
        if !self.quick {
            if self.requests_total < 150 {
                return Err(format!(
                    "full campaign offered {} requests, floor is 150",
                    self.requests_total
                ));
            }
            if self.promotions < 2 || self.rollbacks < 2 {
                return Err(format!(
                    "full campaign exercised {} promotions / {} rollbacks, floor is 2 each",
                    self.promotions, self.rollbacks
                ));
            }
            if self.compared_outputs == 0 {
                return Err("full campaign never ran the bit-identity sweep".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(quick: bool) -> SwapBenchReport {
        SwapBenchReport {
            schema: SWAP_SCHEMA.to_string(),
            seed: 7,
            quick,
            requests_total: 192,
            ok_total: 180,
            failed_total: 12,
            deploys: 8,
            promotions: 4,
            rollbacks: 4,
            final_version: 8,
            version_requests: [(
                "1".to_string(),
                SwapVersionCell {
                    requests: 192,
                    ok: 180,
                    failed: 12,
                    canary: 90,
                },
            )]
            .into_iter()
            .collect(),
            version_request_counters: [("1".to_string(), 192u64)].into_iter().collect(),
            counters: [
                ("swap_deploys".to_string(), 8u64),
                ("swap_promotions".to_string(), 4),
                ("rollback_total".to_string(), 4),
            ]
            .into_iter()
            .collect(),
            compared_outputs: 120,
            mismatched_outputs: 0,
            rounds: vec![
                SwapBenchRound {
                    round: 0,
                    action: "rollout_good".into(),
                    deployed_version: 2,
                    offered: 24,
                    ok: 24,
                    failed: 0,
                    rolled_back: false,
                    promoted: true,
                },
                SwapBenchRound {
                    round: 1,
                    action: "rollout_bad".into(),
                    deployed_version: 3,
                    offered: 24,
                    ok: 18,
                    failed: 6,
                    rolled_back: true,
                    promoted: false,
                },
            ],
            reconciled: true,
            reconcile_error: None,
            elapsed_ns: 1,
        }
    }

    #[test]
    fn json_round_trip() {
        let r = record(false);
        let json = serde_json::to_string(&r).unwrap();
        let back: SwapBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn a_clean_full_campaign_passes() {
        assert!(record(false).validate().is_ok());
    }

    #[test]
    fn reconcile_failures_always_fail_validation() {
        let mut r = record(true);
        r.reconciled = false;
        r.reconcile_error = Some("version_requests counter is 3, accounting says 4".into());
        assert!(r.validate().unwrap_err().contains("reconcile"));
    }

    #[test]
    fn output_divergence_fails_validation() {
        let mut r = record(true);
        r.mismatched_outputs = 1;
        assert!(r.validate().unwrap_err().contains("diverged"));
    }

    #[test]
    fn unrolled_crashing_round_fails_validation() {
        let mut r = record(true);
        r.rounds[1].rolled_back = false;
        assert!(r.validate().unwrap_err().contains("rolled back"));
    }

    #[test]
    fn full_floors_do_not_bind_quick_runs() {
        let mut r = record(true);
        r.requests_total = 64;
        r.ok_total = 58;
        r.failed_total = 6;
        assert!(r.validate().is_ok());
        r.quick = false;
        assert!(r.validate().unwrap_err().contains("floor is 150"));
    }

    #[test]
    fn wrong_schema_tag_is_rejected() {
        let mut r = record(true);
        r.schema = "chaos-v1".into();
        assert!(r.validate().unwrap_err().contains("schema"));
    }
}
