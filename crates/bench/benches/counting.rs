//! Criterion benches for the prediction unit's dropped-nw-input counting:
//! the word-parallel packed kernel against the scalar per-bit reference,
//! on LeNet-5-sized and larger geometries.

use criterion::{criterion_group, criterion_main, Criterion};
use fbcnn_nn::Conv2d;
use fbcnn_predictor::{
    count_dropped_nw_inputs, count_dropped_nw_inputs_scalar, PolarityIndicators,
};
use fbcnn_tensor::{BitMask, Shape};
use std::hint::black_box;

fn seeded_conv(in_c: usize, out_c: usize, k: usize) -> Conv2d {
    let mut conv = Conv2d::new(in_c, out_c, k, 1, 0, true);
    let mut state = 3u64;
    for w in conv.weights_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *w = ((state >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0;
    }
    conv
}

fn bench_geometry(c: &mut Criterion, label: &str, conv: Conv2d, in_dim: usize) {
    let indicators = PolarityIndicators::profile_conv(&conv);
    let mask = BitMask::from_fn(Shape::new(conv.in_channels(), in_dim, in_dim), |i| {
        i % 3 == 0
    });
    let mut group = c.benchmark_group(label);
    group.bench_function("packed", |b| {
        b.iter(|| {
            black_box(count_dropped_nw_inputs(
                &conv,
                &indicators,
                black_box(&mask),
            ))
        });
    });
    group.bench_function("scalar", |b| {
        b.iter(|| {
            black_box(count_dropped_nw_inputs_scalar(
                &conv,
                &indicators,
                black_box(&mask),
            ))
        });
    });
    group.finish();
}

fn bench_counting(c: &mut Criterion) {
    // conv2 of LeNet-5: the paper's running example.
    bench_geometry(c, "counting_lenet_conv2", seeded_conv(6, 16, 5), 14);
    // A wider mid-network layer, VGG-ish channel counts.
    bench_geometry(c, "counting_wide_3x3", seeded_conv(32, 32, 3), 16);
}

criterion_group!(benches, bench_counting);
criterion_main!(benches);
