//! Criterion benches for Bernoulli bit generation (Table III's two
//! generators) and the prediction unit's binary-convolution counting.

use criterion::{criterion_group, criterion_main, Criterion};
use fast_bcnn::{Brng, SoftwareBernoulli};
use fbcnn_nn::Conv2d;
use fbcnn_predictor::{count_dropped_nw_inputs, PolarityIndicators};
use fbcnn_tensor::{BitMask, Shape};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("bernoulli_4096_bits");
    group.bench_function("lfsr_brng", |b| {
        b.iter(|| {
            let mut brng = Brng::new(0.3, 7);
            let mut ones = 0u32;
            for _ in 0..4096 {
                ones += u32::from(brng.next_bit());
            }
            black_box(ones)
        });
    });
    group.bench_function("software", |b| {
        b.iter(|| {
            let mut rng = SoftwareBernoulli::new(0.3, 7);
            let mut ones = 0u32;
            for _ in 0..4096 {
                ones += u32::from(rng.next_bit());
            }
            black_box(ones)
        });
    });
    group.finish();
}

fn bench_counting(c: &mut Criterion) {
    // A conv2-of-LeNet-sized counting job.
    let mut conv = Conv2d::new(6, 16, 5, 1, 0, true);
    let mut state = 3u64;
    for w in conv.weights_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *w = ((state >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0;
    }
    let indicators = PolarityIndicators::profile_conv(&conv);
    let mask = BitMask::from_fn(Shape::new(6, 14, 14), |i| i % 3 == 0);
    c.bench_function("count_dropped_nw_inputs_lenet_conv2", |b| {
        b.iter(|| {
            black_box(count_dropped_nw_inputs(
                &conv,
                &indicators,
                black_box(&mask),
            ))
        });
    });
}

criterion_group!(benches, bench_generators, bench_counting);
criterion_main!(benches);
