//! Criterion benches for the offline stage: Algorithm 1 threshold
//! optimization, workload extraction, and LeNet-5 training epochs.

use criterion::{criterion_group, criterion_main, Criterion};
use fast_bcnn::{synth_input, BayesianNetwork, ThresholdOptimizer, Workload};
use fbcnn_nn::data::SynthDigits;
use fbcnn_nn::models::ModelKind;
use fbcnn_nn::train::{self, TrainConfig};
use std::hint::black_box;

fn bench_threshold_optimization(c: &mut Criterion) {
    let bnet = BayesianNetwork::new(ModelKind::LeNet5.build(1), 0.3);
    let input = synth_input(bnet.network().input_shape(), 7);
    c.bench_function("algorithm1_lenet_t4", |b| {
        let opt = ThresholdOptimizer {
            samples: 4,
            ..ThresholdOptimizer::default()
        };
        b.iter(|| black_box(opt.optimize(&bnet, black_box(&input), 3)));
    });
}

fn bench_workload_build(c: &mut Criterion) {
    let bnet = BayesianNetwork::new(ModelKind::LeNet5.build(1), 0.3);
    let input = synth_input(bnet.network().input_shape(), 7);
    let thresholds = ThresholdOptimizer {
        samples: 2,
        ..ThresholdOptimizer::default()
    }
    .optimize(&bnet, &input, 3);
    c.bench_function("workload_build_lenet_t8", |b| {
        b.iter(|| black_box(Workload::build(&bnet, &input, &thresholds, 8, 3)));
    });
}

fn bench_training_epoch(c: &mut Criterion) {
    let data = SynthDigits::new(1).batch(0, 64);
    c.bench_function("lenet_train_epoch_64_images", |b| {
        b.iter_batched(
            || {
                let mut net = ModelKind::LeNet5.build(1);
                fbcnn_nn::init::he_uniform(&mut net, 1);
                net
            },
            |mut net| {
                train::train(
                    &mut net,
                    &data,
                    &TrainConfig {
                        epochs: 1,
                        ..TrainConfig::default()
                    },
                );
                black_box(net)
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_threshold_optimization, bench_workload_build, bench_training_epoch
}
criterion_main!(benches);
