//! Criterion benches for the convolution hot path: the naive reference
//! loop vs the im2col + cache-blocked workspace kernel vs the
//! channel-parallel variant.

use criterion::{criterion_group, criterion_main, Criterion};
use fbcnn_nn::{Conv2d, Workspace};
use fbcnn_tensor::{Shape, Tensor};
use std::hint::black_box;

fn seeded_conv(in_c: usize, out_c: usize, k: usize, pad: usize) -> Conv2d {
    let mut conv = Conv2d::new(in_c, out_c, k, 1, pad, true);
    let mut state = 17u64;
    for w in conv.weights_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        *w = ((state >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0;
    }
    conv
}

fn bench_geometry(c: &mut Criterion, label: &str, conv: Conv2d, in_dim: usize) {
    let input = Tensor::from_fn(
        Shape::new(conv.in_channels(), in_dim, in_dim),
        |ch, r, col| ((ch * 31 + r * 7 + col) % 13) as f32 / 6.0 - 1.0,
    );
    let mut group = c.benchmark_group(label);
    group.bench_function("naive", |b| {
        b.iter(|| black_box(conv.forward(black_box(&input))));
    });
    let mut ws = Workspace::new();
    group.bench_function("im2col_blocked", |b| {
        b.iter(|| black_box(conv.forward_ws(black_box(&input), &mut ws)));
    });
    let mut ws_par = Workspace::new();
    group.bench_function("parallel_4t", |b| {
        b.iter(|| black_box(conv.forward_parallel(black_box(&input), 4, &mut ws_par)));
    });
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    // conv2 of LeNet-5.
    bench_geometry(c, "conv_lenet_conv2", seeded_conv(6, 16, 5, 0), 14);
    // A VGG-ish 3x3 layer where the blocked kernel has room to work.
    bench_geometry(c, "conv_wide_3x3", seeded_conv(32, 64, 3, 1), 16);
}

criterion_group!(benches, bench_conv);
criterion_main!(benches);
