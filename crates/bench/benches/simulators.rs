//! Criterion benches for the cycle-model simulators: how fast each
//! hardware model replays a prebuilt workload (the figure harnesses call
//! these models hundreds of times across sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use fast_bcnn::{
    synth_input, BaselineSim, CnvlutinSim, Engine, EngineConfig, FastBcnnSim, HwConfig, IdealSim,
    SkipMode, Workload,
};
use fbcnn_nn::models::ModelKind;
use std::hint::black_box;

fn lenet_workload() -> Workload {
    let engine = Engine::new(EngineConfig {
        samples: 16,
        calibration_samples: 4,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    });
    let input = synth_input(engine.network().input_shape(), 7);
    engine.workload(&input)
}

fn bench_simulators(c: &mut Criterion) {
    let w = lenet_workload();
    let mut group = c.benchmark_group("simulators_lenet_t16");
    group.bench_function("baseline", |b| {
        let sim = BaselineSim::new(HwConfig::baseline());
        b.iter(|| black_box(sim.run(black_box(&w))));
    });
    group.bench_function("fast_bcnn_64", |b| {
        let sim = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both);
        b.iter(|| black_box(sim.run(black_box(&w))));
    });
    group.bench_function("cnvlutin", |b| {
        let sim = CnvlutinSim::new();
        b.iter(|| black_box(sim.run(black_box(&w))));
    });
    group.bench_function("ideal", |b| {
        let sim = IdealSim::new(HwConfig::fast_bcnn(64));
        b.iter(|| black_box(sim.run(black_box(&w))));
    });
    group.finish();
}

fn bench_design_space_sweep(c: &mut Criterion) {
    let w = lenet_workload();
    c.bench_function("design_space_sweep_lenet", |b| {
        b.iter(|| {
            for tm in [8, 16, 32, 64] {
                let sim = FastBcnnSim::new(HwConfig::fast_bcnn(tm), SkipMode::Both);
                black_box(sim.run(black_box(&w)));
            }
        });
    });
}

criterion_group!(benches, bench_simulators, bench_design_space_sweep);
criterion_main!(benches);
