//! Criterion bench for a full MC-dropout inference (T = 30) on
//! B-LeNet-5: the naive per-sample forward vs the workspace fast path vs
//! the multithreaded runner.

use criterion::{criterion_group, criterion_main, Criterion};
use fbcnn_bayes::{BayesianNetwork, McDropout};
use fbcnn_nn::models;
use fbcnn_tensor::{stats, Tensor};
use std::hint::black_box;

const T: usize = 30;
const SEED: u64 = 5;

/// The pre-workspace reference: `T` naive dense passes (what
/// `McDropout::run` did before the im2col fast path existed).
fn run_naive(bnet: &BayesianNetwork, input: &Tensor) -> Vec<Vec<f32>> {
    (0..T)
        .map(|t| {
            let masks = bnet.generate_masks(SEED, t);
            let run = bnet.forward_sample(input, &masks);
            stats::softmax(run.logits())
        })
        .collect()
}

fn bench_mc(c: &mut Criterion) {
    let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
    let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, col| {
        ((r * 5 + col) % 7) as f32 / 7.0
    });
    let runner = McDropout::new(T, SEED);
    let mut group = c.benchmark_group("mc_lenet5_t30");
    group.sample_size(10);
    group.bench_function("naive", |b| {
        b.iter(|| black_box(run_naive(&bnet, black_box(&input))));
    });
    group.bench_function("workspace", |b| {
        b.iter(|| black_box(runner.run(&bnet, black_box(&input))));
    });
    group.bench_function("parallel_4t", |b| {
        b.iter(|| black_box(runner.run_parallel(&bnet, black_box(&input), 4)));
    });
    group.finish();
}

criterion_group!(benches, bench_mc);
criterion_main!(benches);
