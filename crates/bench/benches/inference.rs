//! Criterion benches for the functional inference paths: one dense
//! MC-dropout sample vs one skipping sample.
//!
//! Expect near-parity, not the cycle-model speedups: the skipping path
//! must also run the prediction unit's nw-input counting, which the
//! hardware performs on parallel AND-gate lanes for free but software
//! pays serially — roughly one binary op per MAC of the following
//! layer. The performance result of the paper lives in the cycle-level
//! simulators (see the `simulators` bench and the figure harnesses);
//! this bench documents that the *functional* skipping path is not
//! paying an unreasonable software premium for its bit-exactness.

use criterion::{criterion_group, criterion_main, Criterion};
use fast_bcnn::{synth_input, Engine, EngineConfig, PredictiveInference};
use fbcnn_nn::models::ModelKind;
use std::hint::black_box;

fn bench_sample_inference(c: &mut Criterion) {
    let engine = Engine::new(EngineConfig {
        samples: 8,
        calibration_samples: 4,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    });
    let input = synth_input(engine.network().input_shape(), 3);
    let bnet = engine.bayesian_network();
    let masks = bnet.generate_masks(5, 0);

    let mut group = c.benchmark_group("lenet_sample_inference");
    group.bench_function("dense", |b| {
        b.iter(|| black_box(bnet.forward_sample(black_box(&input), &masks)));
    });
    let pe = PredictiveInference::new(bnet, &input, engine.thresholds().clone());
    group.bench_function("skipping", |b| {
        b.iter(|| black_box(pe.run_sample(black_box(&masks))));
    });
    group.finish();
}

fn bench_pre_inference(c: &mut Criterion) {
    let engine = Engine::new(EngineConfig {
        samples: 4,
        calibration_samples: 2,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    });
    let input = synth_input(engine.network().input_shape(), 9);
    c.bench_function("lenet_pre_inference", |b| {
        b.iter(|| {
            black_box(
                engine
                    .bayesian_network()
                    .forward_deterministic(black_box(&input)),
            )
        });
    });
}

criterion_group!(benches, bench_sample_inference, bench_pre_inference);
criterion_main!(benches);
