//! On-chip buffer sizing — the paper's §V-B1/§V-B2 storage plan.
//!
//! Each PE owns:
//!
//! * an **input buffer** duplicated per PE (the Eq. 7 overhead that makes
//!   feature-map parallelism skip-friendly), holding `Tn` channels of the
//!   input feature map at `Tn × 32` bits per entry;
//! * a **weight buffer** for the kernel(s) it is currently computing;
//! * an **output buffer** holding one sample's outputs for its channels,
//!   flushed to DRAM when full (with 1-bit zero indicators accompanying
//!   each value, §V-B1);
//! * prediction-unit **mini-buffers**: a mask buffer of at most `R·C`
//!   bits and an indicator buffer of `Tm'` bits per entry (1/32 of the
//!   weight buffer's width).
//!
//! [`plan`] sizes all of them for a workload's worst-case layer and
//! checks the plan against a BRAM budget.

use crate::{HwConfig, LayerWork, Workload};
use serde::{Deserialize, Serialize};

/// Bits per BRAM-36 block usable as storage.
const BRAM36_BITS: u64 = 36 * 1024;

/// The per-PE buffer plan for a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferPlan {
    /// Input-buffer bits per PE (Tn channels × worst-case plane × 32 b).
    pub input_bits: u64,
    /// Weight-buffer bits per PE (worst-case kernel × 32 b).
    pub weight_bits: u64,
    /// Output-buffer bits per PE (worst-case output plane × 32 b + zero
    /// indicators).
    pub output_bits: u64,
    /// Prediction mask-buffer bits per PE (worst-case `R·C`).
    pub mask_bits: u64,
    /// Indicator-buffer bits per PE.
    pub indicator_bits: u64,
}

impl BufferPlan {
    /// Total bits per PE.
    pub fn total_bits_per_pe(&self) -> u64 {
        self.input_bits + self.weight_bits + self.output_bits + self.mask_bits + self.indicator_bits
    }

    /// BRAM-36 blocks needed per PE (each buffer rounds up separately —
    /// the granularity effect the paper notes for the 1 KB mask buffer).
    pub fn brams_per_pe(&self) -> u64 {
        [
            self.input_bits,
            self.weight_bits,
            self.output_bits,
            self.mask_bits,
            self.indicator_bits,
        ]
        .iter()
        .map(|b| b.div_ceil(BRAM36_BITS))
        .sum()
    }

    /// BRAM-36 blocks for the whole PE array.
    pub fn total_brams(&self, cfg: &HwConfig) -> u64 {
        self.brams_per_pe() * cfg.tm() as u64
    }

    /// Whether the plan fits a device budget (in BRAM-36 blocks).
    pub fn fits(&self, cfg: &HwConfig, budget_brams: u64) -> bool {
        self.total_brams(cfg) <= budget_brams
    }
}

fn worst<T: Ord + Copy + Default>(items: impl Iterator<Item = T>) -> T {
    items.max().unwrap_or_default()
}

/// Sizes the per-PE buffers for a workload on a configuration.
pub fn plan(w: &Workload, cfg: &HwConfig) -> BufferPlan {
    let input_plane = worst(w.layers.iter().map(input_plane_of));
    let weight_words = worst(w.layers.iter().map(|l| (l.k * l.k * l.n) as u64));
    let out_plane = worst(w.layers.iter().map(|l| l.plane() as u64));
    BufferPlan {
        input_bits: cfg.tn() as u64 * input_plane * 32,
        weight_bits: weight_words * 32,
        // 32-bit value + 1-bit zero indicator per output neuron.
        output_bits: out_plane * 33,
        mask_bits: out_plane,
        // One entry per counting lane (1-bit indicators, Tm' per entry).
        indicator_bits: (cfg.counting_lanes() as u64).max(1) * weight_words.div_ceil(32).max(1),
    }
}

/// The input plane a layer reads (its own plane scaled back up by
/// stride; exact for the stride-1/pool-2 topologies in the model zoo).
fn input_plane_of(l: &LayerWork) -> u64 {
    // Upstream spatial extent: output plane × stride² is not recorded in
    // LayerWork; for the stride-1 convolutions of all three models the
    // input plane equals the output plane (same-padding) or slightly
    // exceeds it (valid padding). Use output plane + kernel fringe.
    let side = (l.plane() as f64).sqrt().ceil() as u64 + l.k as u64;
    side * side
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::VIRTEX7_VC709;
    use fbcnn_bayes::BayesianNetwork;
    use fbcnn_nn::models;
    use fbcnn_predictor::ThresholdSet;
    use fbcnn_tensor::Tensor;

    fn lenet_workload() -> Workload {
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
        let input = Tensor::full(bnet.network().input_shape(), 0.4);
        Workload::build(
            &bnet,
            &input,
            &ThresholdSet::never_predict(bnet.network().len()),
            2,
            1,
        )
    }

    #[test]
    fn lenet_plan_fits_the_vc709_easily() {
        let w = lenet_workload();
        let cfg = HwConfig::fast_bcnn(64);
        let p = plan(&w, &cfg);
        assert!(p.total_bits_per_pe() > 0);
        assert!(
            p.fits(&cfg, VIRTEX7_VC709.brams),
            "LeNet needs {} BRAMs",
            p.total_brams(&cfg)
        );
    }

    #[test]
    fn wider_tn_needs_bigger_input_buffers() {
        let w = lenet_workload();
        let narrow = plan(&w, &HwConfig::fast_bcnn(64)); // Tn = 4
        let wide = plan(&w, &HwConfig::fast_bcnn(8)); // Tn = 32
        assert!(wide.input_bits > narrow.input_bits);
    }

    #[test]
    fn mask_buffer_is_one_bit_per_neuron() {
        let w = lenet_workload();
        let p = plan(&w, &HwConfig::fast_bcnn(64));
        // LeNet's biggest plane is 28x28 = 784 bits — the paper's "at
        // most Rl x Cl bits".
        assert_eq!(p.mask_bits, 784);
        // And it still rounds up to a whole BRAM (the paper's observed
        // BRAM overhead for a tiny buffer).
        assert!(p.brams_per_pe() >= 5);
    }

    #[test]
    fn buffer_granularity_rounds_per_buffer() {
        let p = BufferPlan {
            input_bits: 1,
            weight_bits: 1,
            output_bits: 1,
            mask_bits: 1,
            indicator_bits: 1,
        };
        // Five one-bit buffers still cost five BRAMs.
        assert_eq!(p.brams_per_pe(), 5);
    }
}
