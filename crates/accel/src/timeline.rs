//! Pipeline timelines: per-layer start/end times of the convolution and
//! prediction units — the observability layer behind the Eq. 8 analysis.
//!
//! [`FastBcnnSim::timeline`](crate::FastBcnnSim::timeline) replays the
//! same two-resource schedule as the cycle model and records every
//! interval, so a stall is visible as a gap between a layer's ready time
//! and its start.

use crate::{FastBcnnSim, Workload};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One scheduled interval on a unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interval {
    /// Layer label.
    pub layer: String,
    /// Sample index the interval belongs to.
    pub sample: usize,
    /// Start cycle (global timeline).
    pub start: u64,
    /// End cycle.
    pub end: u64,
}

/// The schedule of a Fast-BCNN run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    /// Convolution-unit intervals in execution order.
    pub conv: Vec<Interval>,
    /// Prediction-unit intervals (counting jobs) in execution order.
    pub prediction: Vec<Interval>,
    /// Total cycles (including the pre-inference offset).
    pub total_cycles: u64,
    /// Cycles of the dropout-free pre-inference that precede sample 0.
    pub pre_inference_cycles: u64,
}

impl Timeline {
    /// Renders the first `samples` samples as a proportional text chart.
    pub fn render_text(&self, samples: usize, width: usize) -> String {
        let end = self
            .conv
            .iter()
            .chain(&self.prediction)
            .filter(|iv| iv.sample < samples)
            .map(|iv| iv.end)
            .max()
            .unwrap_or(1);
        let start = self.pre_inference_cycles;
        let span = (end - start).max(1);
        let scale = |c: u64| {
            (((c.saturating_sub(start)) as f64 / span as f64) * width as f64).round() as usize
        };
        let mut out = String::new();
        let _ = writeln!(out, "cycles {start}..{end} (one row per layer interval)");
        for (name, list) in [("conv", &self.conv), ("pred", &self.prediction)] {
            for iv in list.iter().filter(|iv| iv.sample < samples) {
                let a = scale(iv.start).min(width);
                let b = scale(iv.end).clamp(a + 1, width + 1);
                let _ = writeln!(
                    out,
                    "{name} s{} {:>10} |{}{}{}|",
                    iv.sample,
                    iv.layer,
                    " ".repeat(a),
                    "#".repeat(b - a),
                    " ".repeat(width + 1 - b),
                );
            }
        }
        out
    }
}

impl FastBcnnSim {
    /// Replays the schedule and records the per-layer intervals of both
    /// units. The resulting [`Timeline::total_cycles`] matches
    /// [`FastBcnnSim::run`] exactly.
    pub fn timeline(&self, w: &Workload) -> Timeline {
        let (conv, prediction, total_cycles, pre) = self.schedule(w);
        Timeline {
            conv,
            prediction,
            total_cycles,
            pre_inference_cycles: pre,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HwConfig, SkipMode};
    use fbcnn_bayes::BayesianNetwork;
    use fbcnn_nn::models;
    use fbcnn_predictor::ThresholdOptimizer;
    use fbcnn_tensor::Tensor;

    fn workload() -> Workload {
        let bnet = BayesianNetwork::new(models::lenet5(3), 0.3);
        let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
            ((r * 5 + c) % 7) as f32 / 7.0
        });
        let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        Workload::build(&bnet, &input, &thresholds, 3, 3)
    }

    #[test]
    fn timeline_total_matches_run() {
        let w = workload();
        let sim = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both);
        let report = sim.run(&w);
        let tl = sim.timeline(&w);
        assert_eq!(tl.total_cycles, report.total_cycles);
        assert_eq!(tl.pre_inference_cycles, report.pre_inference_cycles);
    }

    #[test]
    fn conv_intervals_are_ordered_and_contiguous_per_unit() {
        let w = workload();
        let sim = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both);
        let tl = sim.timeline(&w);
        assert_eq!(tl.conv.len(), w.layers.len() * w.t());
        for pair in tl.conv.windows(2) {
            assert!(pair[0].end <= pair[1].start, "conv intervals overlap");
        }
        for pair in tl.prediction.windows(2) {
            assert!(pair[0].end <= pair[1].start, "prediction jobs overlap");
        }
        // A layer consuming prediction bits never starts before its job
        // completes.
        for p in &tl.prediction {
            let consumer = tl
                .conv
                .iter()
                .find(|c| c.sample == p.sample && c.layer == p.layer)
                .expect("every prediction job has a consumer");
            assert!(
                consumer.start >= p.end,
                "{} sample {} started before its prediction finished",
                p.layer,
                p.sample
            );
        }
    }

    #[test]
    fn render_text_produces_rows() {
        let w = workload();
        let sim = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both);
        let text = sim.timeline(&w).render_text(1, 40);
        assert!(text.lines().count() > 3);
        assert!(text.contains("conv s0"));
        assert!(text.contains('#'));
    }
}
