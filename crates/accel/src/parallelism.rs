//! The paper's §IV-B skip-friendly parallelism analysis.
//!
//! Skipping requires each PE to proceed independently, which forces
//! per-PE buffering of whatever the PEs would otherwise share:
//!
//! * **Synapse parallelism** (`<Ti, Tj>`, systolic): cannot skip at all —
//!   an input activation flowing through the array contributes to many
//!   output neurons, so computations tied to one invalid neuron cannot
//!   be abandoned.
//! * **Neuron parallelism** (`<Tr, Tc>`): every PE needs its own weight
//!   buffer; on-chip weight storage grows by `Tr·Tc − 1` (Eq. 6).
//! * **Feature-map parallelism** (`<Tm, Tn>`): every PE needs its own
//!   input buffer; on-chip input storage grows by `Tm − 1` (Eq. 7) —
//!   the cheaper option for equal compute (`Tr·Tc = Tm·Tn`), which is
//!   why Fast-BCNN adopts it.

use serde::{Deserialize, Serialize};

/// The three parallelism families of §IV-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParallelismKind {
    /// `<Ti, Tj>` — kernel-position unrolling in a systolic array.
    Synapse,
    /// `<Tr, Tc>` — output-position unrolling.
    Neuron,
    /// `<Tm, Tn>` — output-channel/input-channel unrolling (Fast-BCNN's
    /// choice).
    FeatureMap,
}

impl ParallelismKind {
    /// Whether the dataflow can abandon all computations of an invalid
    /// output neuron.
    pub fn supports_neuron_skipping(&self) -> bool {
        !matches!(self, ParallelismKind::Synapse)
    }
}

/// Relative on-chip buffer duplication required to support skipping
/// under neuron parallelism: `(K²·M·Tr·Tc − K²·M) / (K²·M) = Tr·Tc − 1`
/// (Eq. 6).
pub fn neuron_parallelism_buffer_overhead(tr: usize, tc: usize) -> usize {
    tr * tc - 1
}

/// Relative on-chip buffer duplication required to support skipping
/// under feature-map parallelism: `(W·H·Tn·Tm − W·H·Tn) / (W·H·Tn)
/// = Tm − 1` (Eq. 7).
pub fn feature_map_parallelism_buffer_overhead(tm: usize) -> usize {
    tm - 1
}

/// Compares the two skippable parallelisms at equal compute
/// (`Tr·Tc = Tm·Tn`) and returns the overhead ratio
/// `neuron / feature-map` — `Tn` when the budgets match, always > 1 for
/// `Tn > 1`.
pub fn overhead_ratio(tm: usize, tn: usize) -> f64 {
    let neuron = neuron_parallelism_buffer_overhead(tm, tn) as f64;
    let feature = feature_map_parallelism_buffer_overhead(tm) as f64;
    neuron / feature
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq6_and_eq7_match_the_paper() {
        // The paper's running example: 256 MACs.
        assert_eq!(neuron_parallelism_buffer_overhead(16, 16), 255);
        assert_eq!(feature_map_parallelism_buffer_overhead(64), 63);
        // Same compute, 4x less duplication for feature-map parallelism
        // at <Tm=64, Tn=4>.
        let ratio = overhead_ratio(64, 4);
        assert!(ratio > 4.0, "ratio {ratio}");
    }

    #[test]
    fn feature_map_always_cheaper_at_equal_compute() {
        for (tm, tn) in [(8, 32), (16, 16), (32, 8), (64, 4)] {
            assert!(
                feature_map_parallelism_buffer_overhead(tm)
                    < neuron_parallelism_buffer_overhead(tm, tn),
                "<{tm},{tn}>"
            );
        }
    }

    #[test]
    fn synapse_parallelism_cannot_skip() {
        assert!(!ParallelismKind::Synapse.supports_neuron_skipping());
        assert!(ParallelismKind::Neuron.supports_neuron_skipping());
        assert!(ParallelismKind::FeatureMap.supports_neuron_skipping());
    }
}
