#![warn(missing_docs)]

//! Cycle-level models of the Fast-BCNN FPGA accelerator and its
//! comparison points.
//!
//! The paper's speedup and energy numbers derive from counted cycles of a
//! fixed-latency feature-map-parallel dataflow plus an XPE energy
//! estimate. This crate reproduces both as deterministic functions of the
//! workload (see DESIGN.md §2 and §4 for the substitution argument):
//!
//! * [`HwConfig`] — the `<Tm, Tn>` design space of Table I;
//! * [`Workload`] — everything the cycle models need, extracted once per
//!   `(network, input, drop rate, thresholds)` and reused across every
//!   hardware configuration;
//! * [`FastBcnnSim`] — the Fast-BCNN accelerator (per-PE channel
//!   scheduling, skip engine, first-layer shortcut, prediction-unit
//!   overlap with the Eq. 8 stall check, central predictor), with the
//!   [`SkipMode`] ablations FB-d / FB-u;
//! * [`BaselineSim`] — the same parallelism without skipping;
//! * [`CnvlutinSim`] — an input-sparsity-only skipper (zero inputs,
//!   including dropout-induced ones; blind to output neurons and to the
//!   first layer's dense inputs);
//! * [`IdealSim`] — every saved computation converts into speedup;
//! * [`EnergyModel`] — per-operation energies and per-module static
//!   power;
//! * [`resources`] — the FPGA LUT/FF/BRAM estimator behind Table II.
//!
//! # Examples
//!
//! ```
//! use fbcnn_accel::{BaselineSim, FastBcnnSim, HwConfig, SkipMode, Workload};
//! use fbcnn_bayes::BayesianNetwork;
//! use fbcnn_nn::models;
//! use fbcnn_predictor::ThresholdOptimizer;
//! use fbcnn_tensor::Tensor;
//!
//! let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
//! let input = Tensor::full(bnet.network().input_shape(), 0.4);
//! let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 7);
//! let workload = Workload::build(&bnet, &input, &thresholds, 4, 7);
//!
//! let base = BaselineSim::new(HwConfig::baseline()).run(&workload);
//! let fast = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both).run(&workload);
//! assert!(fast.total_cycles < base.total_cycles);
//! ```

mod baseline;
pub mod buffers;
mod cnvlutin;
mod config;
mod energy;
mod fastbcnn;
mod ideal;
pub mod parallelism;
mod report;
pub mod resources;
pub mod timeline;
mod workload;

pub use baseline::BaselineSim;
pub use cnvlutin::CnvlutinSim;
pub use config::{HwConfig, SkipMode};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use fastbcnn::FastBcnnSim;
pub use ideal::IdealSim;
pub use report::{LayerReport, RunReport};
pub use workload::{LayerSkips, LayerWork, SampleSkips, Workload};
