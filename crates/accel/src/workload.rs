use fbcnn_bayes::BayesianNetwork;
use fbcnn_nn::{NodeId, Op};
use fbcnn_predictor::{build_skip_maps, PolarityIndicators, SkipStats, ThresholdSet};
use fbcnn_tensor::{BitMask, Shape, Tensor};
use serde::{Deserialize, Serialize};

/// Static description of one convolution layer, as seen by the cycle
/// models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWork {
    /// Graph node id.
    pub node: NodeId,
    /// Layer label (e.g. `"conv2_1"`).
    pub label: String,
    /// Kernel size `K`.
    pub k: usize,
    /// Input channels `N`.
    pub n: usize,
    /// Output channels `M`.
    pub m: usize,
    /// Output feature-map shape.
    pub out_shape: Shape,
    /// Whether the layer's inputs carry dropout. `false` means the layer
    /// sees identical inputs in every sample, enabling the first-layer
    /// shortcut.
    pub upstream_dropout: bool,
}

impl LayerWork {
    /// Output positions per channel (`R × C`).
    pub fn plane(&self) -> usize {
        self.out_shape.plane()
    }

    /// Total output neurons (`M × R × C`).
    pub fn neurons(&self) -> usize {
        self.out_shape.len()
    }

    /// PE cycles to compute one neuron: `K² · ⌈N/Tn⌉`.
    pub fn cycles_per_neuron(&self, tn: usize) -> u64 {
        (self.k * self.k * self.n.div_ceil(tn)) as u64
    }
}

/// Per-sample, per-layer skip information.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSkips {
    /// Dropped neurons per output channel.
    pub dropped_per_channel: Vec<u32>,
    /// Predicted-unaffected neurons per output channel.
    pub predicted_per_channel: Vec<u32>,
    /// Union (skip-engine decisions) per output channel.
    pub skipped_per_channel: Vec<u32>,
    /// Aggregate counts.
    pub stats: SkipStats,
    /// Non-zero fraction of each *input* channel as seen by an
    /// input-sparsity skipper (Cnvlutin): the *naturally* zero
    /// activations. The paper notes Cnvlutin is "oblivious of dropped
    /// neurons" — its zero-compressed stream is encoded at ReLU time,
    /// before the dropout multiply — so dropout-induced zeros do not
    /// shrink its work.
    pub input_channel_density: Vec<f32>,
}

/// All per-layer skip info of one sample inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleSkips {
    /// Aligned with [`Workload::layers`].
    pub per_layer: Vec<LayerSkips>,
}

/// Everything the cycle models need, extracted once per
/// `(network, input, drop rate, thresholds)` and reused across hardware
/// configurations — the expensive functional passes run exactly once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Model name (for reports).
    pub model_name: String,
    /// Convolution layers in execution order.
    pub layers: Vec<LayerWork>,
    /// Dense layers as `(in_features, out_features)` pairs (a small,
    /// skip-free tail of the computation).
    pub dense: Vec<(usize, usize)>,
    /// Per-sample skip data (`T` entries).
    pub samples: Vec<SampleSkips>,
}

impl Workload {
    /// Extracts the workload: one pre-inference plus `t` exact dropout
    /// passes, with skip maps built from the masks, the pre-inference
    /// zero index and `thresholds`.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or the input shape mismatches the network.
    pub fn build(
        bnet: &BayesianNetwork,
        input: &Tensor,
        thresholds: &ThresholdSet,
        t: usize,
        seed: u64,
    ) -> Self {
        assert!(t > 0, "workload needs at least one sample");
        let net = bnet.network();
        let indicators = PolarityIndicators::from_network(net);
        let pre = bnet.forward_deterministic(input);
        let zero_masks: Vec<Option<BitMask>> = net
            .nodes()
            .iter()
            .map(|n| {
                n.layer()
                    .filter(|l| l.is_conv())
                    .map(|_| pre.activations[n.id().0].zero_mask())
            })
            .collect();

        // Static layer descriptions. `upstream_dropout` is structural, so
        // probe it with an arbitrary mask set.
        let probe_masks = bnet.generate_masks(seed, 0);
        let layers: Vec<LayerWork> = net
            .conv_nodes()
            .into_iter()
            .map(|node| {
                let conv = net
                    .node(node)
                    .layer()
                    .and_then(|l| l.as_conv())
                    .expect("conv node");
                LayerWork {
                    node,
                    label: net.node(node).label().to_string(),
                    k: conv.kernel_size(),
                    n: conv.in_channels(),
                    m: conv.out_channels(),
                    out_shape: net.shape(node),
                    upstream_dropout: fbcnn_predictor::input_drop_mask(net, &probe_masks, node)
                        .is_some(),
                }
            })
            .collect();

        let dense: Vec<(usize, usize)> = net
            .nodes()
            .iter()
            .filter_map(|n| match n.op() {
                Op::Layer(fbcnn_nn::Layer::Dense(d)) => Some((d.in_features(), d.out_features())),
                _ => None,
            })
            .collect();

        // Per-layer natural input densities (dropout-free) are
        // sample-independent; compute them once.
        let densities: Vec<Vec<f32>> = layers
            .iter()
            .map(|lw| {
                let upstream = net.node(lw.node).inputs()[0];
                let in_act = &pre.activations[upstream.0];
                let in_plane = in_act.shape().plane();
                (0..lw.n)
                    .map(|ch| {
                        let nnz = in_act.channel(ch).iter().filter(|&&v| v != 0.0).count();
                        nnz as f32 / in_plane as f32
                    })
                    .collect()
            })
            .collect();

        let samples = (0..t)
            .map(|s| {
                let masks = bnet.generate_masks(seed, s);
                let maps = build_skip_maps(net, &masks, &zero_masks, &indicators, thresholds);
                let per_layer = layers
                    .iter()
                    .zip(&densities)
                    .map(|(lw, density)| {
                        let map = maps[lw.node.0].as_ref().expect("conv skip map");
                        let plane = lw.plane();
                        let mut dropped = vec![0u32; lw.m];
                        let mut predicted = vec![0u32; lw.m];
                        let mut skipped = vec![0u32; lw.m];
                        for i in map.dropped.iter_set() {
                            dropped[i / plane] += 1;
                        }
                        for i in map.predicted.iter_set() {
                            predicted[i / plane] += 1;
                        }
                        for i in map.skip.iter_set() {
                            skipped[i / plane] += 1;
                        }
                        LayerSkips {
                            dropped_per_channel: dropped,
                            predicted_per_channel: predicted,
                            skipped_per_channel: skipped,
                            stats: map.stats(),
                            input_channel_density: density.clone(),
                        }
                    })
                    .collect();
                SampleSkips { per_layer }
            })
            .collect();

        Self {
            model_name: net.name().to_string(),
            layers,
            dense,
            samples,
        }
    }

    /// Number of sample inferences `T`.
    pub fn t(&self) -> usize {
        self.samples.len()
    }

    /// Total convolution output neurons of one pass.
    pub fn conv_neurons_per_pass(&self) -> u64 {
        self.layers.iter().map(|l| l.neurons() as u64).sum()
    }

    /// Aggregate skip statistics over all samples and layers.
    pub fn total_skip_stats(&self) -> SkipStats {
        let mut total = SkipStats::default();
        for s in &self.samples {
            for l in &s.per_layer {
                total.absorb(l.stats);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbcnn_nn::models;
    use fbcnn_predictor::ThresholdOptimizer;

    fn workload() -> Workload {
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
        let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
            ((r * 5 + c * 3) % 9) as f32 / 9.0
        });
        let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        Workload::build(&bnet, &input, &thresholds, 3, 3)
    }

    #[test]
    fn layer_inventory_matches_lenet() {
        let w = workload();
        assert_eq!(w.layers.len(), 3);
        assert_eq!(w.layers[0].label, "conv1");
        assert!(
            !w.layers[0].upstream_dropout,
            "layer 1 has no input dropout"
        );
        assert!(w.layers[1].upstream_dropout);
        assert!(w.layers[2].upstream_dropout);
        assert_eq!(w.dense, vec![(120, 84), (84, 10)]);
        assert_eq!(w.t(), 3);
    }

    #[test]
    fn per_channel_counts_sum_to_stats() {
        let w = workload();
        for sample in &w.samples {
            for (lw, ls) in w.layers.iter().zip(&sample.per_layer) {
                assert_eq!(ls.dropped_per_channel.len(), lw.m);
                assert_eq!(
                    ls.dropped_per_channel.iter().sum::<u32>() as usize,
                    ls.stats.dropped
                );
                assert_eq!(
                    ls.predicted_per_channel.iter().sum::<u32>() as usize,
                    ls.stats.predicted
                );
                assert_eq!(
                    ls.skipped_per_channel.iter().sum::<u32>() as usize,
                    ls.stats.skipped
                );
                for m in 0..lw.m {
                    assert!(ls.skipped_per_channel[m] as usize <= lw.plane());
                }
            }
        }
    }

    #[test]
    fn input_densities_are_fractions() {
        let w = workload();
        for sample in &w.samples {
            for (lw, ls) in w.layers.iter().zip(&sample.per_layer) {
                assert_eq!(ls.input_channel_density.len(), lw.n);
                assert!(ls
                    .input_channel_density
                    .iter()
                    .all(|&d| (0.0..=1.0).contains(&d)));
            }
        }
        // The very first layer sees the (mostly dense) image.
        let first = &w.samples[0].per_layer[0];
        let mean: f32 = first.input_channel_density.iter().sum::<f32>()
            / first.input_channel_density.len() as f32;
        assert!(mean > 0.5, "image density {mean} unexpectedly low");
    }

    #[test]
    fn cycles_per_neuron_formula() {
        let w = workload();
        // conv2: K=5, N=6, Tn=4 -> 25 * 2 = 50.
        assert_eq!(w.layers[1].cycles_per_neuron(4), 50);
        // conv1: K=5, N=1 -> 25 * 1.
        assert_eq!(w.layers[0].cycles_per_neuron(4), 25);
    }

    #[test]
    fn total_stats_aggregates_everything() {
        let w = workload();
        let total = w.total_skip_stats();
        assert_eq!(total.total as u64, w.conv_neurons_per_pass() * w.t() as u64);
        assert!(total.skip_rate() > 0.2);
    }
}
