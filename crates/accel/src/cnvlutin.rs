use crate::baseline::{dense_fc_cycles, dense_fc_energy, dram_words_per_pass};
use crate::{EnergyBreakdown, EnergyModel, HwConfig, LayerReport, RunReport, Workload};
use fbcnn_tensor::stats::ceil_div;

/// A Cnvlutin-style input-sparsity skipper (paper §VI-A: the original
/// design scaled to 8×8 sub-units with 4 synapse lanes — 64 filters in
/// parallel, 4 input lanes each, the same 256-MAC budget).
///
/// Cnvlutin removes multiplications whose *input activation* is zero —
/// including zeros created by dropout — but it cannot predetermine output
/// neurons, so every output is still produced, and the densely-valued
/// first layer gains nothing. Lanes process disjoint input-channel
/// groups and synchronize per output window, so the window latency is the
/// *maximum* lane occupancy — modeled from the per-channel non-zero
/// densities recorded in the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CnvlutinSim {
    filters: usize,
    lanes: usize,
    energy: EnergyModel,
}

impl Default for CnvlutinSim {
    fn default() -> Self {
        Self::new()
    }
}

impl CnvlutinSim {
    /// The scaled configuration of the paper's comparison (64 filters ×
    /// 4 lanes = 256 MACs).
    pub fn new() -> Self {
        Self {
            filters: 64,
            lanes: 4,
            energy: EnergyModel::default(),
        }
    }

    /// Overrides the energy model.
    pub fn with_energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Equivalent `<Tm, Tn>` view of this configuration.
    pub fn equivalent_config(&self) -> HwConfig {
        HwConfig::fast_bcnn(self.filters)
    }

    /// Simulates `T` input-sparsity-skipping sample inferences (no
    /// pre-inference — Cnvlutin has no use for one).
    pub fn run(&self, w: &Workload) -> RunReport {
        let _span =
            fbcnn_telemetry::span_with("sim_run", || vec![("design".into(), "cnvlutin".into())]);
        let e = &self.energy;
        let mut layers: Vec<LayerReport> = w
            .layers
            .iter()
            .map(|lw| LayerReport {
                label: lw.label.clone(),
                ..Default::default()
            })
            .collect();

        let mut total_cycles = 0u64;
        let mut macs_performed = 0f64;
        let mut outputs = 0f64;

        for sample in &w.samples {
            for (i, (lw, ls)) in w.layers.iter().zip(&sample.per_layer).enumerate() {
                // Split input channels into `lanes` contiguous groups and
                // compute each group's expected non-zero work per window.
                let group = ceil_div(lw.n, self.lanes);
                let k2 = (lw.k * lw.k) as f64;
                let mut max_group_work = 0f64;
                let mut total_density = 0f64;
                for g in 0..self.lanes {
                    let lo = g * group;
                    if lo >= lw.n {
                        break;
                    }
                    let hi = ((g + 1) * group).min(lw.n);
                    let d: f64 = ls.input_channel_density[lo..hi]
                        .iter()
                        .map(|&v| v as f64)
                        .sum();
                    max_group_work = max_group_work.max(d);
                    total_density += d;
                }
                // Cycles per output window: the slowest lane's non-zero
                // inputs, at least one dispatch cycle.
                let window_cycles = (k2 * max_group_work).ceil().max(1.0) as u64;
                let cycles =
                    ceil_div(lw.m, self.filters) as u64 * lw.plane() as u64 * window_cycles;
                layers[i].cycles += cycles;
                layers[i].computed_neurons += lw.neurons() as u64;
                total_cycles += cycles;
                // MACs actually executed: non-zero inputs only.
                macs_performed += lw.neurons() as f64 * k2 * total_density;
            }
            total_cycles += dense_fc_cycles(&w.dense, &self.equivalent_config());
            outputs += (w.conv_neurons_per_pass()
                + w.dense.iter().map(|&(_, o)| o as u64).sum::<u64>())
                as f64;
        }

        let fc_energy = dense_fc_energy(&w.dense, e) * w.t() as f64;
        let conv_energy = macs_performed * e.e_mac
            + outputs * e.e_output
            + fc_energy
            + total_cycles as f64 * self.filters as f64 * e.p_static_pe
            // Offset/indexing machinery for the sparse format: a small
            // per-nonzero-access overhead.
            + macs_performed * 0.02;
        let dram = dram_words_per_pass(w) as f64 * w.t() as f64 * e.e_dram_word;

        RunReport {
            name: "cnvlutin".into(),
            model_name: w.model_name.clone(),
            t: w.t(),
            pre_inference_cycles: 0,
            total_cycles,
            layers,
            energy: EnergyBreakdown {
                conv: conv_energy,
                prediction: 0.0,
                central: 0.0,
                dram,
            },
        }
        .recorded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BaselineSim, FastBcnnSim, SkipMode};
    use fbcnn_bayes::BayesianNetwork;
    use fbcnn_nn::models;
    use fbcnn_predictor::ThresholdOptimizer;
    use fbcnn_tensor::Tensor;

    fn lenet_workload(t: usize) -> Workload {
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
        let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
            ((r + 2 * c) % 7) as f32 / 7.0
        });
        let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        Workload::build(&bnet, &input, &thresholds, t, 3)
    }

    #[test]
    fn cnvlutin_beats_baseline_but_not_fast_bcnn() {
        let w = lenet_workload(8);
        let base = BaselineSim::new(HwConfig::baseline()).run(&w);
        let cnv = CnvlutinSim::new().run(&w);
        let fast = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both).run(&w);
        assert!(
            cnv.normalized_cycles() <= base.normalized_cycles(),
            "cnvlutin should not be slower than baseline"
        );
        assert!(
            fast.normalized_cycles() < cnv.normalized_cycles(),
            "fast-bcnn ({}) must outperform cnvlutin ({})",
            fast.normalized_cycles(),
            cnv.normalized_cycles()
        );
    }

    #[test]
    fn first_layer_gains_nothing_on_dense_inputs() {
        let w = lenet_workload(2);
        let cnv = CnvlutinSim::new().run(&w);
        let base = BaselineSim::new(HwConfig::baseline()).run(&w);
        // Layer 1 sees the (dense) image: cnvlutin cycles are within a few
        // percent of the baseline's for that layer.
        let ratio = cnv.layers[0].cycles as f64 / base.layers[0].cycles as f64;
        assert!(
            ratio > 0.85,
            "cnvlutin should not skip the first layer (ratio {ratio})"
        );
    }

    #[test]
    fn pooled_inputs_limit_gains_but_direct_sparse_inputs_help() {
        // LeNet's conv2 reads max-pooled activations: pooling densifies
        // the naturally-zero values, so Cnvlutin gains little there.
        let w = lenet_workload(2);
        let cnv = CnvlutinSim::new().run(&w);
        let base = BaselineSim::new(HwConfig::baseline()).run(&w);
        let pooled_ratio = cnv.layers[1].cycles as f64 / base.layers[1].cycles as f64;
        assert!(pooled_ratio <= 1.0 + 1e-9);

        // A conv fed directly by a sparse ReLU output does benefit.
        let bnet = BayesianNetwork::new(
            models::ModelKind::Vgg16.build_scaled(1, models::ModelScale::TINY),
            0.3,
        );
        let input = Tensor::from_fn(bnet.network().input_shape(), |ch, r, c| {
            ((ch + 2 * r + 3 * c) % 7) as f32 / 7.0
        });
        let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        let wv = Workload::build(&bnet, &input, &thresholds, 2, 3);
        let cnv_v = CnvlutinSim::new().run(&wv);
        let base_v = BaselineSim::new(HwConfig::baseline()).run(&wv);
        // conv1_2 reads conv1_1's (sparse, unpooled) output.
        let ratio = cnv_v.layers[1].cycles as f64 / base_v.layers[1].cycles as f64;
        assert!(
            ratio < 0.9,
            "sparse direct input should speed up conv1_2 (ratio {ratio})"
        );
    }

    #[test]
    fn no_pre_inference() {
        let w = lenet_workload(2);
        let cnv = CnvlutinSim::new().run(&w);
        assert_eq!(cnv.pre_inference_cycles, 0);
        assert_eq!(cnv.energy.prediction, 0.0);
    }
}
