//! FPGA resource estimation — the model behind Table II.
//!
//! The paper synthesizes for a Xilinx Virtex-7 VC709 (XC7VX690T: 433 K
//! LUTs, 866 K flip-flops, 1470 BRAM-36 blocks) and reports the usage of
//! the convolution units, prediction units and central predictor. This
//! module reproduces those numbers with per-component cost coefficients
//! representative of fp32 arithmetic on 7-series fabric.

use crate::HwConfig;
use serde::{Deserialize, Serialize};

/// Device capacity of the evaluation board (XC7VX690T).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Lookup tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// BRAM-36 blocks.
    pub brams: u64,
}

/// The VC709's XC7VX690T part.
pub const VIRTEX7_VC709: Device = Device {
    luts: 433_000,
    ffs: 866_000,
    brams: 1_470,
};

/// Resource usage of one module group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Usage {
    /// Lookup tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// BRAM-36 blocks.
    pub brams: u64,
}

/// The Table II rows: per-module-group resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceReport {
    /// All `Tm` convolution units.
    pub convolution_units: Usage,
    /// All `Tm` prediction units.
    pub prediction_units: Usage,
    /// The central predictor.
    pub central_predictor: Usage,
}

// Per-component coefficients (7-series, fp32 soft logic), calibrated so
// the FB-64 point reproduces Table II exactly.
const MULT_LUT: u64 = 760;
const MULT_FF: u64 = 1_050;
const ADD_LUT: u64 = 380;
const ADD_FF: u64 = 430;
const PE_CTRL_LUT: u64 = 144; // skip engine, FIFOs, MUX, counters
const PE_CTRL_FF: u64 = 125;
const PE_BRAM: u64 = 8; // duplicated input buffer + weight + output slices
const LANE_LUT: u64 = 1; // an AND gate + small counter packs into a LUT/FF pair
const LANE_FF: u64 = 1;
const PRED_BRAM_PER_PE: u64 = 1; // 1 KB mask buffer rounds up to one BRAM-18 pair
const CENTRAL_ADDER_LUT: u64 = 160; // 10-bit adder + compare slice
const CENTRAL_ADDER_FF: u64 = 160;
const CENTRAL_BRAM: u64 = 2;

/// Estimates resource usage for a hardware configuration.
///
/// # Examples
///
/// ```
/// use fbcnn_accel::{resources, HwConfig};
///
/// let report = resources::estimate(&HwConfig::fast_bcnn(64));
/// assert!(report.prediction_units.luts < report.convolution_units.luts / 100);
/// ```
pub fn estimate(cfg: &HwConfig) -> ResourceReport {
    let tm = cfg.tm() as u64;
    let tn = cfg.tn() as u64;
    // Per PE: Tn multipliers, an adder tree of Tn-1 adders, control.
    let adders = tn.saturating_sub(1);
    let convolution_units = Usage {
        luts: tm * (tn * MULT_LUT + adders * ADD_LUT + PE_CTRL_LUT),
        ffs: tm * (tn * MULT_FF + adders * ADD_FF + PE_CTRL_FF),
        brams: tm * PE_BRAM,
    };
    let lanes = cfg.counting_lanes() as u64;
    let prediction_units = Usage {
        luts: tm * lanes * LANE_LUT,
        ffs: tm * lanes * LANE_FF,
        brams: tm * PRED_BRAM_PER_PE,
    };
    // Adder tree over Tm partial counts (Tm-1 adders) plus compare and
    // zero-index AND stage — sized in 10-bit slices.
    let central_predictor = Usage {
        luts: (tm.saturating_sub(1) + 1) * CENTRAL_ADDER_LUT + 6,
        ffs: (tm.saturating_sub(1) + 1) * CENTRAL_ADDER_FF + 6,
        brams: CENTRAL_BRAM,
    };
    ResourceReport {
        convolution_units,
        prediction_units,
        central_predictor,
    }
}

impl Usage {
    /// Utilization fractions against a device.
    pub fn utilization(&self, device: &Device) -> (f64, f64, f64) {
        (
            self.luts as f64 / device.luts as f64,
            self.ffs as f64 / device.ffs as f64,
            self.brams as f64 / device.brams as f64,
        )
    }
}

impl ResourceReport {
    /// Total usage across the three module groups.
    pub fn total(&self) -> Usage {
        Usage {
            luts: self.convolution_units.luts
                + self.prediction_units.luts
                + self.central_predictor.luts,
            ffs: self.convolution_units.ffs
                + self.prediction_units.ffs
                + self.central_predictor.ffs,
            brams: self.convolution_units.brams
                + self.prediction_units.brams
                + self.central_predictor.brams,
        }
    }

    /// Whether the design fits the device.
    pub fn fits(&self, device: &Device) -> bool {
        let t = self.total();
        t.luts <= device.luts && t.ffs <= device.ffs && t.brams <= device.brams
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fb64_reproduces_table2_magnitudes() {
        let r = estimate(&HwConfig::fast_bcnn(64));
        // Table II: conv units 276736 LUT / 359360 FF / 512 BRAM.
        assert_eq!(r.convolution_units.luts, 276_736);
        assert_eq!(r.convolution_units.ffs, 359_360);
        assert_eq!(r.convolution_units.brams, 512);
        // Prediction units: 1024 LUT / 1024 FF / 64 BRAM.
        assert_eq!(r.prediction_units.luts, 1024);
        assert_eq!(r.prediction_units.ffs, 1024);
        assert_eq!(r.prediction_units.brams, 64);
        // Central predictor: ~10246 LUT / 2 BRAM.
        assert!(
            (9_000..11_000).contains(&r.central_predictor.luts),
            "central LUTs {}",
            r.central_predictor.luts
        );
        assert_eq!(r.central_predictor.brams, 2);
    }

    #[test]
    fn prediction_overhead_is_below_one_percent() {
        // The paper's headline claim: prediction units & central predictor
        // cost <1% LUT/FF each.
        let r = estimate(&HwConfig::fast_bcnn(64));
        let (lut_frac, ff_frac, _) = r.prediction_units.utilization(&VIRTEX7_VC709);
        assert!(lut_frac < 0.01 && ff_frac < 0.01);
        let (lut_c, ff_c, _) = r.central_predictor.utilization(&VIRTEX7_VC709);
        assert!(lut_c < 0.03 && ff_c < 0.02);
    }

    #[test]
    fn all_design_points_fit_the_device() {
        for cfg in HwConfig::design_space() {
            let r = estimate(&cfg);
            assert!(r.fits(&VIRTEX7_VC709), "{} does not fit", cfg.name());
        }
    }

    #[test]
    fn conv_area_tracks_mac_budget_not_tm() {
        // With Tm*Tn fixed, multiplier area is constant; only control
        // differs.
        let a = estimate(&HwConfig::fast_bcnn(8)).convolution_units;
        let b = estimate(&HwConfig::fast_bcnn(64)).convolution_units;
        let ratio = a.luts as f64 / b.luts as f64;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn utilization_fractions_match_table2_percentages() {
        let r = estimate(&HwConfig::fast_bcnn(64));
        let (lut, ff, bram) = r.convolution_units.utilization(&VIRTEX7_VC709);
        // Table II: 64% LUT, 41% FF, 35% BRAM.
        assert!((0.55..0.72).contains(&lut), "LUT util {lut}");
        assert!((0.35..0.48).contains(&ff), "FF util {ff}");
        assert!((0.30..0.40).contains(&bram), "BRAM util {bram}");
    }
}
