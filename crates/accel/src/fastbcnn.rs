use crate::baseline::{dense_fc_cycles, dense_layer_cycles, dram_words_per_pass};
use crate::{
    EnergyBreakdown, EnergyModel, HwConfig, LayerReport, LayerSkips, LayerWork, RunReport,
    SkipMode, Workload,
};
use fbcnn_tensor::stats::ceil_div;

/// The Fast-BCNN accelerator cycle model (paper §V).
///
/// One complete BCNN task costs a dropout-free *pre-inference* (recording
/// the zero-neuron index) plus `T` skipping sample inferences. Per sample
/// and layer:
///
/// * layers without upstream dropout take the **first-layer shortcut**:
///   pre-inference outputs are reloaded and masked at one neuron per PE
///   per cycle;
/// * every other layer distributes output channels round-robin over the
///   `Tm` PEs; a kept neuron costs `K²·⌈N/Tn⌉` cycles, a skipped neuron
///   costs one skip-engine cycle, and the layer finishes when the slowest
///   PE does (the idle gap the paper measures against the ideal case);
/// * the prediction unit counts dropped nw-inputs for the *next* layer in
///   parallel; if its `K'²·⌈M'/lanes⌉·R'·C'` per-channel latency exceeds
///   the convolution time, the layer stalls (the Eq. 8 condition).
///
/// [`SkipMode`] selects the FB / FB-d / FB-u ablation of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastBcnnSim {
    cfg: HwConfig,
    mode: SkipMode,
    energy: EnergyModel,
}

impl FastBcnnSim {
    /// Creates the simulator with the default energy model.
    pub fn new(cfg: HwConfig, mode: SkipMode) -> Self {
        Self {
            cfg,
            mode,
            energy: EnergyModel::default(),
        }
    }

    /// Overrides the energy model.
    pub fn with_energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// The hardware configuration.
    pub fn config(&self) -> HwConfig {
        self.cfg
    }

    /// The skip mode.
    pub fn mode(&self) -> SkipMode {
        self.mode
    }

    /// Effective skipped-neuron count per channel under the current mode.
    fn skips_of<'a>(&self, ls: &'a LayerSkips) -> &'a [u32] {
        match self.mode {
            SkipMode::Both => &ls.skipped_per_channel,
            SkipMode::DroppedOnly => &ls.dropped_per_channel,
            SkipMode::UnaffectedOnly => &ls.predicted_per_channel,
        }
    }

    /// Convolution cycles of one layer in one sample: `(max_pe, idle)`.
    ///
    /// Channels are dispatched dynamically: every PE holds a duplicate of
    /// the input feature map (that is the point of the skip-friendly
    /// feature-map parallelism, §IV-B), so a PE that finishes its channel
    /// fetches the next pending channel's kernel instead of idling. The
    /// makespan is that of greedy list scheduling; residual idleness is
    /// what remains of the per-channel skip imbalance.
    fn layer_conv_cycles(&self, lw: &LayerWork, skips: &[u32]) -> (u64, u64) {
        let tm = self.cfg.tm() as u64;
        let cpn = lw.cycles_per_neuron(self.cfg.tn());
        let plane = lw.plane() as u64;
        // Channel-granular dispatch, as in the paper's feature-map
        // parallelism: a PE owns one output channel at a time; when it
        // drains its channel it fetches the next *pending channel's*
        // kernel (dynamic dispatch — every PE holds a duplicate of the
        // input feature map, §IV-B). The layer ends when the slowest PE
        // does; the residual makespan excess over perfect balance is the
        // PE idleness the paper measures against the ideal case.
        let mut pe_load = vec![0u64; tm as usize];
        for &sk in skips {
            let sk = sk as u64;
            let work = (plane - sk) * cpn + sk;
            let (idx, _) = pe_load
                .iter()
                .enumerate()
                .min_by_key(|&(_, &l)| l)
                .expect("at least one PE");
            pe_load[idx] += work;
        }
        let max_pe = pe_load.iter().copied().max().unwrap_or(0);
        let sum_pe: u64 = pe_load.iter().sum();
        let idle = tm * max_pe - sum_pe;
        (max_pe, idle)
    }

    /// Prediction-unit cycles to produce layer `next`'s prediction bits,
    /// per PE (Eq. 8's left-hand side, summed over the channels each PE
    /// feeds through its counting lanes).
    pub(crate) fn prediction_cycles(&self, current: &LayerWork, next: &LayerWork) -> u64 {
        let lanes = self.cfg.counting_lanes();
        if lanes == 0 {
            return 0;
        }
        let channels_per_pe = ceil_div(current.m, self.cfg.tm()) as u64;
        if next.m >= lanes {
            // More kernels than lanes: several passes per input channel.
            channels_per_pe
                * (next.k * next.k) as u64
                * ceil_div(next.m, lanes) as u64
                * next.plane() as u64
        } else {
            // Fewer kernels than lanes: the idle lanes batch several input
            // channels per pass (the data-packaging stage interleaves
            // their dropout bits).
            let channels_in_parallel = (lanes / next.m).max(1);
            ceil_div(channels_per_pe as usize, channels_in_parallel) as u64
                * (next.k * next.k) as u64
                * next.plane() as u64
        }
    }

    /// Checks the Eq. 8 synchronization condition for a layer transition
    /// under an estimated skip rate.
    pub fn sync_ok(&self, current: &LayerWork, next: &LayerWork, skip_rate: f64) -> bool {
        let conv = (current.k * current.k) as u64
            * ceil_div(current.n, self.cfg.tn()) as u64
            * current.plane() as u64;
        let conv_effective = (conv as f64 * (1.0 - skip_rate)) as u64;
        let pred = (next.k * next.k) as u64
            * ceil_div(next.m, self.cfg.counting_lanes().max(1)) as u64
            * next.plane() as u64;
        pred <= conv_effective
    }

    /// Replays the two-resource schedule and records every interval —
    /// used by [`FastBcnnSim::timeline`]. Returns
    /// `(conv_intervals, prediction_intervals, total_cycles, pre_cycles)`
    /// with timing identical to [`FastBcnnSim::run`].
    pub(crate) fn schedule(
        &self,
        w: &Workload,
    ) -> (
        Vec<crate::timeline::Interval>,
        Vec<crate::timeline::Interval>,
        u64,
        u64,
    ) {
        use crate::timeline::Interval;
        let cfg = &self.cfg;
        let uses_pre_inference = self.mode.skips_unaffected();
        let pre_cycles: u64 = if uses_pre_inference {
            w.layers
                .iter()
                .map(|lw| dense_layer_cycles(lw, cfg))
                .sum::<u64>()
                + dense_fc_cycles(&w.dense, cfg)
        } else {
            0
        };
        let mut conv_iv = Vec::new();
        let mut pred_iv = Vec::new();
        let mut conv_t = pre_cycles;
        let mut pred_t = pre_cycles;
        for (s, sample) in w.samples.iter().enumerate() {
            for (i, (lw, ls)) in w.layers.iter().zip(&sample.per_layer).enumerate() {
                let conv_cycles = if !lw.upstream_dropout && uses_pre_inference {
                    ceil_div(lw.m, cfg.tm()) as u64 * lw.plane() as u64
                } else {
                    self.layer_conv_cycles(lw, self.skips_of(ls)).0
                };
                let mut ready = conv_t;
                if self.mode.skips_unaffected() && lw.upstream_dropout && i > 0 {
                    let job = self.prediction_cycles(&w.layers[i - 1], lw);
                    pred_iv.push(Interval {
                        layer: lw.label.clone(),
                        sample: s,
                        start: pred_t,
                        end: pred_t + job,
                    });
                    pred_t += job;
                    ready = ready.max(pred_t);
                }
                conv_iv.push(Interval {
                    layer: lw.label.clone(),
                    sample: s,
                    start: ready,
                    end: ready + conv_cycles,
                });
                conv_t = ready + conv_cycles;
            }
            conv_t += dense_fc_cycles(&w.dense, cfg);
        }
        (conv_iv, pred_iv, conv_t, pre_cycles)
    }

    /// Simulates the complete BCNN task: pre-inference + `T` samples.
    pub fn run(&self, w: &Workload) -> RunReport {
        let _span =
            fbcnn_telemetry::span_with("sim_run", || vec![("design".into(), "fast_bcnn".into())]);
        let e = &self.energy;
        let cfg = &self.cfg;
        let tm = cfg.tm() as f64;

        // Pre-inference: a dense pass recording the zero-neuron index.
        // Dropped-only skipping needs no pre-inference (the masks alone
        // decide), so FB-d skips it — and with it the first-layer
        // shortcut, whose stored outputs it would have reused.
        let uses_pre_inference = self.mode.skips_unaffected();
        let pre_cycles: u64 = if uses_pre_inference {
            w.layers
                .iter()
                .map(|lw| dense_layer_cycles(lw, cfg))
                .sum::<u64>()
                + dense_fc_cycles(&w.dense, cfg)
        } else {
            0
        };

        let mut layers: Vec<LayerReport> = w
            .layers
            .iter()
            .map(|lw| LayerReport {
                label: lw.label.clone(),
                ..Default::default()
            })
            .collect();

        let mut total_cycles = pre_cycles;
        let mut macs_computed = 0f64;
        let mut skipped_neurons = 0f64;
        let mut masked_neurons = 0f64;
        let mut outputs_written = 0f64;
        let mut count_ops = 0f64;
        let mut central_neurons = 0f64;

        if uses_pre_inference {
            outputs_written += (w.conv_neurons_per_pass() + fc_outputs(w)) as f64;
            macs_computed += pre_pass_macs(w);
        }

        // Two-resource pipeline. Dropout bits are data-independent (the
        // BRNG needs no activations), so the prediction unit processes
        // its counting jobs back to back — running ahead across layer
        // and even sample boundaries — while a convolution layer that
        // consumes prediction bits cannot start before its job
        // completes. Eq. 8 is the per-transition health check
        // ([`FastBcnnSim::sync_ok`]); this cumulative form credits the
        // slack earlier, cheaper jobs leave behind.
        let mut conv_t = 0u64; // convolution-unit timeline
        let mut pred_t = 0u64; // prediction-unit timeline
        for sample in &w.samples {
            for (i, (lw, ls)) in w.layers.iter().zip(&sample.per_layer).enumerate() {
                let report = &mut layers[i];
                let (conv_cycles, idle) = if !lw.upstream_dropout && uses_pre_inference {
                    // Shortcut: reload pre-inference outputs, apply the
                    // dropout bits, one neuron per PE per cycle.
                    report.skipped_neurons += lw.neurons() as u64;
                    masked_neurons += lw.neurons() as f64;
                    (ceil_div(lw.m, cfg.tm()) as u64 * lw.plane() as u64, 0u64)
                } else {
                    let skips = self.skips_of(ls);
                    let skipped: u64 = skips.iter().map(|&s| s as u64).sum();
                    let computed = lw.neurons() as u64 - skipped;
                    report.computed_neurons += computed;
                    report.skipped_neurons += skipped;
                    macs_computed += (computed as usize * lw.k * lw.k * lw.n) as f64;
                    skipped_neurons += skipped as f64;
                    self.layer_conv_cycles(lw, skips)
                };

                // The counting job that produces *this* layer's
                // prediction bits (issued by the previous layer's PEs).
                let mut stall = 0u64;
                if self.mode.skips_unaffected() && lw.upstream_dropout && i > 0 {
                    let prev = &w.layers[i - 1];
                    pred_t += self.prediction_cycles(prev, lw);
                    count_ops += (lw.neurons() * lw.k * lw.k * lw.n) as f64;
                    central_neurons += lw.neurons() as f64;
                    if pred_t > conv_t {
                        stall = pred_t - conv_t;
                    }
                }
                let start = conv_t + stall;
                conv_t = start + conv_cycles;

                report.cycles += conv_cycles + stall;
                report.idle_cycles += idle + stall * cfg.tm() as u64;
                report.stall_cycles += stall;
            }
            conv_t += dense_fc_cycles(&w.dense, cfg);
            outputs_written += (w.conv_neurons_per_pass() + fc_outputs(w)) as f64;
        }
        total_cycles += conv_t;

        let passes = w.t() + usize::from(uses_pre_inference);
        let fc_macs: f64 = w
            .dense
            .iter()
            .map(|&(inf, outf)| (inf * outf) as f64)
            .sum::<f64>()
            * passes as f64;

        let conv_energy = macs_computed * e.e_mac
            + fc_macs * e.e_mac
            + skipped_neurons * e.e_skip
            + masked_neurons * e.e_mask
            + outputs_written * e.e_output
            + total_cycles as f64 * tm * e.p_static_pe;
        let prediction_energy = count_ops * e.e_count_op
            + total_cycles as f64 * (cfg.tm() * cfg.counting_lanes()) as f64 * e.p_static_lane;
        let central_energy = central_neurons * tm * e.e_central_add
            + if self.mode.skips_unaffected() {
                total_cycles as f64 * e.p_static_central
            } else {
                0.0
            };
        // DRAM: skipped outputs travel as 1-bit zero indicators.
        let full_words = dram_words_per_pass(w) as f64 * passes as f64;
        let saved_output_words = (skipped_neurons + masked_neurons) * (31.0 / 32.0);
        let dram = (full_words - saved_output_words) * e.e_dram_word;

        RunReport {
            name: format!(
                "{}{}",
                cfg.name(),
                match self.mode {
                    SkipMode::Both => "",
                    SkipMode::DroppedOnly => "-d",
                    SkipMode::UnaffectedOnly => "-u",
                }
            ),
            model_name: w.model_name.clone(),
            t: w.t(),
            pre_inference_cycles: pre_cycles,
            total_cycles,
            layers,
            energy: EnergyBreakdown {
                conv: conv_energy,
                prediction: prediction_energy,
                central: central_energy,
                dram,
            },
        }
        .recorded()
    }
}

fn fc_outputs(w: &Workload) -> u64 {
    w.dense.iter().map(|&(_, o)| o as u64).sum()
}

fn pre_pass_macs(w: &Workload) -> f64 {
    w.layers
        .iter()
        .map(|l| (l.neurons() * l.k * l.k * l.n) as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BaselineSim;
    use fbcnn_bayes::BayesianNetwork;
    use fbcnn_nn::models;
    use fbcnn_predictor::{ThresholdOptimizer, ThresholdSet};
    use fbcnn_tensor::Tensor;

    fn lenet_workload(t: usize) -> Workload {
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
        let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
            ((r + 2 * c) % 7) as f32 / 7.0
        });
        let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        Workload::build(&bnet, &input, &thresholds, t, 3)
    }

    #[test]
    fn fast_bcnn_beats_baseline() {
        let w = lenet_workload(8);
        let base = BaselineSim::new(HwConfig::baseline()).run(&w);
        let fast = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both).run(&w);
        let speedup = fast.speedup_over(&base);
        assert!(
            speedup > 2.0,
            "expected a large LeNet speedup, got {speedup:.2}"
        );
        assert!(fast.energy_reduction_vs(&base) > 0.3);
    }

    #[test]
    fn both_mode_dominates_single_modes() {
        let w = lenet_workload(4);
        let cfg = HwConfig::fast_bcnn(64);
        let both = FastBcnnSim::new(cfg, SkipMode::Both).run(&w);
        let d = FastBcnnSim::new(cfg, SkipMode::DroppedOnly).run(&w);
        let u = FastBcnnSim::new(cfg, SkipMode::UnaffectedOnly).run(&w);
        // Both skips a superset of UnaffectedOnly under identical
        // prediction stalls, so it can never be slower.
        assert!(both.total_cycles <= u.total_cycles);
        // Against DroppedOnly (which runs no prediction unit and therefore
        // never stalls), Both's advantage holds on pure convolution
        // cycles; stalls are accounted separately.
        assert!(both.total_cycles - both.total_stall() <= d.total_cycles);
        // Union skipping is sub-additive (overlap): FB savings are less
        // than the sum of the two single-mode savings.
        let base = BaselineSim::new(HwConfig::baseline()).run(&w);
        let red_both = both.cycle_reduction_vs(&base);
        let red_d = d.cycle_reduction_vs(&base);
        let red_u = u.cycle_reduction_vs(&base);
        assert!(
            red_d + red_u >= red_both - 1e-9,
            "expected sub-additivity: {red_d} + {red_u} vs {red_both}"
        );
    }

    #[test]
    fn more_skipping_never_costs_cycles() {
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
        let input = Tensor::full(bnet.network().input_shape(), 0.4);
        let none = ThresholdSet::never_predict(bnet.network().len());
        let opt = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        let w_none = Workload::build(&bnet, &input, &none, 4, 3);
        let w_opt = Workload::build(&bnet, &input, &opt, 4, 3);
        let cfg = HwConfig::fast_bcnn(64);
        let r_none = FastBcnnSim::new(cfg, SkipMode::Both).run(&w_none);
        let r_opt = FastBcnnSim::new(cfg, SkipMode::Both).run(&w_opt);
        assert!(r_opt.total_cycles <= r_none.total_cycles);
    }

    #[test]
    fn pre_inference_charged_once() {
        let w = lenet_workload(2);
        let fast = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both).run(&w);
        assert!(fast.pre_inference_cycles > 0);
        assert!(fast.total_cycles > fast.pre_inference_cycles);
        let base_pass = BaselineSim::new(HwConfig::baseline()).run(&w).total_cycles / 2;
        assert_eq!(fast.pre_inference_cycles, base_pass);
    }

    #[test]
    fn shortcut_makes_first_layer_nearly_free() {
        let w = lenet_workload(4);
        let fast = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both).run(&w);
        // conv1 dense would cost 19600/sample; the shortcut costs 784.
        let conv1 = &fast.layers[0];
        assert!(
            conv1.cycles <= 784 * 4 + 19_600, // samples + possible stall
            "first layer cycles {} too high",
            conv1.cycles
        );
    }

    #[test]
    fn prediction_unit_energy_is_minor() {
        let w = lenet_workload(8);
        let fast = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both).run(&w);
        let share = fast.energy.prediction_share() + fast.energy.central_share();
        assert!(
            share < 0.4,
            "prediction machinery consumes {share:.2} of energy"
        );
        assert!(fast.energy.prediction > 0.0);
        assert!(fast.energy.central > 0.0);
    }

    #[test]
    fn dropped_only_mode_has_no_prediction_energy() {
        let w = lenet_workload(4);
        let d = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::DroppedOnly).run(&w);
        assert_eq!(d.energy.central, 0.0);
        assert_eq!(d.total_stall(), 0);
    }

    #[test]
    fn sync_condition_matches_eq8() {
        let w = lenet_workload(1);
        let sim = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both);
        // At modest skip rates LeNet transitions are safely synchronized.
        assert!(sim.sync_ok(&w.layers[0], &w.layers[1], 0.5));
    }
}
