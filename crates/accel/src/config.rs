use serde::{Deserialize, Serialize};

/// Which neuron classes the Fast-BCNN simulator skips — the paper's FB,
/// FB-d and FB-u operating modes (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkipMode {
    /// Skip dropped and predicted-unaffected neurons (Fast-BCNN).
    Both,
    /// Skip only dropped neurons (Fast-BCNN-d).
    DroppedOnly,
    /// Skip only predicted-unaffected neurons (Fast-BCNN-u).
    UnaffectedOnly,
}

impl SkipMode {
    /// Whether dropped neurons are skipped in this mode.
    pub fn skips_dropped(&self) -> bool {
        matches!(self, SkipMode::Both | SkipMode::DroppedOnly)
    }

    /// Whether predicted-unaffected neurons are skipped in this mode.
    pub fn skips_unaffected(&self) -> bool {
        matches!(self, SkipMode::Both | SkipMode::UnaffectedOnly)
    }
}

/// The hardware design point: Table I's `<Tm, Tn>` feature-map
/// parallelism with `4·Tn` counting lanes per PE (Eq. 9 with δ = 4).
///
/// The total MAC budget is fixed at `Tm × Tn = 256` across the design
/// space, exactly as in Table I.
///
/// # Examples
///
/// ```
/// use fbcnn_accel::HwConfig;
///
/// let cfg = HwConfig::fast_bcnn(64);
/// assert_eq!(cfg.tn(), 4);
/// assert_eq!(cfg.counting_lanes(), 16);
/// assert_eq!(cfg.total_macs(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HwConfig {
    tm: usize,
    tn: usize,
    counting_lanes: usize,
    frequency_mhz: u32,
}

/// The fixed MAC budget of Table I.
pub const TOTAL_MACS: usize = 256;

impl HwConfig {
    /// A Fast-BCNN configuration with `tm` PEs (Table I rows: 8, 16, 32
    /// or 64).
    ///
    /// # Panics
    ///
    /// Panics unless `tm` divides 256.
    pub fn fast_bcnn(tm: usize) -> Self {
        assert!(
            tm > 0 && TOTAL_MACS.is_multiple_of(tm),
            "Tm {tm} must divide the {TOTAL_MACS}-MAC budget"
        );
        let tn = TOTAL_MACS / tm;
        Self {
            tm,
            tn,
            counting_lanes: 4 * tn,
            frequency_mhz: 100,
        }
    }

    /// Overrides the counting-lane provisioning to `delta · Tn` lanes per
    /// PE (Eq. 9's δ; Table I fixes δ = 4, the paper's analysis says the
    /// workload may demand 4–8).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is zero.
    pub fn with_lane_factor(mut self, delta: usize) -> Self {
        assert!(delta > 0, "lane factor must be non-zero");
        self.counting_lanes = delta * self.tn;
        self
    }

    /// The baseline accelerator: same `<Tm=64, Tn=4>` parallelism as
    /// Fast-BCNN-64, no skipping machinery (paper §VI-A).
    pub fn baseline() -> Self {
        Self {
            counting_lanes: 0,
            ..Self::fast_bcnn(64)
        }
    }

    /// The four Fast-BCNN design points of Table I.
    pub fn design_space() -> [HwConfig; 4] {
        [
            Self::fast_bcnn(8),
            Self::fast_bcnn(16),
            Self::fast_bcnn(32),
            Self::fast_bcnn(64),
        ]
    }

    /// Number of PEs (`Tm`).
    pub fn tm(&self) -> usize {
        self.tm
    }

    /// Multipliers per PE (`Tn`).
    pub fn tn(&self) -> usize {
        self.tn
    }

    /// Counting lanes per PE in the prediction unit.
    pub fn counting_lanes(&self) -> usize {
        self.counting_lanes
    }

    /// Clock frequency (all designs run at 100 MHz, §VI-A).
    pub fn frequency_mhz(&self) -> u32 {
        self.frequency_mhz
    }

    /// The multiplier budget `Tm × Tn`.
    pub fn total_macs(&self) -> usize {
        self.tm * self.tn
    }

    /// Short display name ("FB-64"-style).
    pub fn name(&self) -> String {
        format!("FB-{}", self.tm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_design_space() {
        let space = HwConfig::design_space();
        let expect = [(8, 32, 128), (16, 16, 64), (32, 8, 32), (64, 4, 16)];
        for (cfg, (tm, tn, lanes)) in space.iter().zip(expect) {
            assert_eq!(cfg.tm(), tm);
            assert_eq!(cfg.tn(), tn);
            assert_eq!(cfg.counting_lanes(), lanes);
            assert_eq!(cfg.total_macs(), TOTAL_MACS);
            assert_eq!(cfg.frequency_mhz(), 100);
        }
    }

    #[test]
    fn baseline_matches_fb64_parallelism() {
        let b = HwConfig::baseline();
        assert_eq!(b.tm(), 64);
        assert_eq!(b.tn(), 4);
        assert_eq!(b.counting_lanes(), 0);
    }

    #[test]
    fn names_follow_paper_convention() {
        assert_eq!(HwConfig::fast_bcnn(32).name(), "FB-32");
    }

    #[test]
    fn skip_mode_flags() {
        assert!(SkipMode::Both.skips_dropped() && SkipMode::Both.skips_unaffected());
        assert!(SkipMode::DroppedOnly.skips_dropped());
        assert!(!SkipMode::DroppedOnly.skips_unaffected());
        assert!(!SkipMode::UnaffectedOnly.skips_dropped());
        assert!(SkipMode::UnaffectedOnly.skips_unaffected());
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn invalid_tm_rejected() {
        let _ = HwConfig::fast_bcnn(7);
    }
}
