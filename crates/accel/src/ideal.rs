use crate::baseline::{dense_fc_cycles, dense_fc_energy, dense_layer_cycles, dram_words_per_pass};
use crate::{
    EnergyBreakdown, EnergyModel, FastBcnnSim, HwConfig, LayerReport, RunReport, SkipMode, Workload,
};
use fbcnn_tensor::stats::ceil_div;

/// The paper's *ideal case*: all computation savings transfer into
/// speedup and energy reduction (Fig. 11's upper bound).
///
/// The paper attributes the Fast-BCNN-to-ideal gap to *PE idleness* —
/// channels with more invalid neurons leave their PE waiting for the
/// slowest one. The ideal model therefore runs the same algorithm
/// (pre-inference, shortcut, prediction overlap) but with perfect load
/// balance across PEs and zero skip-engine overhead, and without charging
/// the skipping machinery's energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealSim {
    cfg: HwConfig,
    energy: EnergyModel,
}

impl IdealSim {
    /// Creates the ideal simulator for a hardware configuration.
    pub fn new(cfg: HwConfig) -> Self {
        Self {
            cfg,
            energy: EnergyModel::default(),
        }
    }

    /// Overrides the energy model.
    pub fn with_energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Simulates the complete task under ideal skipping.
    pub fn run(&self, w: &Workload) -> RunReport {
        let _span =
            fbcnn_telemetry::span_with("sim_run", || vec![("design".into(), "ideal".into())]);
        let e = &self.energy;
        let cfg = &self.cfg;
        // Reuse Fast-BCNN's prediction-latency model for the overlap floor.
        let fb = FastBcnnSim::new(*cfg, SkipMode::Both);

        let pre_cycles: u64 = w
            .layers
            .iter()
            .map(|lw| dense_layer_cycles(lw, cfg))
            .sum::<u64>()
            + dense_fc_cycles(&w.dense, cfg);

        let mut layers: Vec<LayerReport> = w
            .layers
            .iter()
            .map(|lw| LayerReport {
                label: lw.label.clone(),
                ..Default::default()
            })
            .collect();

        let mut total_cycles = pre_cycles;
        let mut macs = pre_macs(w);
        // The same cross-sample two-resource pipeline as Fast-BCNN, but
        // with perfectly balanced convolution work.
        let mut conv_t = 0u64;
        let mut pred_t = 0u64;
        for sample in &w.samples {
            for (i, (lw, ls)) in w.layers.iter().zip(&sample.per_layer).enumerate() {
                let conv_cycles = if lw.upstream_dropout {
                    let skipped: u64 = ls.skipped_per_channel.iter().map(|&s| s as u64).sum();
                    let computed = lw.neurons() as u64 - skipped;
                    layers[i].computed_neurons += computed;
                    layers[i].skipped_neurons += skipped;
                    macs += (computed as usize * lw.k * lw.k * lw.n) as f64;
                    // Perfect balance, zero skip-engine cycles.
                    ceil_div(
                        (computed * lw.cycles_per_neuron(cfg.tn())) as usize,
                        cfg.tm(),
                    ) as u64
                } else {
                    layers[i].skipped_neurons += lw.neurons() as u64;
                    ceil_div(lw.m, cfg.tm()) as u64 * lw.plane() as u64
                };
                // Prediction still has to finish before this layer starts.
                let mut stall = 0u64;
                if lw.upstream_dropout && i > 0 {
                    pred_t += fb.prediction_cycles(&w.layers[i - 1], lw);
                    if pred_t > conv_t {
                        stall = pred_t - conv_t;
                    }
                }
                conv_t += stall + conv_cycles;
                layers[i].cycles += conv_cycles + stall;
            }
            conv_t += dense_fc_cycles(&w.dense, cfg);
        }
        total_cycles += conv_t;

        let outputs = ((w.t() + 1) as u64
            * (w.conv_neurons_per_pass() + w.dense.iter().map(|&(_, o)| o as u64).sum::<u64>()))
            as f64;
        let fc_energy = dense_fc_energy(&w.dense, e) * w.t() as f64;
        let conv = macs * e.e_mac
            + fc_energy
            + outputs * e.e_output
            + total_cycles as f64 * cfg.tm() as f64 * e.p_static_pe;
        let skipped_total: f64 = layers.iter().map(|l| l.skipped_neurons as f64).sum();
        let full_words = dram_words_per_pass(w) as f64 * (w.t() + 1) as f64;
        let dram = (full_words - skipped_total * (31.0 / 32.0)) * e.e_dram_word;

        RunReport {
            name: "ideal".into(),
            model_name: w.model_name.clone(),
            t: w.t(),
            pre_inference_cycles: pre_cycles,
            total_cycles,
            layers,
            energy: EnergyBreakdown {
                conv,
                prediction: 0.0,
                central: 0.0,
                dram,
            },
        }
        .recorded()
    }
}

fn pre_macs(w: &Workload) -> f64 {
    w.layers
        .iter()
        .map(|l| (l.neurons() * l.k * l.k * l.n) as f64)
        .sum::<f64>()
        + w.dense.iter().map(|&(i, o)| (i * o) as f64).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BaselineSim;
    use fbcnn_bayes::BayesianNetwork;
    use fbcnn_nn::models;
    use fbcnn_predictor::ThresholdOptimizer;
    use fbcnn_tensor::Tensor;

    fn lenet_workload(t: usize) -> Workload {
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
        let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
            ((r + 2 * c) % 7) as f32 / 7.0
        });
        let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        Workload::build(&bnet, &input, &thresholds, t, 3)
    }

    #[test]
    fn ideal_bounds_fast_bcnn_which_bounds_baseline() {
        let w = lenet_workload(8);
        let base = BaselineSim::new(HwConfig::baseline()).run(&w);
        let fast = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both).run(&w);
        let ideal = IdealSim::new(HwConfig::fast_bcnn(64)).run(&w);
        assert!(
            ideal.total_cycles <= fast.total_cycles,
            "ideal ({}) must lower-bound fast-bcnn ({})",
            ideal.total_cycles,
            fast.total_cycles
        );
        assert!(fast.total_cycles < base.total_cycles);
        assert!(ideal.energy.total() <= fast.energy.total());
    }

    #[test]
    fn the_gap_to_ideal_is_pe_idleness() {
        let w = lenet_workload(8);
        let fast = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both).run(&w);
        let ideal = IdealSim::new(HwConfig::fast_bcnn(64)).run(&w);
        let gap = 1.0 - ideal.normalized_cycles() / fast.normalized_cycles();
        // The paper reports ~7-15%; allow a broad band at our scale, but
        // the gap must exist and stay moderate.
        assert!(
            (0.0..0.5).contains(&gap),
            "ideal gap {gap} outside plausible range"
        );
        assert!(fast.total_idle() > 0, "imbalance should create idle cycles");
    }

    #[test]
    fn ideal_has_no_overheads() {
        let w = lenet_workload(2);
        let ideal = IdealSim::new(HwConfig::fast_bcnn(64)).run(&w);
        assert_eq!(ideal.energy.prediction, 0.0);
        assert_eq!(ideal.energy.central, 0.0);
        assert_eq!(ideal.total_idle(), 0);
        assert_eq!(ideal.total_stall(), 0);
    }
}
