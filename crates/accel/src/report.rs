use crate::EnergyBreakdown;
use serde::{Deserialize, Serialize};

/// Cycle accounting for one convolution layer, summed over all sample
/// inferences.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer label.
    pub label: String,
    /// Cycles attributed to the layer (including stalls).
    pub cycles: u64,
    /// Neurons actually computed.
    pub computed_neurons: u64,
    /// Neurons skipped (or shortcut-masked).
    pub skipped_neurons: u64,
    /// Cycles PEs spent idle waiting for the slowest PE (load imbalance).
    pub idle_cycles: u64,
    /// Cycles the convolution unit waited for the prediction unit
    /// (Eq. 8 violations).
    pub stall_cycles: u64,
}

/// The outcome of simulating one complete BCNN inference task on one
/// hardware model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Design name (e.g. `"baseline"`, `"FB-64"`, `"cnvlutin"`).
    pub name: String,
    /// Model name the workload came from.
    pub model_name: String,
    /// Number of sample inferences `T`.
    pub t: usize,
    /// Cycles of the dropout-free pre-inference (zero for designs that do
    /// not run one).
    pub pre_inference_cycles: u64,
    /// Total cycles including the pre-inference.
    pub total_cycles: u64,
    /// Per-layer accounting, aggregated over samples.
    pub layers: Vec<LayerReport>,
    /// Energy by module.
    pub energy: EnergyBreakdown,
}

impl RunReport {
    /// Folds the report's headline numbers into the telemetry registry —
    /// `sim_cycles` and `sim_skipped_neurons` counters labeled by design
    /// name — and hands the report back. Every simulator calls this on
    /// its finished report; it is free while no recorder is installed.
    pub fn recorded(self) -> Self {
        if fbcnn_telemetry::enabled() {
            let labels = [("design", self.name.as_str())];
            fbcnn_telemetry::counter_add("sim_cycles", &labels, self.total_cycles);
            let skipped: u64 = self.layers.iter().map(|l| l.skipped_neurons).sum();
            fbcnn_telemetry::counter_add("sim_skipped_neurons", &labels, skipped);
        }
        self
    }

    /// Total cycles averaged over the `T` samples — the paper's
    /// normalization ("averaged by 50"), which charges Fast-BCNN its
    /// pre-inference.
    pub fn normalized_cycles(&self) -> f64 {
        self.total_cycles as f64 / self.t as f64
    }

    /// Wall-clock seconds at the configured frequency.
    pub fn seconds_at(&self, frequency_mhz: u32) -> f64 {
        self.total_cycles as f64 / (frequency_mhz as f64 * 1e6)
    }

    /// Speedup of `self` over `other` (cycle ratio, normalized).
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        other.normalized_cycles() / self.normalized_cycles()
    }

    /// Cycle reduction of `self` relative to `other` in `[0, 1)`
    /// (the paper's "X% cycle reduction").
    pub fn cycle_reduction_vs(&self, other: &RunReport) -> f64 {
        1.0 - self.normalized_cycles() / other.normalized_cycles()
    }

    /// Energy reduction of `self` relative to `other`.
    pub fn energy_reduction_vs(&self, other: &RunReport) -> f64 {
        1.0 - self.energy.total() / other.energy.total()
    }

    /// Total idle cycles across layers.
    pub fn total_idle(&self) -> u64 {
        self.layers.iter().map(|l| l.idle_cycles).sum()
    }

    /// Total prediction-stall cycles across layers.
    pub fn total_stall(&self) -> u64 {
        self.layers.iter().map(|l| l.stall_cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, t: usize, energy: f64) -> RunReport {
        RunReport {
            name: "test".into(),
            model_name: "m".into(),
            t,
            pre_inference_cycles: 0,
            total_cycles: cycles,
            layers: vec![],
            energy: EnergyBreakdown {
                conv: energy,
                ..Default::default()
            },
        }
    }

    #[test]
    fn speedup_and_reduction_are_consistent() {
        let base = report(1000, 10, 100.0);
        let fast = report(250, 10, 40.0);
        assert!((fast.speedup_over(&base) - 4.0).abs() < 1e-12);
        assert!((fast.cycle_reduction_vs(&base) - 0.75).abs() < 1e-12);
        assert!((fast.energy_reduction_vs(&base) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn normalization_divides_by_t() {
        let r = report(510, 50, 1.0);
        assert!((r.normalized_cycles() - 10.2).abs() < 1e-12);
    }

    #[test]
    fn seconds_at_frequency() {
        let r = report(100_000_000, 1, 1.0);
        assert!((r.seconds_at(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_and_stall_sums() {
        let mut r = report(1, 1, 1.0);
        r.layers = vec![
            LayerReport {
                label: "a".into(),
                idle_cycles: 3,
                stall_cycles: 1,
                ..Default::default()
            },
            LayerReport {
                label: "b".into(),
                idle_cycles: 4,
                stall_cycles: 2,
                ..Default::default()
            },
        ];
        assert_eq!(r.total_idle(), 7);
        assert_eq!(r.total_stall(), 3);
    }
}
