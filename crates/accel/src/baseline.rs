use crate::{EnergyBreakdown, EnergyModel, HwConfig, LayerReport, LayerWork, RunReport, Workload};
use fbcnn_tensor::stats::ceil_div;

/// The baseline accelerator: the same `<Tm, Tn>` feature-map parallelism
/// as Fast-BCNN, with no skipping machinery (paper §VI-A). Every neuron
/// of every sample inference is computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineSim {
    cfg: HwConfig,
    energy: EnergyModel,
}

/// Cycles of one dense pass over a convolution layer:
/// `⌈M/Tm⌉ · R·C · K² · ⌈N/Tn⌉`.
pub(crate) fn dense_layer_cycles(layer: &LayerWork, cfg: &HwConfig) -> u64 {
    ceil_div(layer.m, cfg.tm()) as u64 * layer.plane() as u64 * layer.cycles_per_neuron(cfg.tn())
}

/// Cycles of one dense pass over the fully-connected tail.
pub(crate) fn dense_fc_cycles(dense: &[(usize, usize)], cfg: &HwConfig) -> u64 {
    dense
        .iter()
        .map(|&(inf, outf)| (ceil_div(outf, cfg.tm()) * ceil_div(inf, cfg.tn())) as u64)
        .sum()
}

/// Dynamic energy of densely computing one pass (MACs + output writes),
/// conv layers only.
pub(crate) fn dense_pass_conv_energy(w: &Workload, e: &EnergyModel) -> f64 {
    w.layers
        .iter()
        .map(|l| {
            let macs = (l.neurons() * l.k * l.k * l.n) as f64;
            macs * e.e_mac + l.neurons() as f64 * e.e_output
        })
        .sum()
}

/// Dynamic energy of the fully-connected tail for one pass.
pub(crate) fn dense_fc_energy(dense: &[(usize, usize)], e: &EnergyModel) -> f64 {
    dense
        .iter()
        .map(|&(inf, outf)| (inf * outf) as f64 * e.e_mac + outf as f64 * e.e_output)
        .sum()
}

/// DRAM words moved per pass: weights + inputs + outputs of every layer.
pub(crate) fn dram_words_per_pass(w: &Workload) -> u64 {
    let conv: u64 = w
        .layers
        .iter()
        .map(|l| (l.m * l.n * l.k * l.k + l.n * l.plane() + l.neurons()) as u64)
        .sum();
    let fc: u64 = w
        .dense
        .iter()
        .map(|&(inf, outf)| (inf * outf + inf + outf) as u64)
        .sum();
    conv + fc
}

impl BaselineSim {
    /// Creates the simulator for a hardware configuration with the default
    /// energy model.
    pub fn new(cfg: HwConfig) -> Self {
        Self {
            cfg,
            energy: EnergyModel::default(),
        }
    }

    /// Overrides the energy model.
    pub fn with_energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// The hardware configuration.
    pub fn config(&self) -> HwConfig {
        self.cfg
    }

    /// Simulates `T` dense sample inferences.
    pub fn run(&self, w: &Workload) -> RunReport {
        let _span =
            fbcnn_telemetry::span_with("sim_run", || vec![("design".into(), "baseline".into())]);
        let t = w.t() as u64;
        let e = &self.energy;
        let mut layers = Vec::with_capacity(w.layers.len());
        let mut cycles_per_pass = 0u64;
        for lw in &w.layers {
            let c = dense_layer_cycles(lw, &self.cfg);
            cycles_per_pass += c;
            layers.push(LayerReport {
                label: lw.label.clone(),
                cycles: c * t,
                computed_neurons: lw.neurons() as u64 * t,
                skipped_neurons: 0,
                idle_cycles: 0,
                stall_cycles: 0,
            });
        }
        cycles_per_pass += dense_fc_cycles(&w.dense, &self.cfg);
        let total_cycles = cycles_per_pass * t;

        let dynamic = (dense_pass_conv_energy(w, e) + dense_fc_energy(&w.dense, e)) * t as f64;
        let static_conv = total_cycles as f64 * self.cfg.tm() as f64 * e.p_static_pe;
        let dram = dram_words_per_pass(w) as f64 * t as f64 * e.e_dram_word;
        RunReport {
            name: "baseline".into(),
            model_name: w.model_name.clone(),
            t: w.t(),
            pre_inference_cycles: 0,
            total_cycles,
            layers,
            energy: EnergyBreakdown {
                conv: dynamic + static_conv,
                prediction: 0.0,
                central: 0.0,
                dram,
            },
        }
        .recorded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbcnn_bayes::BayesianNetwork;
    use fbcnn_nn::models;
    use fbcnn_predictor::{ThresholdOptimizer, ThresholdSet};
    use fbcnn_tensor::Tensor;

    fn lenet_workload(t: usize) -> Workload {
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
        let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
            ((r + 2 * c) % 7) as f32 / 7.0
        });
        let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        Workload::build(&bnet, &input, &thresholds, t, 3)
    }

    #[test]
    fn layer_cycle_formula_matches_hand_count() {
        let w = lenet_workload(1);
        let cfg = HwConfig::baseline();
        // conv1: ceil(6/64)=1 * 784 * 25*ceil(1/4)=25 -> 19600.
        assert_eq!(dense_layer_cycles(&w.layers[0], &cfg), 19_600);
        // conv2: 1 * 100 * 25*ceil(6/4)=50 -> 5000.
        assert_eq!(dense_layer_cycles(&w.layers[1], &cfg), 5_000);
        // conv3: ceil(120/64)=2 * 1 * 25*4=100 -> 200.
        assert_eq!(dense_layer_cycles(&w.layers[2], &cfg), 200);
    }

    #[test]
    fn total_scales_linearly_with_t() {
        let w1 = lenet_workload(1);
        let w3 = lenet_workload(3);
        let sim = BaselineSim::new(HwConfig::baseline());
        let r1 = sim.run(&w1);
        let r3 = sim.run(&w3);
        assert_eq!(r3.total_cycles, 3 * r1.total_cycles);
        // Normalized cycles are therefore T-independent.
        assert!((r1.normalized_cycles() - r3.normalized_cycles()).abs() < 1e-9);
    }

    #[test]
    fn never_predict_workload_runs_too() {
        // The baseline ignores skip info entirely.
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
        let input = Tensor::full(bnet.network().input_shape(), 0.5);
        let w = Workload::build(
            &bnet,
            &input,
            &ThresholdSet::never_predict(bnet.network().len()),
            2,
            1,
        );
        let r = BaselineSim::new(HwConfig::baseline()).run(&w);
        assert!(r.total_cycles > 0);
        assert!(r.energy.total() > 0.0);
        assert_eq!(r.energy.prediction, 0.0);
        assert_eq!(r.energy.central, 0.0);
    }

    #[test]
    fn fewer_pes_can_cost_more_cycles_on_wide_layers() {
        // With Tm=8 vs Tm=64 a 120-channel layer needs more passes; the
        // MAC budget compensates via larger Tn, so totals stay comparable
        // but not identical because of ceil effects.
        let w = lenet_workload(1);
        let r8 = BaselineSim::new(HwConfig::fast_bcnn(8)).run(&w);
        let r64 = BaselineSim::new(HwConfig::fast_bcnn(64)).run(&w);
        assert!(r8.total_cycles > 0 && r64.total_cycles > 0);
    }
}
