use serde::{Deserialize, Serialize};

/// Per-operation energies and per-module static power, in arbitrary
/// energy units (1.0 = one fp32 MAC including its operand buffer reads).
///
/// The paper measures energy with the Xilinx Power Estimator on the
/// post-synthesis design and reports *relative* numbers (normalized to
/// the baseline accelerator) plus a three-way module breakdown. Relative
/// energy depends only on operation counts × relative per-op costs, which
/// this model captures; the constants below are calibrated so the
/// baseline-relative reductions and the prediction-unit/central-predictor
/// shares land in the paper's reported ranges (§VI-B1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One fp32 multiply-accumulate, including local buffer reads.
    pub e_mac: f64,
    /// Skip engine handling one skipped neuron (OR gate, MUX, counter
    /// bump, zero write enable).
    pub e_skip: f64,
    /// Masking one neuron on the first-layer shortcut path.
    pub e_mask: f64,
    /// One counting-lane operation (AND gate + counter increment + mask /
    /// indicator mini-buffer read).
    pub e_count_op: f64,
    /// One partial count processed by the central predictor (adder-tree
    /// slice, threshold compare, zero-index AND and prediction-bit
    /// routing back to the PE), per contributing PE.
    pub e_central_add: f64,
    /// Writing one output neuron to the output buffer.
    pub e_output: f64,
    /// Transferring one 32-bit word to/from DRAM.
    pub e_dram_word: f64,
    /// Static + clock-network energy per PE per cycle. On an FPGA this
    /// dominates (XPE attributes most of the power envelope to static and
    /// clocking), which is why the paper's energy reductions track its
    /// cycle reductions closely; the constant is calibrated to reproduce
    /// that coupling.
    pub p_static_pe: f64,
    /// Static energy per counting lane per cycle (prediction units).
    pub p_static_lane: f64,
    /// Static energy for the central predictor per cycle.
    pub p_static_central: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            e_mac: 1.0,
            e_skip: 0.08,
            e_mask: 0.10,
            e_count_op: 0.03,
            e_central_add: 0.3,
            e_output: 0.15,
            e_dram_word: 2.0,
            p_static_pe: 0.8,
            p_static_lane: 0.006,
            p_static_central: 0.08,
        }
    }
}

/// Energy totals by module — the decomposition of paper §VI-B1
/// ("convolution unit, prediction unit and central predictor").
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Convolution units: MACs, skip engine, masking, output writes and
    /// PE static power.
    pub conv: f64,
    /// Prediction units: counting-lane operations and lane static power.
    pub prediction: f64,
    /// Central predictor: adder-tree operations and static power.
    pub central: f64,
    /// Off-chip traffic.
    pub dram: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.conv + self.prediction + self.central + self.dram
    }

    /// Fraction of total consumed by the prediction units.
    pub fn prediction_share(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.prediction / self.total()
        }
    }

    /// Fraction of total consumed by the central predictor.
    pub fn central_share(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.central / self.total()
        }
    }

    /// Accumulates another breakdown.
    pub fn absorb(&mut self, other: EnergyBreakdown) {
        self.conv += other.conv;
        self.prediction += other.prediction;
        self.central += other.central;
        self.dram += other.dram;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_shares() {
        let b = EnergyBreakdown {
            conv: 80.0,
            prediction: 12.0,
            central: 5.0,
            dram: 3.0,
        };
        assert!((b.total() - 100.0).abs() < 1e-12);
        assert!((b.prediction_share() - 0.12).abs() < 1e-12);
        assert!((b.central_share() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn absorb_adds_componentwise() {
        let mut a = EnergyBreakdown {
            conv: 1.0,
            prediction: 2.0,
            central: 3.0,
            dram: 4.0,
        };
        a.absorb(a);
        assert_eq!(a.conv, 2.0);
        assert_eq!(a.dram, 8.0);
    }

    #[test]
    fn default_constants_are_ordered_sensibly() {
        let m = EnergyModel::default();
        // A MAC dwarfs a counting-lane op; skipping is far cheaper than
        // computing a whole neuron (K²·N MACs).
        assert!(m.e_mac > 10.0 * m.e_count_op);
        assert!(m.e_skip < m.e_mac);
        assert!(m.e_dram_word > m.e_mac);
    }

    #[test]
    fn empty_breakdown_has_zero_shares() {
        let b = EnergyBreakdown::default();
        assert_eq!(b.prediction_share(), 0.0);
        assert_eq!(b.central_share(), 0.0);
    }
}
