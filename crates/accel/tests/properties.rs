//! Property-based tests for the accelerator models: ordering and
//! monotonicity invariants that must hold for any workload.

use fbcnn_accel::{BaselineSim, CnvlutinSim, FastBcnnSim, HwConfig, IdealSim, SkipMode, Workload};
use fbcnn_bayes::BayesianNetwork;
use fbcnn_nn::models;
use fbcnn_predictor::{ThresholdOptimizer, ThresholdSet};
use fbcnn_tensor::Tensor;
use proptest::prelude::*;

fn workload_for(seed: u64, drop_rate: f64, t: usize, predict: bool) -> Workload {
    let bnet = BayesianNetwork::new(models::lenet5(seed), drop_rate);
    let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
        ((r * 3 + c * 7 + seed as usize) % 13) as f32 / 13.0
    });
    let thresholds = if predict {
        ThresholdOptimizer {
            samples: 2,
            ..ThresholdOptimizer::default()
        }
        .optimize(&bnet, &input, seed)
    } else {
        ThresholdSet::never_predict(bnet.network().len())
    };
    Workload::build(&bnet, &input, &thresholds, t, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn ordering_invariants_hold(seed in 0u64..40, drop in 1usize..5) {
        let drop_rate = drop as f64 / 10.0;
        let w = workload_for(seed, drop_rate, 3, true);
        let base = BaselineSim::new(HwConfig::baseline()).run(&w);
        let cnv = CnvlutinSim::new().run(&w);
        for tm in [8usize, 64] {
            let hw = HwConfig::fast_bcnn(tm);
            let fb = FastBcnnSim::new(hw, SkipMode::Both).run(&w);
            let ideal = IdealSim::new(hw).run(&w);
            prop_assert!(ideal.total_cycles <= fb.total_cycles);
            prop_assert!(fb.total_cycles < base.total_cycles);
            prop_assert!(ideal.energy.total() <= fb.energy.total());
            prop_assert!(fb.energy.total() > 0.0);
        }
        prop_assert!(cnv.normalized_cycles() <= base.normalized_cycles() + 1e-9);
    }

    #[test]
    fn more_drop_means_fewer_cycles(seed in 0u64..40) {
        let lo = workload_for(seed, 0.1, 3, false);
        let hi = workload_for(seed, 0.5, 3, false);
        let sim = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::DroppedOnly);
        prop_assert!(
            sim.run(&hi).total_cycles <= sim.run(&lo).total_cycles,
            "heavier dropout must not slow the dropped-only skipper"
        );
    }

    #[test]
    fn both_mode_is_at_least_unaffected_only(seed in 0u64..40) {
        let w = workload_for(seed, 0.3, 3, true);
        let hw = HwConfig::fast_bcnn(64);
        let both = FastBcnnSim::new(hw, SkipMode::Both).run(&w);
        let u = FastBcnnSim::new(hw, SkipMode::UnaffectedOnly).run(&w);
        // Identical prediction pipeline, superset of skips.
        prop_assert!(both.total_cycles <= u.total_cycles);
    }

    #[test]
    fn baseline_is_exactly_linear_in_t(seed in 0u64..40) {
        let w2 = workload_for(seed, 0.3, 2, false);
        let w4 = workload_for(seed, 0.3, 4, false);
        let sim = BaselineSim::new(HwConfig::baseline());
        prop_assert_eq!(sim.run(&w2).total_cycles * 2, sim.run(&w4).total_cycles);
    }

    #[test]
    fn timeline_schedule_matches_run_for_every_mode(seed in 0u64..40) {
        let w = workload_for(seed, 0.3, 3, true);
        for tm in [8usize, 64] {
            for mode in [SkipMode::Both, SkipMode::DroppedOnly, SkipMode::UnaffectedOnly] {
                let sim = FastBcnnSim::new(HwConfig::fast_bcnn(tm), mode);
                let tl = sim.timeline(&w);
                let report = sim.run(&w);
                prop_assert_eq!(
                    tl.total_cycles,
                    report.total_cycles,
                    "timeline diverged for FB-{} {:?}",
                    tm,
                    mode
                );
            }
        }
    }

    #[test]
    fn workload_stats_are_internally_consistent(seed in 0u64..40) {
        let w = workload_for(seed, 0.3, 3, true);
        let total = w.total_skip_stats();
        prop_assert_eq!(total.total as u64, w.conv_neurons_per_pass() * 3);
        prop_assert!(total.skipped <= total.total);
        prop_assert!(total.skipped >= total.dropped.max(total.predicted));
        prop_assert!(total.skipped <= total.dropped + total.predicted);
    }
}
