#![warn(missing_docs)]
// Robustness contract: library code must degrade or report, never abort.
// CI denies these in the lib target; unit tests may still unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Fast-BCNN — massive neuron skipping in Bayesian convolutional neural
//! networks.
//!
//! This crate is the facade of the reproduction workspace: it ties the
//! CNN substrate (`fbcnn-nn`), the Bayesian machinery (`fbcnn-bayes`),
//! the unaffected-neuron predictor (`fbcnn-predictor`) and the
//! accelerator models (`fbcnn-accel`) into a single [`Engine`] API, and
//! hosts the [`experiments`] drivers that regenerate every table and
//! figure of the paper's evaluation (see `EXPERIMENTS.md`).
//!
//! # Quickstart
//!
//! ```
//! use fast_bcnn::{Engine, EngineConfig};
//! use fbcnn_nn::models::ModelKind;
//!
//! let engine = Engine::new(EngineConfig {
//!     samples: 8,
//!     ..EngineConfig::for_model(ModelKind::LeNet5)
//! });
//! let input = fast_bcnn::synth_input(engine.network().input_shape(), 1);
//! let (prediction, stats) = engine.predict_fast(&input);
//! assert_eq!(prediction.mean.len(), 10);
//! assert!(stats.skip_rate() > 0.0);
//! ```

mod artifact;
mod batch;
pub mod chaos;
mod engine;
mod error;
pub mod experiments;
pub mod faults;
mod flight;
pub mod io;
mod registry;
pub mod report;
mod resilience;
pub mod serve;
pub mod slo;
pub mod supervise;
mod telemetry_report;

pub use artifact::{ArtifactError, ModelArtifact};
pub use batch::{BatchConfig, BatchEngine, BatchOutcome, BatchReport, BatchRequest};
pub use engine::{synth_input, DegradedMode, Engine, EngineConfig, RobustConfig, RobustReport};
pub use error::{EngineError, InferenceError};
pub use faults::{ArtifactFault, BitFlip, FaultInjector, LatencySchedule, ThresholdFault};
pub use flight::{
    FlightLog, FlightRecord, FlightRecorder, DEFAULT_FAILED_CAPACITY, DEFAULT_RING_CAPACITY,
};
pub use registry::{
    ModelRegistry, RegistryConfig, RegistryOutcome, RegistryReport, RolloutStatus,
    SupervisorHandle, VersionCounters,
};
pub use resilience::{
    error_reason_name, retry_class, BreakerConfig, BreakerState, CircuitBreaker, Jitter, NoJitter,
    PathDecision, RequestClass, RequestSampleHook, ResilienceConfig, ResilienceTotals,
    ResilientBatchEngine, ResilientBatchReport, ResilientOutcome, RetryClass, RetryPolicy,
    RunControl, SampleHook, SeededJitter, ShedPolicy,
};
pub use supervise::{
    failover_route, shard_route, HealthTransition, OutcomeSignal, RouteDecision, ShardHealth,
    ShardLedger, SuperviseConfig, SuperviseSnapshot, Supervisor, SupervisorGate,
};
pub use telemetry_report::{LayerSkipRow, SpanQuantileRow, TelemetryReport};

/// The workspace telemetry layer (spans, counters, histograms, exporters)
/// re-exported under the facade, so binaries and tests need only one
/// dependency to install a recorder.
pub use fbcnn_telemetry as telemetry;

// Re-export the workspace's main types so downstream users need only one
// dependency.
pub use fbcnn_accel::{
    BaselineSim, CnvlutinSim, EnergyBreakdown, EnergyModel, FastBcnnSim, HwConfig, IdealSim,
    RunReport, SkipMode, Workload,
};
pub use fbcnn_bayes::{
    BayesError, BayesianNetwork, Brng, CancelToken, IsolatedRun, Lfsr32, McDropout, PartialRun,
    Prediction, SoftwareBernoulli,
};
pub use fbcnn_nn::{models, ActivationGuard, GuardPolicy, Network, NumericFault};
pub use fbcnn_predictor::{
    evaluate_predictions, EvalReport, PolarityIndicators, PredictiveInference, PredictorError,
    SkipStats, ThresholdError, ThresholdOptimizer, ThresholdSet,
};
pub use fbcnn_tensor::{BitMask, Shape, Tensor};
