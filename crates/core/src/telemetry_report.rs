//! Human-readable summary of a telemetry [`Registry`] — the per-layer
//! skip/fallback table the observability docs and the `fastbcnn observe`
//! subcommand print (the software analogue of the paper's Fig. 5
//! per-layer skip-rate breakdown).

use crate::report::format_table;
use fbcnn_telemetry::{histogram_quantile, Registry, SPAN_DURATION_METRIC};
use std::collections::BTreeMap;

/// Per-layer skip accounting pulled from the `skip_neurons_*` counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LayerSkipRow {
    /// Layer label (the `layer` counter label).
    pub layer: String,
    /// Neurons considered across all recorded samples.
    pub considered: u64,
    /// Dropped neurons.
    pub dropped: u64,
    /// Predicted-unaffected neurons.
    pub predicted: u64,
    /// Skipped neurons (union of the two).
    pub skipped: u64,
}

impl LayerSkipRow {
    /// Fraction of considered neurons skipped.
    pub fn skip_rate(&self) -> f64 {
        if self.considered == 0 {
            0.0
        } else {
            self.skipped as f64 / self.considered as f64
        }
    }
}

/// Latency quantiles of one span name, estimated from its
/// `span_duration_ns` histogram buckets (upper bucket edges — see
/// [`histogram_quantile`] for the error bound).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanQuantileRow {
    /// Span name (the `span` histogram label).
    pub span: String,
    /// Durations recorded.
    pub count: u64,
    /// p50 estimate, nanoseconds.
    pub p50_ns: f64,
    /// p95 estimate, nanoseconds.
    pub p95_ns: f64,
    /// p99 estimate, nanoseconds.
    pub p99_ns: f64,
}

/// A digest of one recording session: per-layer skip rates plus the
/// engine's fallback/degradation counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetryReport {
    /// One row per instrumented conv layer, in label order.
    pub layers: Vec<LayerSkipRow>,
    /// `guard_trips` total across kinds and policies.
    pub guard_trips: u64,
    /// `engine_fallback_samples` total.
    pub fallback_samples: u64,
    /// `engine_lost_samples` total.
    pub lost_samples: u64,
    /// `engine_early_exits` total.
    pub early_exits: u64,
    /// `engine_degraded_runs` by mode label.
    pub degraded_runs: Vec<(String, u64)>,
    /// `batch_requests` total — requests served through a
    /// [`crate::BatchEngine`].
    pub batch_requests: u64,
    /// `batch_cache_hits` total — pre-inference cache hits.
    pub batch_cache_hits: u64,
    /// `batch_cache_misses` total — pre-inference cache misses.
    pub batch_cache_misses: u64,
    /// `breaker_transitions` by `(from, to)` label pair, in label order.
    pub breaker_transitions: Vec<(String, u64)>,
    /// `breaker_forced_exact` total — attempts served exact by an open
    /// breaker.
    pub breaker_forced_exact: u64,
    /// `shed_requests` total — requests rejected by admission control.
    pub shed_requests: u64,
    /// `retry_attempts` total — retries of typed-transient failures.
    pub retry_attempts: u64,
    /// `retry_successes` total — requests that healed on a retry.
    pub retry_successes: u64,
    /// `retry_exhausted` total — retryable failures that survived every
    /// allowed attempt.
    pub retry_exhausted: u64,
    /// `deadline_expired` total — requests cut short by a deadline or
    /// cancellation (partial and empty outcomes alike).
    pub deadline_expired: u64,
    /// `watchdog_requeues` total — hung units requeued to fresh workers.
    pub watchdog_requeues: u64,
    /// `shard_health_transitions` by `(from, to)` label pair, in label
    /// order — the supervision state-machine walk.
    pub shard_health_transitions: Vec<(String, u64)>,
    /// `failover_requests` by quarantined-primary shard label, in label
    /// order — requests rerouted off a dead shard.
    pub failover_requests: Vec<(String, u64)>,
    /// `rebuild_attempts` total — quarantined shards the supervisor
    /// tried to rebuild from the retained artifact.
    pub rebuild_attempts: u64,
    /// `rebuild_successes` total — rebuilt shards re-admitted after a
    /// clean probation.
    pub rebuild_successes: u64,
    /// `rebuild_probe_rejects` total — rebuilt shards sent back to
    /// quarantine by a failed probation.
    pub rebuild_probe_rejects: u64,
    /// Per-span duration quantiles from the `span_duration_ns`
    /// histograms, in span-name order.
    pub span_quantiles: Vec<SpanQuantileRow>,
}

/// Folds the registry's `span_duration_ns` histogram cells by span name
/// (cells whose bucket bounds disagree with the first cell of that span
/// are skipped — only possible if bounds were re-registered mid-run) and
/// estimates p50/p95/p99 with the shared bucket-edge rule.
fn span_quantile_rows(registry: &Registry) -> Vec<SpanQuantileRow> {
    let mut merged: BTreeMap<String, fbcnn_telemetry::HistogramSnapshot> = BTreeMap::new();
    for h in registry.histograms() {
        if h.name != SPAN_DURATION_METRIC {
            continue;
        }
        let Some((_, span)) = h.labels.iter().find(|(k, _)| k == "span") else {
            continue;
        };
        match merged.entry(span.clone()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(h);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let m = e.get_mut();
                if m.bounds != h.bounds {
                    continue;
                }
                for (dst, src) in m.counts.iter_mut().zip(h.counts.iter()) {
                    *dst += src;
                }
                m.sum += h.sum;
                m.count += h.count;
            }
        }
    }
    merged
        .into_iter()
        .filter_map(|(span, h)| {
            let q = |q: f64| histogram_quantile(&h.bounds, &h.counts, q);
            Some(SpanQuantileRow {
                span,
                count: h.count,
                p50_ns: q(0.5)?,
                p95_ns: q(0.95)?,
                p99_ns: q(0.99)?,
            })
        })
        .collect()
}

impl TelemetryReport {
    /// Builds the digest from a registry's counter snapshots.
    pub fn from_registry(registry: &Registry) -> Self {
        let mut layers: BTreeMap<String, LayerSkipRow> = BTreeMap::new();
        let mut degraded: BTreeMap<String, u64> = BTreeMap::new();
        let mut transitions: BTreeMap<String, u64> = BTreeMap::new();
        let mut health_transitions: BTreeMap<String, u64> = BTreeMap::new();
        let mut failovers: BTreeMap<String, u64> = BTreeMap::new();
        for c in registry.counters() {
            match c.name.as_str() {
                "breaker_transitions" | "shard_health_transitions" => {
                    let label = |key: &str| {
                        c.labels
                            .iter()
                            .find(|(k, _)| k == key)
                            .map(|(_, v)| v.clone())
                            .unwrap_or_else(|| "unknown".into())
                    };
                    let sink = if c.name == "breaker_transitions" {
                        &mut transitions
                    } else {
                        &mut health_transitions
                    };
                    *sink
                        .entry(format!("{}->{}", label("from"), label("to")))
                        .or_default() += c.value;
                }
                "failover_requests" => {
                    let shard = c
                        .labels
                        .iter()
                        .find(|(k, _)| k == "shard")
                        .map(|(_, v)| v.clone())
                        .unwrap_or_else(|| "unknown".into());
                    *failovers.entry(shard).or_default() += c.value;
                }
                "skip_neurons_considered"
                | "skip_neurons_dropped"
                | "skip_neurons_predicted"
                | "skip_neurons_skipped" => {
                    let Some((_, layer)) = c.labels.iter().find(|(k, _)| k == "layer") else {
                        continue;
                    };
                    let row = layers.entry(layer.clone()).or_default();
                    row.layer = layer.clone();
                    match c.name.as_str() {
                        "skip_neurons_considered" => row.considered += c.value,
                        "skip_neurons_dropped" => row.dropped += c.value,
                        "skip_neurons_predicted" => row.predicted += c.value,
                        _ => row.skipped += c.value,
                    }
                }
                "engine_degraded_runs" => {
                    let mode = c
                        .labels
                        .iter()
                        .find(|(k, _)| k == "mode")
                        .map(|(_, v)| v.clone())
                        .unwrap_or_else(|| "unknown".into());
                    *degraded.entry(mode).or_default() += c.value;
                }
                _ => {}
            }
        }
        Self {
            layers: layers.into_values().collect(),
            guard_trips: registry.counter_total("guard_trips"),
            fallback_samples: registry.counter_total("engine_fallback_samples"),
            lost_samples: registry.counter_total("engine_lost_samples"),
            early_exits: registry.counter_total("engine_early_exits"),
            degraded_runs: degraded.into_iter().collect(),
            batch_requests: registry.counter_total("batch_requests"),
            batch_cache_hits: registry.counter_total("batch_cache_hits"),
            batch_cache_misses: registry.counter_total("batch_cache_misses"),
            breaker_transitions: transitions.into_iter().collect(),
            breaker_forced_exact: registry.counter_total("breaker_forced_exact"),
            shed_requests: registry.counter_total("shed_requests"),
            retry_attempts: registry.counter_total("retry_attempts"),
            retry_successes: registry.counter_total("retry_successes"),
            retry_exhausted: registry.counter_total("retry_exhausted"),
            deadline_expired: registry.counter_total("deadline_expired"),
            watchdog_requeues: registry.counter_total("watchdog_requeues"),
            shard_health_transitions: health_transitions.into_iter().collect(),
            failover_requests: failovers.into_iter().collect(),
            rebuild_attempts: registry.counter_total("rebuild_attempts"),
            rebuild_successes: registry.counter_total("rebuild_successes"),
            rebuild_probe_rejects: registry.counter_total("rebuild_probe_rejects"),
            span_quantiles: span_quantile_rows(registry),
        }
    }

    /// Fraction of batch-served requests whose pre-inference came from
    /// the cache.
    pub fn batch_cache_hit_rate(&self) -> f64 {
        let total = self.batch_cache_hits + self.batch_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.batch_cache_hits as f64 / total as f64
        }
    }

    /// Aggregate skip rate over all layers.
    pub fn overall_skip_rate(&self) -> f64 {
        let considered: u64 = self.layers.iter().map(|r| r.considered).sum();
        let skipped: u64 = self.layers.iter().map(|r| r.skipped).sum();
        if considered == 0 {
            0.0
        } else {
            skipped as f64 / considered as f64
        }
    }

    /// Renders the per-layer table plus a fallback summary line.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .layers
            .iter()
            .map(|r| {
                vec![
                    r.layer.clone(),
                    r.considered.to_string(),
                    r.dropped.to_string(),
                    r.predicted.to_string(),
                    r.skipped.to_string(),
                    format!("{:.1}%", r.skip_rate() * 100.0),
                ]
            })
            .collect();
        let mut out = format_table(
            &[
                "layer",
                "considered",
                "dropped",
                "predicted",
                "skipped",
                "skip rate",
            ],
            &rows,
        );
        out.push_str(&format!(
            "overall skip rate {:.1}% | guard trips {} | fallback samples {} | lost samples {} | early exits {}\n",
            self.overall_skip_rate() * 100.0,
            self.guard_trips,
            self.fallback_samples,
            self.lost_samples,
            self.early_exits,
        ));
        if !self.degraded_runs.is_empty() {
            let modes: Vec<String> = self
                .degraded_runs
                .iter()
                .map(|(m, n)| format!("{m}={n}"))
                .collect();
            out.push_str(&format!("degraded runs: {}\n", modes.join(", ")));
        }
        if self.batch_requests > 0 {
            out.push_str(&format!(
                "batch requests {} | pre-inference cache hits {} / misses {} ({:.1}% hit rate)\n",
                self.batch_requests,
                self.batch_cache_hits,
                self.batch_cache_misses,
                self.batch_cache_hit_rate() * 100.0,
            ));
        }
        // Resilience lines appear only when the layer was active, so
        // sessions without deadlines/retries/breakers render unchanged.
        let resilience_active = self.shed_requests
            + self.retry_attempts
            + self.retry_successes
            + self.retry_exhausted
            + self.deadline_expired
            + self.watchdog_requeues
            + self.breaker_forced_exact
            > 0
            || !self.breaker_transitions.is_empty();
        if resilience_active {
            out.push_str(&format!(
                "resilience: shed {} | retries {} (healed {}, exhausted {}) | deadline expiries {} | watchdog requeues {}\n",
                self.shed_requests,
                self.retry_attempts,
                self.retry_successes,
                self.retry_exhausted,
                self.deadline_expired,
                self.watchdog_requeues,
            ));
        }
        if !self.breaker_transitions.is_empty() {
            let moves: Vec<String> = self
                .breaker_transitions
                .iter()
                .map(|(t, n)| format!("{t}={n}"))
                .collect();
            out.push_str(&format!(
                "breaker: forced exact {} | transitions {}\n",
                self.breaker_forced_exact,
                moves.join(", "),
            ));
        }
        // Supervision lines appear only when shards actually moved
        // through the health state machine.
        if !self.shard_health_transitions.is_empty() {
            let moves: Vec<String> = self
                .shard_health_transitions
                .iter()
                .map(|(t, n)| format!("{t}={n}"))
                .collect();
            out.push_str(&format!("shard health: {}\n", moves.join(", ")));
            let failovers: Vec<String> = self
                .failover_requests
                .iter()
                .map(|(shard, n)| format!("shard{shard}={n}"))
                .collect();
            out.push_str(&format!(
                "supervision: failovers {} | rebuilds {} (re-admitted {}, probe-rejected {})\n",
                if failovers.is_empty() {
                    "none".to_string()
                } else {
                    failovers.join(", ")
                },
                self.rebuild_attempts,
                self.rebuild_successes,
                self.rebuild_probe_rejects,
            ));
        }
        if !self.span_quantiles.is_empty() {
            let rows: Vec<Vec<String>> = self
                .span_quantiles
                .iter()
                .map(|r| {
                    vec![
                        r.span.clone(),
                        r.count.to_string(),
                        format!("{:.0}", r.p50_ns),
                        format!("{:.0}", r.p95_ns),
                        format!("{:.0}", r.p99_ns),
                    ]
                })
                .collect();
            out.push_str("span latency quantiles (bucket-edge estimates, ns):\n");
            out.push_str(&format_table(
                &["span", "count", "p50", "p95", "p99"],
                &rows,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbcnn_telemetry::Recorder as _;

    #[test]
    fn report_reads_skip_and_fallback_counters() {
        let r = Registry::new();
        for (name, v) in [
            ("skip_neurons_considered", 100),
            ("skip_neurons_dropped", 30),
            ("skip_neurons_predicted", 40),
            ("skip_neurons_skipped", 60),
        ] {
            r.counter_add(name, &[("layer", "conv2")], v);
        }
        r.counter_add("engine_fallback_samples", &[], 2);
        r.counter_add("engine_degraded_runs", &[("mode", "partial_fallback")], 1);
        let report = TelemetryReport::from_registry(&r);
        assert_eq!(report.layers.len(), 1);
        let row = &report.layers[0];
        assert_eq!((row.considered, row.skipped), (100, 60));
        assert!((row.skip_rate() - 0.6).abs() < 1e-12);
        assert_eq!(report.fallback_samples, 2);
        assert_eq!(
            report.degraded_runs,
            vec![("partial_fallback".to_string(), 1)]
        );
        let rendered = report.render();
        assert!(rendered.contains("conv2"));
        assert!(rendered.contains("60.0%"));
        assert!(rendered.contains("partial_fallback=1"));
    }

    #[test]
    fn report_reads_batch_counters() {
        let r = Registry::new();
        r.counter_add("batch_requests", &[], 8);
        r.counter_add("batch_cache_hits", &[], 6);
        r.counter_add("batch_cache_misses", &[], 2);
        let report = TelemetryReport::from_registry(&r);
        assert_eq!(report.batch_requests, 8);
        assert_eq!(report.batch_cache_hits, 6);
        assert_eq!(report.batch_cache_misses, 2);
        assert!((report.batch_cache_hit_rate() - 0.75).abs() < 1e-12);
        let rendered = report.render();
        assert!(rendered.contains("batch requests 8"));
        assert!(rendered.contains("75.0% hit rate"));
    }

    #[test]
    fn report_reads_resilience_counters() {
        let r = Registry::new();
        r.counter_add("shed_requests", &[("policy", "reject_newest")], 3);
        r.counter_add("retry_attempts", &[("reason", "transient")], 4);
        r.counter_add("retry_successes", &[], 2);
        r.counter_add("retry_exhausted", &[("reason", "transient")], 1);
        r.counter_add("deadline_expired", &[("outcome", "partial")], 5);
        r.counter_add("watchdog_requeues", &[], 1);
        r.counter_add("breaker_forced_exact", &[], 6);
        r.counter_add(
            "breaker_transitions",
            &[("from", "closed"), ("to", "open")],
            1,
        );
        r.counter_add(
            "breaker_transitions",
            &[("from", "open"), ("to", "half_open")],
            1,
        );
        let report = TelemetryReport::from_registry(&r);
        assert_eq!(report.shed_requests, 3);
        assert_eq!(report.retry_attempts, 4);
        assert_eq!(report.retry_successes, 2);
        assert_eq!(report.retry_exhausted, 1);
        assert_eq!(report.deadline_expired, 5);
        assert_eq!(report.watchdog_requeues, 1);
        assert_eq!(report.breaker_forced_exact, 6);
        assert_eq!(
            report.breaker_transitions,
            vec![
                ("closed->open".to_string(), 1),
                ("open->half_open".to_string(), 1)
            ]
        );
        let rendered = report.render();
        assert!(rendered.contains("resilience: shed 3"));
        assert!(rendered.contains("retries 4 (healed 2, exhausted 1)"));
        assert!(rendered.contains("deadline expiries 5"));
        assert!(rendered.contains("breaker: forced exact 6"));
        assert!(rendered.contains("closed->open=1"));
    }

    #[test]
    fn report_reads_supervision_counters() {
        let r = Registry::new();
        r.counter_add(
            "shard_health_transitions",
            &[("from", "healthy"), ("to", "suspect")],
            2,
        );
        r.counter_add(
            "shard_health_transitions",
            &[("from", "suspect"), ("to", "quarantined")],
            1,
        );
        r.counter_add("failover_requests", &[("shard", "0")], 7);
        r.counter_add("rebuild_attempts", &[], 2);
        r.counter_add("rebuild_successes", &[], 1);
        r.counter_add("rebuild_probe_rejects", &[], 1);
        let report = TelemetryReport::from_registry(&r);
        assert_eq!(
            report.shard_health_transitions,
            vec![
                ("healthy->suspect".to_string(), 2),
                ("suspect->quarantined".to_string(), 1)
            ]
        );
        assert_eq!(report.failover_requests, vec![("0".to_string(), 7)]);
        assert_eq!(report.rebuild_attempts, 2);
        assert_eq!(report.rebuild_successes, 1);
        assert_eq!(report.rebuild_probe_rejects, 1);
        let rendered = report.render();
        assert!(rendered.contains("shard health: healthy->suspect=2"));
        assert!(rendered.contains("supervision: failovers shard0=7"));
        assert!(rendered.contains("rebuilds 2 (re-admitted 1, probe-rejected 1)"));
        // Quiet sessions must not grow supervision lines.
        let quiet = TelemetryReport::from_registry(&Registry::new()).render();
        assert!(!quiet.contains("shard health:"));
        assert!(!quiet.contains("supervision:"));
    }

    #[test]
    fn report_estimates_span_quantiles() {
        let r = Registry::new();
        // 100 fast durations and 2 slow ones: p50 lands in the 256-edge
        // bucket, p99 in the 1024-edge bucket.
        for _ in 0..100 {
            r.histogram_record(SPAN_DURATION_METRIC, &[("span", "predict")], 200.0);
        }
        for _ in 0..2 {
            r.histogram_record(SPAN_DURATION_METRIC, &[("span", "predict")], 900.0);
        }
        // A second label set for the same span must fold into one row.
        r.histogram_record(
            SPAN_DURATION_METRIC,
            &[("span", "calibrate"), ("layer", "conv1")],
            60.0,
        );
        let report = TelemetryReport::from_registry(&r);
        assert_eq!(report.span_quantiles.len(), 2);
        let predict = report
            .span_quantiles
            .iter()
            .find(|row| row.span == "predict")
            .unwrap();
        assert_eq!(predict.count, 102);
        assert_eq!(predict.p50_ns, 256.0);
        assert_eq!(predict.p99_ns, 1024.0);
        let rendered = report.render();
        assert!(rendered.contains("span latency quantiles"));
        assert!(rendered.contains("predict"));
        assert!(rendered.contains("calibrate"));
    }

    #[test]
    fn quiet_sessions_render_without_resilience_lines() {
        let r = Registry::new();
        r.counter_add("batch_requests", &[], 2);
        let rendered = TelemetryReport::from_registry(&r).render();
        assert!(!rendered.contains("resilience:"));
        assert!(!rendered.contains("breaker:"));
    }

    #[test]
    fn empty_registry_renders_without_rows() {
        // No batch activity → no batch line.
        assert!(!TelemetryReport::from_registry(&Registry::new())
            .render()
            .contains("batch requests"));
        let report = TelemetryReport::from_registry(&Registry::new());
        assert_eq!(report.layers.len(), 0);
        assert_eq!(report.overall_skip_rate(), 0.0);
        assert!(report.render().contains("overall skip rate 0.0%"));
    }
}
